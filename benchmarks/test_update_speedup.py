"""Section VI-A headline: sketch-update speed-up proportional to 1/p.

The paper's motivating claim — "the sketching of streams can be sped-up by
a factor of 10" at a 10% sampling rate — rests on skip-ahead sampling
doing work only for kept tuples.  This bench measures end-to-end stream
consumption (shedding + sketching) at several rates and checks that
throughput grows substantially as p shrinks.
"""

import time

import numpy as np
import pytest

from repro.core import SheddingSketcher
from repro.experiments.report import format_table
from repro.sketches import FagmsSketch
from repro.streams import zipf_relation

STREAM_TUPLES = 400_000
CHUNK = 65_536


def _consume(relation, p, seed) -> float:
    """Seconds to push the whole stream through a shedding sketcher."""
    sketcher = SheddingSketcher(FagmsSketch(1024, seed=seed), p=p, seed=seed)
    start = time.perf_counter()
    for chunk in relation.chunks(CHUNK):
        sketcher.process(chunk)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def stream():
    return zipf_relation(STREAM_TUPLES, 50_000, 1.0, seed=90)


def test_shedding_speedup(benchmark, stream, save_result):
    timings = {}
    for p in (1.0, 0.1, 0.01):
        # best of 3 to suppress scheduler noise
        timings[p] = min(_consume(stream, p, seed=7) for _ in range(3))
    benchmark.pedantic(
        lambda: _consume(stream, 0.1, seed=8), rounds=3, iterations=1
    )

    rows = [
        (p, timings[p], STREAM_TUPLES / timings[p] / 1e6, timings[1.0] / timings[p])
        for p in (1.0, 0.1, 0.01)
    ]
    save_result(
        "update_speedup",
        format_table(
            ("p", "seconds", "Mtuples/s", "speedup_vs_full"),
            rows,
            title="[§VI-A] Stream consumption rate vs shedding probability "
            f"({STREAM_TUPLES} tuples)",
        ),
    )

    # The qualitative claim: lower p -> materially faster. The skip-ahead
    # path avoids per-tuple work, so p=0.01 must beat p=1.0 clearly (the
    # asymptotic 1/p is unreachable in numpy because of per-chunk
    # overheads, but a >2x end-to-end win at p=0.1 is expected).
    assert timings[0.1] < 0.7 * timings[1.0]
    assert timings[0.01] < 0.5 * timings[1.0]
