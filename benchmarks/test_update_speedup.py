"""Section VI-A headline: sketch-update speed-up proportional to 1/p.

The paper's motivating claim — "the sketching of streams can be sped-up by
a factor of 10" at a 10% sampling rate — rests on skip-ahead sampling
doing work only for kept tuples.  This bench measures end-to-end stream
consumption (shedding + sketching) at several rates and checks that
throughput grows substantially as p shrinks.

``test_kernel_update_speedup`` is the kernel layer's headline gate: the
same end-to-end consumption at p=1 must run at least 3× faster through
the kernel path than through the legacy per-row path (see
``docs/PERFORMANCE.md``).
"""

import time

import numpy as np
import pytest

from repro.core import SheddingSketcher
from repro.experiments.report import format_table
from repro.kernels import native_available, use_backend
from repro.sketches import FagmsSketch
from repro.streams import zipf_relation

STREAM_TUPLES = 400_000
CHUNK = 65_536


def _consume(relation, p, seed) -> float:
    """Seconds to push the whole stream through a shedding sketcher."""
    sketcher = SheddingSketcher(FagmsSketch(1024, seed=seed), p=p, seed=seed)
    start = time.perf_counter()
    for chunk in relation.chunks(CHUNK):
        sketcher.process(chunk)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def stream():
    return zipf_relation(STREAM_TUPLES, 50_000, 1.0, seed=90)


def test_shedding_speedup(benchmark, stream, save_result):
    timings = {}
    for p in (1.0, 0.1, 0.01):
        # best of 3 to suppress scheduler noise
        timings[p] = min(_consume(stream, p, seed=7) for _ in range(3))
    benchmark.pedantic(
        lambda: _consume(stream, 0.1, seed=8), rounds=3, iterations=1
    )

    rows = [
        (p, timings[p], STREAM_TUPLES / timings[p] / 1e6, timings[1.0] / timings[p])
        for p in (1.0, 0.1, 0.01)
    ]
    save_result(
        "update_speedup",
        format_table(
            ("p", "seconds", "Mtuples/s", "speedup_vs_full"),
            rows,
            title="[§VI-A] Stream consumption rate vs shedding probability "
            f"({STREAM_TUPLES} tuples)",
        ),
    )

    # The qualitative claim: lower p -> materially faster. The skip-ahead
    # path avoids per-tuple work, so p=0.01 must beat p=1.0 clearly (the
    # asymptotic 1/p is unreachable in numpy because of per-chunk
    # overheads, but a >2x end-to-end win at p=0.1 is expected).
    assert timings[0.1] < 0.7 * timings[1.0]
    assert timings[0.01] < 0.5 * timings[1.0]


def test_kernel_update_speedup(stream, save_result):
    """F-AGMS bulk updates: kernel path ≥ 3× the legacy per-row path.

    Both paths consume the full stream end to end (chunking, shedder at
    p=1, sketch update) at the default 1024-bucket config; the only
    difference is the active kernel backend.  Timings are interleaved
    and best-of-5 so machine noise hits both sides equally.
    """
    backends = ["reference", "numpy"] + (["native"] if native_available() else [])
    timings = {name: float("inf") for name in backends}
    for _ in range(5):
        for name in backends:
            with use_backend(name):
                timings[name] = min(timings[name], _consume(stream, 1.0, seed=7))

    rows = [
        (
            name,
            timings[name],
            STREAM_TUPLES / timings[name] / 1e6,
            timings["reference"] / timings[name],
        )
        for name in backends
    ]
    save_result(
        "kernel_update_speedup",
        format_table(
            ("backend", "seconds", "Mtuples/s", "speedup_vs_legacy"),
            rows,
            title="[kernels] End-to-end F-AGMS consumption by kernel backend "
            f"({STREAM_TUPLES} tuples, 1024 buckets, p=1)",
        ),
    )

    # The fused numpy path must clearly beat per-row evaluate_row+add.at...
    assert timings["numpy"] < timings["reference"] / 1.3
    # ...and the kernel layer's headline: ≥3× for bulk updates.  The
    # compiled backend carries this bar; without a C compiler the numpy
    # path alone cannot reach it (≈2×) and the bar is unmeasurable here.
    if not native_available():
        pytest.skip("native backend unavailable (no C compiler); 3x bar needs it")
    assert timings["native"] < timings["reference"] / 3.0
