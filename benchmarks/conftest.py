"""Shared infrastructure for the benchmark/experiment suite.

Each ``test_fig*`` benchmark regenerates one of the paper's figures and
writes the resulting table both to stdout (visible with ``pytest -s``) and
to ``benchmarks/results/<name>.txt`` so the regenerated series survive the
run.  The scale is controlled with the ``REPRO_BENCH_SCALE`` environment
variable: ``small`` (default; seconds), ``default`` (minutes), or
``paper`` (the paper's sizes; hours).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"

_SCALES = {
    "small": ExperimentScale.small,
    "default": ExperimentScale.default,
    "paper": ExperimentScale.paper,
}


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale for this benchmark session."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {tuple(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]()


@pytest.fixture(scope="session")
def save_result():
    """Persist and echo a figure table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
