"""Shared infrastructure for the benchmark/experiment suite.

Each ``test_fig*`` benchmark regenerates one of the paper's figures and
writes the resulting table both to stdout (visible with ``pytest -s``) and
to ``benchmarks/results/<name>.txt`` so the regenerated series survive the
run.  The scale is controlled with the ``REPRO_BENCH_SCALE`` environment
variable: ``small`` (default; seconds), ``default`` (minutes), or
``paper`` (the paper's sizes; hours).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parents[1]

_SCALES = {
    "small": ExperimentScale.small,
    "default": ExperimentScale.default,
    "paper": ExperimentScale.paper,
}


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale for this benchmark session."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {tuple(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]()


@pytest.fixture(scope="session")
def save_result():
    """Persist and echo a figure table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def save_bench():
    """Persist a machine-readable ``BENCH_<name>.json`` baseline.

    The canonical copy lives in ``benchmarks/results/``; a byte-identical
    mirror is written to the repository root so baselines are visible
    without digging (the convention ``docs/PERFORMANCE.md`` documents).
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, records) -> None:
        payload = json.dumps(records, indent=2) + "\n"
        (RESULTS_DIR / f"BENCH_{name}.json").write_text(payload)
        (REPO_ROOT / f"BENCH_{name}.json").write_text(payload)

    return _save
