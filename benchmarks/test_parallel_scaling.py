"""Parallel-engine scaling: end-to-end speedup of the sharded bulk scan.

Measures wall-clock time for ``parallel_update`` of a large skewed stream
into a bulk F-AGMS sketch at 1, 2, and 4 workers — shared-memory key and
counter blocks, chunked work-stealing dispatch — and writes the
machine-readable ``BENCH_parallel.json`` baseline: records of
``{workers, shards, seconds, tuples_per_sec, speedup_vs_1, cpus,
cpu_detection, shared_memory}``, written to ``benchmarks/results/`` and
mirrored at the repo root, plus a human-readable table.

Honest CPU accounting: the worker count a pool can *run* is bounded by
the CPUs this process may actually use, which on shared/containerized
hosts is less than ``os.cpu_count()`` — the scheduler affinity mask and
any cgroup-v2 CPU quota both cap it.  :func:`effective_cpus` resolves the
tightest bound and reports *how* it was detected; the baseline records
both so a reader can interpret the speedups, and the ≥ 3× speedup gate at
4 workers only arms on hosts with at least 4 effective CPUs (speedup is
physically impossible without cores to run on — on smaller hosts the gate
is skipped with the reason, but the measurement and baseline are written
either way).
"""

import math
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.report import format_table
from repro.parallel import WorkerPool, parallel_update
from repro.sketches import FagmsSketch

WORKER_STEPS = (1, 2, 4)
TUPLES = 1_200_000
BUCKETS = 4_096
ROWS = 5
REPS = 3

#: Speedup the 4-worker shared-memory scan must reach on a >= 4-CPU host.
SPEEDUP_GATE_AT_4 = 3.0


def _cgroup_cpu_limit() -> float:
    """CPU limit from a cgroup-v2 quota (``inf`` when unlimited/absent)."""
    try:
        text = Path("/sys/fs/cgroup/cpu.max").read_text().split()
    except OSError:
        return float("inf")
    if len(text) != 2 or text[0] == "max":
        return float("inf")
    quota, period = float(text[0]), float(text[1])
    if quota <= 0 or period <= 0:
        return float("inf")
    return quota / period


def effective_cpus() -> tuple:
    """``(count, method)``: CPUs this process can use, and how we know.

    The count is the tightest of the scheduler affinity mask (itself
    cgroup-cpuset-aware) and any cgroup-v2 bandwidth quota; the method
    string names every source that participated so the benchmark baseline
    is auditable.
    """
    sources = []
    try:
        count = len(os.sched_getaffinity(0))
        sources.append("sched_getaffinity")
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        count = os.cpu_count() or 1
        sources.append("cpu_count")
    quota = _cgroup_cpu_limit()
    if math.isfinite(quota):
        quota_cpus = max(1, math.floor(quota))
        if quota_cpus < count:
            count = quota_cpus
        sources.append("cgroup-v2-cpu.max")
    return count, "+".join(sources)


def _keys() -> np.ndarray:
    rng = np.random.default_rng(29)
    return rng.zipf(1.1, size=TUPLES).clip(0, 2**31 - 2).astype(np.int64)


def _time_run(keys, workers: int) -> float:
    """Best-of-``REPS`` seconds for one sharded bulk scan at *workers*."""
    best = float("inf")
    with WorkerPool(workers) as pool:
        # Warm the pool (process spawn + import cost must not be billed
        # to the measured scan).
        parallel_update(
            FagmsSketch(BUCKETS, ROWS, seed=3), keys[:4_096], pool=pool
        )
        for _ in range(REPS):
            sketch = FagmsSketch(BUCKETS, ROWS, seed=3)
            start = time.perf_counter()
            parallel_update(sketch, keys, shards=workers, pool=pool)
            best = min(best, time.perf_counter() - start)
    return best


def test_parallel_scaling(save_result, save_bench):
    keys = _keys()
    cpus, detection = effective_cpus()

    records = []
    for workers in WORKER_STEPS:
        seconds = _time_run(keys, workers)
        records.append(
            {
                "workers": workers,
                "shards": workers,
                "seconds": round(seconds, 4),
                "tuples_per_sec": round(TUPLES / seconds),
                "cpus": cpus,
                "cpu_detection": detection,
                "shared_memory": workers > 0,
            }
        )
    base = records[0]["seconds"]
    for record in records:
        record["speedup_vs_1"] = round(base / record["seconds"], 3)
        record["gate_armed"] = cpus >= 4

    save_bench("parallel", records)
    save_result(
        "parallel_scaling",
        format_table(
            ("workers", "seconds", "Mtuples/s", "speedup_vs_1"),
            [
                (
                    r["workers"],
                    r["seconds"],
                    r["tuples_per_sec"] / 1e6,
                    r["speedup_vs_1"],
                )
                for r in records
            ],
            title=(
                f"Sharded shared-memory bulk F-AGMS scan ({TUPLES:,} tuples, "
                f"{cpus} effective CPUs via {detection})"
            ),
        ),
    )

    # Sanity on any machine: sharding must not corrupt the result.
    direct = FagmsSketch(BUCKETS, ROWS, seed=3)
    direct.update(keys)
    sharded = FagmsSketch(BUCKETS, ROWS, seed=3)
    parallel_update(sharded, keys, shards=4)
    assert np.array_equal(direct.counters, sharded.counters)

    if cpus < 4:
        pytest.skip(
            f"speedup gate needs >= 4 effective CPUs, found {cpus} "
            f"(detected via {detection}); BENCH_parallel.json was still "
            "written with gate_armed=false"
        )
    four = next(r for r in records if r["workers"] == 4)
    assert four["speedup_vs_1"] >= SPEEDUP_GATE_AT_4, (
        f"4-worker shared-memory sharded scan achieved only "
        f"{four['speedup_vs_1']:.2f}x over 1 worker "
        f"(need >= {SPEEDUP_GATE_AT_4}x on a {cpus}-CPU host)"
    )
