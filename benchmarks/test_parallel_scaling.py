"""Parallel-engine scaling: end-to-end speedup of the sharded bulk scan.

Measures wall-clock time for ``parallel_update`` of a large skewed stream
into a bulk F-AGMS sketch at 1, 2, and 4 workers and writes the
machine-readable ``BENCH_parallel.json`` baseline — records of
``{workers, shards, seconds, tuples_per_sec, speedup_vs_1, cpus}``,
written to ``benchmarks/results/`` and mirrored at the repo root —
plus a human-readable table.

The speedup gate asserts ≥ 1.6× at 4 workers over the single-worker run.
Speedup is physically impossible without cores to run on, so the gate —
*not* the measurement — is skipped on machines with fewer than 4 usable
CPUs; the JSON baseline is written either way, recording the CPU count so
a reader can interpret the numbers.
"""

import time

import numpy as np
import pytest

from repro.experiments.report import format_table
from repro.parallel import WorkerPool, available_cpus, parallel_update
from repro.sketches import FagmsSketch

WORKER_STEPS = (1, 2, 4)
TUPLES = 1_200_000
BUCKETS = 4_096
ROWS = 5
REPS = 3


def _keys() -> np.ndarray:
    rng = np.random.default_rng(29)
    return rng.zipf(1.1, size=TUPLES).clip(0, 2**31 - 2).astype(np.int64)


def _time_run(keys, workers: int) -> float:
    """Best-of-``REPS`` seconds for one sharded bulk scan at *workers*."""
    best = float("inf")
    with WorkerPool(workers) as pool:
        # Warm the pool (process spawn + import cost must not be billed
        # to the measured scan).
        parallel_update(
            FagmsSketch(BUCKETS, ROWS, seed=3), keys[:4_096], pool=pool
        )
        for _ in range(REPS):
            sketch = FagmsSketch(BUCKETS, ROWS, seed=3)
            start = time.perf_counter()
            parallel_update(sketch, keys, shards=workers, pool=pool)
            best = min(best, time.perf_counter() - start)
    return best


def test_parallel_scaling(save_result, save_bench):
    keys = _keys()
    cpus = available_cpus()

    records = []
    for workers in WORKER_STEPS:
        seconds = _time_run(keys, workers)
        records.append(
            {
                "workers": workers,
                "shards": workers,
                "seconds": round(seconds, 4),
                "tuples_per_sec": round(TUPLES / seconds),
                "cpus": cpus,
            }
        )
    base = records[0]["seconds"]
    for record in records:
        record["speedup_vs_1"] = round(base / record["seconds"], 3)

    save_bench("parallel", records)
    save_result(
        "parallel_scaling",
        format_table(
            ("workers", "seconds", "Mtuples/s", "speedup_vs_1"),
            [
                (
                    r["workers"],
                    r["seconds"],
                    r["tuples_per_sec"] / 1e6,
                    r["speedup_vs_1"],
                )
                for r in records
            ],
            title=f"Sharded bulk F-AGMS scan ({TUPLES:,} tuples, {cpus} CPUs)",
        ),
    )

    # Sanity on any machine: sharding must not corrupt the result.
    direct = FagmsSketch(BUCKETS, ROWS, seed=3)
    direct.update(keys)
    sharded = FagmsSketch(BUCKETS, ROWS, seed=3)
    parallel_update(sharded, keys, shards=4)
    assert np.array_equal(direct.counters, sharded.counters)

    if cpus < 4:
        pytest.skip(
            f"speedup gate needs >= 4 usable CPUs, found {cpus}; "
            "BENCH_parallel.json was still written"
        )
    four = next(r for r in records if r["workers"] == 4)
    assert four["speedup_vs_1"] >= 1.6, (
        f"4-worker sharded scan achieved only {four['speedup_vs_1']:.2f}x "
        f"over 1 worker (need >= 1.6x)"
    )
