"""Figure 3: size-of-join relative error vs skew, Bernoulli sampling.

Expected shape (Section VII-A): for moderate skew the error curves of the
different sampling probabilities stay close to the full-sketch (p = 1)
curve — the decrease in accuracy from sampling is small.
"""

from repro.experiments import fig3_join_error_bernoulli


def test_fig3(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig3_join_error_bernoulli(scale), rounds=1, iterations=1
    )
    save_result("fig3", result.format())

    skews = sorted({row[0] for row in result.rows})
    moderate = [s for s in skews if 1.0 <= s <= 2.0]
    for skew in moderate:
        rows = {row[1]: row[2] for row in result.rows if row[0] == skew}
        # p = 0.1 must not blow up relative to the plain sketch: allow a
        # generous factor plus an absolute floor for Monte-Carlo noise.
        assert rows[0.1] < max(10 * rows[1.0], 0.25), (skew, rows)
