"""Figure 6: self-join-size error vs with-replacement sample fraction.

Same expected shape as Fig 5: decreasing error that stabilizes at around a
0.1 sampling fraction.
"""

from repro.experiments import fig6_self_join_error_wr


def test_fig6(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig6_self_join_error_wr(scale), rounds=1, iterations=1
    )
    save_result("fig6", result.format())

    for skew in sorted({row[1] for row in result.rows}):
        errors = {row[0]: row[2] for row in result.rows if row[1] == skew}
        assert errors[0.01] > errors[0.1], (skew, errors)
        assert errors[0.1] < 6 * max(errors[1.0], 0.02), (skew, errors)
