"""Figure 1: size-of-join variance decomposition vs skew (Bernoulli).

Regenerates the paper's Fig 1 series: the relative contribution of the
sampling / sketch / interaction variance terms as a function of the Zipf
skew, for several sampling probabilities.  Expected shape: the interaction
term dominates at low skew, the sketch term at high skew, and the sampling
term is negligible throughout.
"""

from repro.experiments import fig1_join_variance_decomposition


def test_fig1(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig1_join_variance_decomposition(scale), rounds=1, iterations=1
    )
    save_result("fig1", result.format())

    # Shape assertions (the paper's qualitative claims).
    for p in (0.1, 0.01):
        rows = result.series(p)
        low_skew = rows[0]  # skew 0
        high_skew = rows[-1]  # highest skew
        assert low_skew[4] > low_skew[2], "interaction should beat sampling at skew 0"
        assert high_skew[3] > 0.5, "sketch term should dominate at high skew"
