"""Ablation: point-frequency query accuracy by sketch type at equal space.

Three sketches can answer "how often did key k appear?":

* **F-AGMS** (Count-Sketch): unbiased, error ~ sqrt(F₂/buckets);
* **AGMS**: unbiased but error ~ sqrt(F₂) per row — point queries are not
  what it is for;
* **Count-Min**: biased upward by ~F₁/buckets, but never underestimates.

The table quantifies the trade-offs on a Zipf stream; Count-Sketch's win
on unbiased accuracy is why the heavy-hitter layer
(``repro.core.heavy_hitters``) builds on F-AGMS.
"""

import numpy as np
import pytest

from repro.experiments.report import format_table
from repro.sketches import AgmsSketch, CountMinSketch, FagmsSketch
from repro.streams import zipf_relation

BUDGET = 512  # counters per sketch
TRIALS = 15
QUERY_KEYS = 64


@pytest.fixture(scope="module")
def workload():
    return zipf_relation(100_000, 5_000, 1.2, seed=24, shuffle_values=False)


def _mean_absolute_error(factory, fv, keys):
    errors = []
    for seed in range(TRIALS):
        sketch = factory(seed)
        sketch.update_frequency_vector(fv)
        if isinstance(sketch, CountMinSketch):
            estimates = np.array([sketch.point_estimate(int(k)) for k in keys])
        else:
            estimates = sketch.estimate_frequencies(keys)
        errors.append(np.abs(estimates - fv.counts[keys]).mean())
    return float(np.mean(errors))


def _mean_bias(factory, fv, keys):
    biases = []
    for seed in range(TRIALS):
        sketch = factory(seed)
        sketch.update_frequency_vector(fv)
        if isinstance(sketch, CountMinSketch):
            estimates = np.array([sketch.point_estimate(int(k)) for k in keys])
        else:
            estimates = sketch.estimate_frequencies(keys)
        biases.append((estimates - fv.counts[keys]).mean())
    return float(np.mean(biases))


def test_point_query_ablation(benchmark, workload, save_result):
    fv = workload.frequency_vector()
    keys = np.arange(QUERY_KEYS, dtype=np.int64)
    variants = {
        "fagms-3x170": lambda seed: FagmsSketch(
            BUDGET // 3, rows=3, seed=seed
        ),
        "agms-512rows": lambda seed: AgmsSketch(BUDGET, seed=seed),
        "countmin-3x170": lambda seed: CountMinSketch(
            BUDGET // 3, rows=3, seed=seed
        ),
    }
    maes = {name: _mean_absolute_error(fn, fv, keys) for name, fn in variants.items()}
    biases = {name: _mean_bias(fn, fv, keys) for name, fn in variants.items()}
    benchmark.pedantic(
        lambda: _mean_absolute_error(variants["fagms-3x170"], fv, keys),
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_point_queries",
        format_table(
            ("sketch", "mean_abs_error", "mean_bias"),
            [(name, maes[name], biases[name]) for name in variants],
            title=f"[ablation] point-frequency queries at {BUDGET} counters "
            f"(Zipf(1.2), {QUERY_KEYS} heaviest keys)",
        ),
    )
    # Count-Sketch is the most accurate unbiased option.
    assert maes["fagms-3x170"] < maes["agms-512rows"]
    assert maes["fagms-3x170"] < maes["countmin-3x170"]
    # Count-Min's bias is positive (upper bound), Count-Sketch's near zero.
    assert biases["countmin-3x170"] > 0
    assert abs(biases["fagms-3x170"]) < 0.5 * biases["countmin-3x170"]
