"""Figure 7: TPC-H lineitem ⋈ orders error vs WOR sampling rate.

Expected shape (Section VII-C): large error at a 1% rate, dropping rapidly
and stabilizing around 10%.  The paper additionally observed the error
*rising* again past 10% (the F-AGMS bucket-contention effect of Section
VII-D) at their bucket-to-key ratio; see
``test_ablation_bucket_contention.py`` which probes that regime directly.
"""

from repro.experiments import fig7_join_error_wor_tpch


def test_fig7(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig7_join_error_wor_tpch(scale), rounds=1, iterations=1
    )
    save_result("fig7", result.format())

    errors = {row[0]: row[1] for row in result.rows}
    assert errors[0.01] > errors[0.1], errors
    # by 10% the estimate is usable
    assert errors[0.1] < 0.5, errors
