"""Extended study 3: measured pipeline variance vs the exact theory.

The decisive reproduction-quality check: for each scheme, the empirical
variance of the full sketch-over-sample pipeline must be bounded by —
and reasonably close to — the exact combined variance of Props 10/12.
Ratios below 1 on skewed data are the paper's own observation about
F-AGMS ("orders of magnitude better than the theoretical predictions").
"""

from repro.experiments.extended import ext3_theory_vs_monte_carlo


def test_ext3(benchmark, scale, save_result):
    run_scale = scale.with_(trials=max(scale.trials, 80))
    result = benchmark.pedantic(
        lambda: ext3_theory_vs_monte_carlo(run_scale), rounds=1, iterations=1
    )
    save_result("ext3_theory_vs_mc", result.format())

    for scheme, empirical, theoretical, ratio in result.rows:
        assert theoretical > 0, scheme
        # Empirical variance must not exceed theory by more than MC noise
        # (variance-of-variance at ~80 trials: allow 60% headroom)...
        assert ratio < 1.6, (scheme, ratio)
        # ...and should not be absurdly below it either (broken pipeline).
        assert ratio > 0.2, (scheme, ratio)
