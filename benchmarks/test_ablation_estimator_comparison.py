"""Ablation: sampling-only vs sketch-only vs combined, at equal budget.

The paper's §V-B discussion (citing its ref [2]): sketches are optimal for
the second frequency moment while sampling is optimal for the size of
join.  This bench measures all three estimators — WOR sample of ``m``
tuples, sketch of ``m`` basic estimators, and the combined
sketch-over-10%-sample — on the same data, for both aggregates, and prints
the trade-off matrix.
"""

import numpy as np
import pytest

from repro.core.estimators import estimate_join_size, estimate_self_join_size
from repro.core.sampling_estimators import sample_join_size, sample_self_join_size
from repro.experiments.report import format_table
from repro.experiments.runner import run_trials
from repro.sampling import WithoutReplacementSampler
from repro.sketches import FagmsSketch
from repro.streams.synthetic import zipf_frequency_vector

BUDGET = 1_000
TRIALS = 25
SKEW = 0.8


@pytest.fixture(scope="module")
def data():
    f = zipf_frequency_vector(40_000, 2_000, SKEW, seed=14, shuffle_values=True)
    g = zipf_frequency_vector(40_000, 2_000, SKEW, seed=15, shuffle_values=True)
    return f, g


def _sample_only(f, g):
    sampler = WithoutReplacementSampler(size=BUDGET)

    def join_trial(rng):
        sample_f, info_f = sampler.sample_frequencies(f, rng)
        sample_g, info_g = sampler.sample_frequencies(g, rng)
        return sample_join_size(sample_f, info_f, sample_g, info_g, f.domain_size)

    def f2_trial(rng):
        sample_f, info_f = sampler.sample_frequencies(f, rng)
        return sample_self_join_size(sample_f, info_f, f.domain_size)

    return join_trial, f2_trial


def _sketch_only(f, g):
    def join_trial(rng):
        sketch_f = FagmsSketch(BUDGET, seed=int(rng.integers(2**63)))
        sketch_g = sketch_f.copy_empty()
        sketch_f.update_frequency_vector(f)
        sketch_g.update_frequency_vector(g)
        return sketch_f.inner_product(sketch_g)

    def f2_trial(rng):
        sketch = FagmsSketch(BUDGET, seed=int(rng.integers(2**63)))
        sketch.update_frequency_vector(f)
        return sketch.second_moment()

    return join_trial, f2_trial


def _combined(f, g):
    sampler = WithoutReplacementSampler(fraction=0.1)

    def join_trial(rng):
        sketch_f = FagmsSketch(BUDGET, seed=int(rng.integers(2**63)))
        sketch_g = sketch_f.copy_empty()
        sample_f, info_f = sampler.sample_frequencies(f, rng)
        sample_g, info_g = sampler.sample_frequencies(g, rng)
        sketch_f.update_frequency_vector(sample_f)
        sketch_g.update_frequency_vector(sample_g)
        return estimate_join_size(sketch_f, info_f, sketch_g, info_g).value

    def f2_trial(rng):
        sketch = FagmsSketch(BUDGET, seed=int(rng.integers(2**63)))
        sample, info = sampler.sample_frequencies(f, rng)
        sketch.update_frequency_vector(sample)
        return estimate_self_join_size(sketch, info).value

    return join_trial, f2_trial


def test_estimator_comparison(benchmark, data, save_result):
    f, g = data
    join_truth = f.join_size(g)
    f2_truth = f.f2
    estimators = {
        "sample-only": _sample_only(f, g),
        "sketch-only": _sketch_only(f, g),
        "sketch-over-10%-sample": _combined(f, g),
    }
    rows = []
    errors = {}
    for name, (join_trial, f2_trial) in estimators.items():
        join_stats = run_trials(join_trial, join_truth, TRIALS, seed=21)
        f2_stats = run_trials(f2_trial, f2_truth, TRIALS, seed=22)
        errors[name] = (join_stats.mean_error, f2_stats.mean_error)
        rows.append((name, join_stats.mean_error, f2_stats.mean_error))
    benchmark.pedantic(
        lambda: run_trials(estimators["sketch-only"][1], f2_truth, 5, seed=1),
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_estimator_comparison",
        format_table(
            ("estimator", "join_mean_err", "f2_mean_err"),
            rows,
            title=(
                f"[ablation §V-B] estimator trade-off at budget {BUDGET} "
                f"(Zipf({SKEW}), independent relations)"
            ),
        ),
    )
    # The classic trade-off: sketch wins F2, sampling wins join.
    assert errors["sketch-only"][1] < errors["sample-only"][1]
    assert errors["sample-only"][0] < np.inf  # report join numerically
    # The combined estimator must stay competitive with the plain sketch.
    assert errors["sketch-over-10%-sample"][1] < 5 * max(
        errors["sketch-only"][1], 0.02
    )
