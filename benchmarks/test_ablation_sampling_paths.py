"""Ablation: tuple-domain vs frequency-domain sampling paths.

The two paths are distribution-identical (tested statistically in the unit
suite); this bench quantifies the Monte-Carlo speed argument for the
frequency path that all experiment figures rely on.
"""

import time

import pytest

from repro.core import estimate_self_join_size, sketch_over_sample
from repro.experiments.report import format_table
from repro.sampling import BernoulliSampler
from repro.sketches import FagmsSketch
from repro.streams import zipf_relation

TRIALS = 10


@pytest.fixture(scope="module")
def relation():
    return zipf_relation(400_000, 20_000, 1.0, seed=6)


def _run_path(relation, path, seed) -> float:
    sketch = FagmsSketch(1024, seed=seed)
    info = sketch_over_sample(
        relation, BernoulliSampler(0.1), sketch, seed=seed, path=path
    )
    return estimate_self_join_size(sketch, info).value


def test_sampling_path_ablation(benchmark, relation, save_result):
    timings = {}
    for path in ("items", "frequency"):
        relation.frequency_vector()  # pre-build the cache for fairness
        start = time.perf_counter()
        for seed in range(TRIALS):
            _run_path(relation, path, seed)
        timings[path] = (time.perf_counter() - start) / TRIALS
    benchmark.pedantic(
        lambda: _run_path(relation, "frequency", 0), rounds=3, iterations=1
    )
    save_result(
        "ablation_sampling_paths",
        format_table(
            ("path", "seconds_per_trial", "speedup"),
            [
                ("items", timings["items"], 1.0),
                (
                    "frequency",
                    timings["frequency"],
                    timings["items"] / timings["frequency"],
                ),
            ],
            title="[ablation] Monte-Carlo trial cost by sampling path "
            f"({len(relation)} tuples, p=0.1)",
        ),
    )
    assert timings["frequency"] < timings["items"]
