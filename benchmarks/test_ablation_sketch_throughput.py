"""Ablation: update throughput of AGMS vs F-AGMS at equal estimator count.

The paper uses F-AGMS because one tuple touches one counter per row; a
basic AGMS sketch with the same number of basic estimators touches *all*
of them.  This bench quantifies that gap — the very gap load shedding
(Section VI-A) exists to close when even F-AGMS updates are too slow.
"""

import time

import pytest

from repro.experiments.report import format_table
from repro.sketches import AgmsSketch, FagmsSketch
from repro.streams import zipf_relation

ESTIMATORS = 512  # AGMS rows == F-AGMS buckets
STREAM = 100_000
CHUNK = 8_192


@pytest.fixture(scope="module")
def stream():
    return zipf_relation(STREAM, 20_000, 1.0, seed=16)


def _throughput(sketch, relation) -> float:
    start = time.perf_counter()
    for chunk in relation.chunks(CHUNK):
        sketch.update(chunk)
    return relation.keys.size / (time.perf_counter() - start)


def test_sketch_update_throughput(benchmark, stream, save_result):
    rates = {
        "agms-512rows": min(
            _throughput(AgmsSketch(ESTIMATORS, seed=1), stream) for _ in range(3)
        ),
        "fagms-512buckets": min(
            _throughput(FagmsSketch(ESTIMATORS, rows=1, seed=1), stream)
            for _ in range(3)
        ),
    }
    benchmark.pedantic(
        lambda: _throughput(FagmsSketch(ESTIMATORS, rows=1, seed=1), stream),
        rounds=3,
        iterations=1,
    )
    save_result(
        "ablation_sketch_throughput",
        format_table(
            ("sketch", "Mtuples_per_s"),
            [(name, rate / 1e6) for name, rate in sorted(rates.items())],
            title=f"[ablation] update throughput at {ESTIMATORS} basic estimators",
        ),
    )
    # F-AGMS must be dramatically faster at equal estimator count.
    assert rates["fagms-512buckets"] > 5 * rates["agms-512rows"]
