"""Figure 5: size-of-join error vs with-replacement sample fraction.

Expected shape (Section VII-B): the error decreases with the sample size
and stabilizes around a 0.1 fraction of the population — "sketching more
samples does not provide any increase in the accuracy after a certain
point".
"""

from repro.experiments import fig5_join_error_wr


def test_fig5(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig5_join_error_wr(scale), rounds=1, iterations=1
    )
    save_result("fig5", result.format())

    for skew in sorted({row[1] for row in result.rows}):
        errors = {row[0]: row[2] for row in result.rows if row[1] == skew}
        # decreasing from 1% to 10%
        assert errors[0.01] > errors[0.1], (skew, errors)
        # stabilized: 10% within a small factor of the full-fraction error
        assert errors[0.1] < 6 * max(errors[1.0], 0.02), (skew, errors)
