"""Ablation: F-AGMS bucket contention vs WOR sampling rate (Section VII-D).

The paper observed (its Fig 7) that past a 10% rate the join error *rose*
again, attributing it to bucket contention: "as more data is sketched, the
contention in buckets increases and this produces a wider variance".

This bench probes that regime directly: the TPC-H join error as a function
of the WOR rate at several bucket-to-distinct-key ratios.  **In this
implementation the effect does not reproduce** — the error is monotone
decreasing in the sampling rate at every contention level we probed (the
variance added by extra collisions grows more slowly than the sampling
noise removed).  What contention demonstrably does is raise the error
*level* across all rates, which the bench asserts.  EXPERIMENTS.md records
this as the one shape deviation from the paper.
"""

import numpy as np
import pytest

from repro.core.estimators import estimate_join_size
from repro.experiments.report import format_table
from repro.experiments.runner import run_trials
from repro.sampling import WithoutReplacementSampler
from repro.sketches import FagmsSketch
from repro.streams.tpch import generate_tpch

FRACTIONS = (0.05, 0.1, 0.3, 1.0)
BUCKET_COUNTS = (200, 1_000, 4_000)
TRIALS = 20


@pytest.fixture(scope="module")
def tables():
    return generate_tpch(scale_factor=20_000 / 1_500_000, seed=11)


def _error_curve(tables, buckets):
    f = tables.lineitem.frequency_vector()
    g = tables.orders.frequency_vector()
    truth = tables.exact_join_size()
    curve = {}
    for fraction in FRACTIONS:
        sampler = WithoutReplacementSampler(fraction=fraction)

        def trial(rng):
            sketch_f = FagmsSketch(buckets, seed=int(rng.integers(2**63)))
            sketch_g = sketch_f.copy_empty()
            sample_f, info_f = sampler.sample_frequencies(f, rng)
            sample_g, info_g = sampler.sample_frequencies(g, rng)
            sketch_f.update_frequency_vector(sample_f)
            sketch_g.update_frequency_vector(sample_g)
            return estimate_join_size(sketch_f, info_f, sketch_g, info_g).value

        curve[fraction] = run_trials(trial, truth, TRIALS, seed=13).mean_error
    return curve


def test_bucket_contention(benchmark, tables, save_result):
    curves = {buckets: _error_curve(tables, buckets) for buckets in BUCKET_COUNTS}
    benchmark.pedantic(
        lambda: _error_curve(tables, BUCKET_COUNTS[0]), rounds=1, iterations=1
    )
    rows = [
        (buckets, *(curves[buckets][fraction] for fraction in FRACTIONS))
        for buckets in BUCKET_COUNTS
    ]
    save_result(
        "ablation_bucket_contention",
        format_table(
            ("buckets",) + tuple(f"err@{fraction}" for fraction in FRACTIONS),
            rows,
            title=(
                "[ablation §VII-D] TPC-H join error vs WOR rate under bucket "
                f"contention ({tables.n_orders} distinct orderkeys)"
            ),
        ),
    )
    mean_curves = {
        buckets: np.array([curves[buckets][fraction] for fraction in FRACTIONS])
        for buckets in BUCKET_COUNTS
    }
    # Contention raises the error level at every rate...
    assert np.all(mean_curves[200] > mean_curves[4_000])
    # ...but (deviation from the paper's Fig 7) the curves stay monotone
    # decreasing in the sampling rate in this implementation.
    for buckets in BUCKET_COUNTS:
        assert mean_curves[buckets][0] > mean_curves[buckets][-1]
