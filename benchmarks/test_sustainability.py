"""Sustainable-rate study: shedding vs uncontrolled loss (Section VI-A).

Simulates the queueing behaviour of a sketch pipeline under increasing
arrival rates, with and without Bernoulli shedding.  The table regenerated
here is the operational argument for the whole paper: past the no-shedding
capacity, the unshedded pipeline loses tuples *uncontrollably* (unusable
for estimation), while the shedding pipeline removes a *Bernoulli sample*
(fully analyzable, Props 13–14) and stays stable up to ≈ 1/p times the
original rate.
"""

import pytest

from repro.experiments.report import format_table
from repro.streams.arrival import (
    ServiceModel,
    poisson_arrivals,
    simulate_backlog,
    sustainable_rate,
)

MODEL = ServiceModel(filter_cost=0.05, sketch_cost=1.0)
DURATION = 3_000.0
RATE_MULTIPLES = (0.5, 1.5, 4.0, 8.0)
KEEP_PROBABILITIES = (1.0, 0.2, 0.1)


def _loss(rate, p, seed):
    arrivals = poisson_arrivals(rate, DURATION, seed=seed)
    result = simulate_backlog(arrivals, MODEL, p, buffer_capacity=256, seed=seed)
    return result.loss_fraction


@pytest.fixture(scope="module")
def capacity():
    return sustainable_rate(MODEL, 1.0)


def test_sustainability(benchmark, capacity, save_result):
    rows = []
    losses = {}
    for multiple in RATE_MULTIPLES:
        rate = multiple * capacity
        row = [multiple]
        for p in KEEP_PROBABILITIES:
            loss = _loss(rate, p, seed=17)
            losses[(multiple, p)] = loss
            row.append(loss)
        rows.append(tuple(row))
    benchmark.pedantic(
        lambda: _loss(2 * capacity, 0.1, seed=18), rounds=1, iterations=1
    )
    save_result(
        "sustainability",
        format_table(
            ("rate/capacity",) + tuple(f"loss@p={p}" for p in KEEP_PROBABILITIES),
            rows,
            title=(
                "[§VI-A] uncontrolled loss fraction vs arrival rate "
                f"(capacity at p=1: {capacity:.3f} tuples/unit)"
            ),
        ),
    )
    # Below capacity everything is fine.
    assert losses[(0.5, 1.0)] == 0.0
    # 4x over capacity: unshedded pipeline loses most tuples...
    assert losses[(4.0, 1.0)] > 0.5
    # ...while p=0.1 shedding (capacity ~7x) is still lossless.
    assert losses[(4.0, 0.1)] < 0.01
    # At 8x even p=0.1 starts losing, p=0.2 loses more: ordering holds.
    assert losses[(8.0, 0.1)] <= losses[(8.0, 0.2)] <= losses[(8.0, 1.0)]
