"""Ablation: sketch variant accuracy at equal counter budget.

Compares, at a fixed budget of counters, the three estimator organizations
the literature offers (and the paper's refs [1]-[4] discuss):

* AGMS with mean combining (the analyzed construction),
* AGMS with median-of-means,
* F-AGMS (one row of many buckets, the paper's experimental choice).

Expected: F-AGMS wins on accuracy *and* update cost for skewed data — the
reason the paper uses it for all experiments.
"""

import numpy as np
import pytest

from repro.experiments.report import format_table
from repro.sketches import AgmsSketch, FagmsSketch
from repro.streams.synthetic import zipf_frequency_vector

COUNTERS = 256
TRIALS = 25
SKEW = 1.2


@pytest.fixture(scope="module")
def data():
    return zipf_frequency_vector(100_000, 5_000, SKEW, seed=4, shuffle_values=False)


def _mean_error(factory, fv, truth):
    errors = []
    for seed in range(TRIALS):
        sketch = factory(seed)
        sketch.update_frequency_vector(fv)
        errors.append(abs(sketch.second_moment() - truth) / truth)
    return float(np.mean(errors))


def test_sketch_variant_accuracy(benchmark, data, save_result):
    truth = data.f2
    variants = {
        "agms-mean": lambda seed: AgmsSketch(COUNTERS, seed=seed),
        "agms-median-of-means": lambda seed: AgmsSketch(
            COUNTERS, seed=seed, combine="median-of-means", groups=8
        ),
        "fagms-median": lambda seed: FagmsSketch(COUNTERS, rows=1, seed=seed),
    }
    errors = {
        name: _mean_error(factory, data, truth) for name, factory in variants.items()
    }
    benchmark.pedantic(
        lambda: _mean_error(variants["fagms-median"], data, truth),
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_sketch_variants",
        format_table(
            ("variant", "mean_rel_error"),
            sorted(errors.items()),
            title=f"[ablation] F2 error at {COUNTERS} counters, Zipf({SKEW})",
        ),
    )
    # F-AGMS should beat basic AGMS clearly on skewed data.
    assert errors["fagms-median"] < errors["agms-mean"]
    assert errors["fagms-median"] < errors["agms-median-of-means"]
