"""Dataplane overhead baseline: pipeline vs bare StreamRuntime scan.

Writes ``BENCH_dataplane.json``: tuples/second for (a) the bare
hand-rolled ingest loop (``StreamRuntime.process`` over
``envelope_stream``, the pre-dataplane idiom), (b) the synchronous
``Pipeline`` over the same runtime, (c) the threaded pipeline with a
bounded queue, and (d) a fuller shed -> sketch operator chain.  The gate:
the synchronous pipeline must sustain at least ``MIN_RELATIVE`` (0.85x)
of the bare scan's throughput — composability must not tax the hot loop.

Both contenders process identical chunks with identical seeds, so the
comparison is pure dispatch overhead (the sketch work is shared).
"""

from __future__ import annotations

import time

import numpy as np

from repro.dataplane import (
    IterableSource,
    Pipeline,
    RuntimeSink,
    ShedOperator,
    SketchUpdateOperator,
)
from repro.experiments.report import format_table
from repro.resilience import StreamRuntime, envelope_stream
from repro.sketches.fagms import FagmsSketch

CHUNKS = 200
CHUNK_SIZE = 4_096
DOMAIN = 10_000
REPS = 5
MIN_RELATIVE = 0.85


def _chunks() -> list:
    rng = np.random.default_rng(171)
    return [
        rng.integers(0, DOMAIN, CHUNK_SIZE, dtype=np.int64)
        for _ in range(CHUNKS)
    ]


def _runtime() -> StreamRuntime:
    return StreamRuntime(FagmsSketch(1024, rows=5, seed=172), p=1.0, seed=173)


def _best(fn, chunks) -> float:
    """Best-of-REPS wall-clock seconds for one full scan."""
    best = float("inf")
    for _ in range(REPS):
        started = time.perf_counter()
        fn(chunks)
        best = min(best, time.perf_counter() - started)
    return best


def _bare_scan(chunks) -> None:
    runtime = _runtime()
    for envelope in envelope_stream(chunks):
        runtime.process(envelope)


def _sync_pipeline(chunks) -> None:
    runtime = _runtime()
    Pipeline(
        IterableSource(chunks), sinks=[RuntimeSink(runtime)], queue_depth=0
    ).run()


def _threaded_pipeline(chunks) -> None:
    runtime = _runtime()
    Pipeline(
        IterableSource(chunks), sinks=[RuntimeSink(runtime)], queue_depth=8
    ).run()


def _operator_chain(chunks) -> None:
    sketch = FagmsSketch(1024, rows=5, seed=172)
    Pipeline(
        IterableSource(chunks),
        ShedOperator(1.0, seed=173),
        SketchUpdateOperator(sketch),
        queue_depth=0,
    ).run()


def test_dataplane_throughput(save_result, save_bench):
    chunks = _chunks()
    tuples = CHUNKS * CHUNK_SIZE
    _bare_scan(chunks)  # warm the kernels and allocators once

    scenarios = (
        ("bare_runtime_scan", _bare_scan),
        ("pipeline_sync", _sync_pipeline),
        ("pipeline_threaded", _threaded_pipeline),
        ("pipeline_shed_sketch", _operator_chain),
    )
    seconds = {name: _best(fn, chunks) for name, fn in scenarios}
    base = seconds["bare_runtime_scan"]

    records = []
    for name, _ in scenarios:
        records.append(
            {
                "scenario": name,
                "tuples": tuples,
                "chunk_size": CHUNK_SIZE,
                "seconds": round(seconds[name], 4),
                "tuples_per_second": round(tuples / seconds[name]),
                "relative_throughput": round(base / seconds[name], 4),
            }
        )
    save_bench("dataplane", records)
    save_result(
        "dataplane",
        format_table(
            ["scenario", "seconds", "tuples/s", "vs bare"],
            [
                [
                    r["scenario"],
                    r["seconds"],
                    r["tuples_per_second"],
                    r["relative_throughput"],
                ]
                for r in records
            ],
            title="Dataplane: pipeline throughput vs bare StreamRuntime scan",
        ),
    )

    # The gate: composability must cost < 15% on the synchronous path.
    relative = base / seconds["pipeline_sync"]
    assert relative >= MIN_RELATIVE, (
        f"sync pipeline sustained only {relative:.3f}x of the bare scan "
        f"(gate: {MIN_RELATIVE}x)"
    )
