"""Ablation: ±1 generator choice (4-wise polynomial vs EH3).

The paper's ref [17] (Rusu & Dobra, TODS 2007) recommends EH3 in practice:
it is only 3-wise independent but faster, and its estimation accuracy
matches the 4-wise polynomial scheme.  This bench verifies both halves of
that claim on our implementation.
"""

import time

import numpy as np
import pytest

from repro.experiments.report import format_table
from repro.hashing import EH3SignFamily, FourWiseSignFamily
from repro.sketches import FagmsSketch
from repro.streams.synthetic import zipf_frequency_vector

TRIALS = 25
BUCKETS = 512


@pytest.fixture(scope="module")
def data():
    return zipf_frequency_vector(100_000, 5_000, 1.0, seed=5, shuffle_values=False)


def _mean_error(sign_family, fv, truth):
    errors = []
    for seed in range(TRIALS):
        sketch = FagmsSketch(BUCKETS, rows=1, seed=seed, sign_family=sign_family)
        sketch.update_frequency_vector(fv)
        errors.append(abs(sketch.second_moment() - truth) / truth)
    return float(np.mean(errors))


def _evaluation_rate(family_cls) -> float:
    """Sign evaluations per second over a large key batch."""
    family = family_cls(rows=1, seed=1)
    keys = np.arange(1_000_000)
    start = time.perf_counter()
    family.evaluate_row(0, keys)
    return keys.size / (time.perf_counter() - start)


def test_sign_family_ablation(benchmark, data, save_result):
    truth = data.f2
    errors = {
        "fourwise": _mean_error("fourwise", data, truth),
        "eh3": _mean_error("eh3", data, truth),
    }
    rates = {
        "fourwise": _evaluation_rate(FourWiseSignFamily),
        "eh3": _evaluation_rate(EH3SignFamily),
    }
    benchmark.pedantic(
        lambda: _evaluation_rate(EH3SignFamily), rounds=1, iterations=1
    )
    save_result(
        "ablation_hashing",
        format_table(
            ("family", "mean_rel_error", "Msigns_per_s"),
            [(name, errors[name], rates[name] / 1e6) for name in ("fourwise", "eh3")],
            title="[ablation] ±1 family: accuracy and evaluation rate",
        ),
    )
    # Accuracy parity: EH3 within 2x of the 4-wise scheme's error.
    assert errors["eh3"] < 2 * errors["fourwise"] + 0.02
