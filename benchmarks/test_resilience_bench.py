"""Resilience baseline: recovery latency and degraded-mode accuracy.

Writes ``BENCH_resilience.json``: one record per fault scenario for the
supervised sharded engine — fault-free baseline, retried transient drops,
a deadline-culled hang — each with wall-clock seconds and the recovery
overhead relative to the baseline, plus a Monte Carlo summary of degraded
(lost-shard) estimation: mean relative error of the ``1/q``-scaled
self-join estimate and the empirical coverage of the widened 90%
Chebyshev interval (which must be >= nominal: the bounds are
conservative by construction).

Everything runs on the inline pool with seeded fault plans, so the
numbers measure the engine, not process-spawn jitter.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.report import format_table
from repro.parallel import WorkerPool, run_sharded_sketch
from repro.resilience.chaos import (
    ChaosShardWorker,
    ParallelChaosPlan,
    WorkerFault,
)
from repro.sketches.fagms import FagmsSketch

SHARDS = 4
TUPLES = 120_000
DOMAIN = 5_000
CONFIDENCE = 0.90
DEGRADED_TRIALS = 12

#: A hang long enough that only the deadline (not patience) recovers it.
HANG_SECONDS = 30.0
DEADLINE = 0.25


def _keys(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.zipf(1.2, size=TUPLES).clip(0, DOMAIN - 1).astype(np.int64)


def _template() -> FagmsSketch:
    return FagmsSketch(1024, rows=7, seed=5)


def _timed_run(keys, pool, **kwargs):
    start = time.perf_counter()
    result = run_sharded_sketch(
        keys, _template(), shards=SHARDS, pool=pool, **kwargs
    )
    return time.perf_counter() - start, result


def test_resilience_baseline(save_result, save_bench):
    keys = _keys(31)

    # Faults that stall (hang) can only be preempted across a process
    # boundary, so the timed scenarios run on a real warmed 2-process
    # pool; the degraded-accuracy Monte Carlo below stays inline.
    with WorkerPool(2) as pool:
        run_sharded_sketch(keys[:4_096], _template(), shards=2, pool=pool)

        base_seconds, baseline = _timed_run(keys, pool)

        drop_plan = ParallelChaosPlan(
            faults=tuple(
                ((shard, 0), WorkerFault("drop")) for shard in range(SHARDS)
            )
        )
        drop_seconds, dropped = _timed_run(
            keys, pool, max_retries=2, _worker=ChaosShardWorker(drop_plan)
        )
        assert np.array_equal(dropped.sketch._state(), baseline.sketch._state())

        hang_plan = ParallelChaosPlan(
            faults=(((1, 0), WorkerFault("hang", HANG_SECONDS)),)
        )
        hang_seconds, hung = _timed_run(
            keys,
            pool,
            max_retries=1,
            deadline=DEADLINE,
            poll_interval=0.02,
            _worker=ChaosShardWorker(hang_plan),
        )
        assert np.array_equal(hung.sketch._state(), baseline.sketch._state())
        # The whole point of the deadline: recovery latency is bounded by
        # the deadline + one re-run, never by the fault duration.
        assert hang_seconds < HANG_SECONDS / 2

    records = []
    for scenario, seconds, result in (
        ("baseline", base_seconds, baseline),
        ("retry_drop", drop_seconds, dropped),
        ("deadline_hang", hang_seconds, hung),
    ):
        records.append(
            {
                "scenario": scenario,
                "seconds": round(seconds, 4),
                "recovery_overhead": round(seconds / base_seconds, 3),
                "retries": result.retries,
                "hedges": result.hedges,
                "shards": SHARDS,
            }
        )

    # Degraded-mode accuracy: lose one fixed shard per trial, vary the
    # stream, and score the 1/q-corrected estimate and its widened CI.
    lost_plan = ParallelChaosPlan(
        faults=tuple(((2, attempt), WorkerFault("hang", 0.0)) for attempt in range(4))
    )
    errors, covered = [], 0
    for trial in range(DEGRADED_TRIALS):
        trial_keys = _keys(500 + trial)
        true_f2 = float((np.bincount(trial_keys) ** 2).sum())
        degraded = run_sharded_sketch(
            trial_keys,
            _template(),
            shards=SHARDS,
            max_retries=0,
            degradation="degrade",
            _worker=ChaosShardWorker(lost_plan),
        )
        estimate = degraded.self_join_size()
        errors.append(abs(estimate - true_f2) / true_f2)
        covered += degraded.self_join_interval(CONFIDENCE).contains(true_f2)

    coverage = covered / DEGRADED_TRIALS
    assert coverage >= CONFIDENCE  # conservative bounds over-cover
    records.append(
        {
            "scenario": "degraded_accuracy",
            "trials": DEGRADED_TRIALS,
            "lost_shards": 1,
            "survived_fraction": round(1 - 1 / SHARDS, 4),
            "mean_rel_error": round(float(np.mean(errors)), 4),
            "max_rel_error": round(float(np.max(errors)), 4),
            "coverage_90": round(coverage, 4),
        }
    )

    save_bench("resilience", records)
    rows = [
        [
            r["scenario"],
            r.get("seconds", "-"),
            r.get("recovery_overhead", "-"),
            r.get("retries", "-"),
            r.get("mean_rel_error", "-"),
            r.get("coverage_90", "-"),
        ]
        for r in records
    ]
    save_result(
        "resilience",
        format_table(
            ["scenario", "seconds", "overhead", "retries", "rel_err", "cover90"],
            rows,
            title="Resilience: recovery latency and degraded accuracy",
        ),
    )
