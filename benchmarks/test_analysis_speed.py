"""Analyzer incremental-cache speedup: warm runs must be >= 3x cold.

Runs the full ``repro.analysis`` pipeline (both passes, all rules) over
the repository's own ``src`` + ``tests`` trees twice against a fresh
cache directory — once cold (every file analyzed, cache populated) and
once warm (every per-file entry and the project entry served from the
cache) — and writes the machine-readable ``BENCH_analysis.json``
baseline: records of ``{run, seconds, files, findings, cache_hits,
cache_misses, speedup_vs_cold}``, written to ``benchmarks/results/``
and mirrored at the repo root.

The gate asserts warm >= 3x cold.  The real ratio on this tree is ~40x
(the warm run is one JSON read plus hash checks); 3x leaves headroom
for slow CI filesystems while still failing outright if cache keying
breaks and files silently re-analyze.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import AnalysisConfig, analyze_paths, load_config

REPO_ROOT = Path(__file__).resolve().parents[1]
MIN_SPEEDUP = 3.0


def _timed_run(cache_dir: Path):
    config = load_config(REPO_ROOT)
    start = time.perf_counter()
    result = analyze_paths(
        ["src", "tests"], root=REPO_ROOT, config=config, cache_dir=cache_dir
    )
    return time.perf_counter() - start, result


def test_warm_cache_speedup(tmp_path, save_bench):
    cache_dir = tmp_path / "analysis-cache"

    cold_seconds, cold = _timed_run(cache_dir)
    warm_seconds, warm = _timed_run(cache_dir)

    # The warm run must reproduce the cold run, not just beat it.
    key = lambda f: (f.path, f.line, f.code)  # noqa: E731
    assert sorted(map(key, warm.findings)) == sorted(map(key, cold.findings))
    assert warm.cache_misses == 0
    assert warm.cache_hits == warm.files_checked + 1  # + project entry

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    save_bench(
        "analysis",
        [
            {
                "run": "cold",
                "seconds": round(cold_seconds, 4),
                "files": cold.files_checked,
                "findings": len(cold.findings),
                "cache_hits": cold.cache_hits,
                "cache_misses": cold.cache_misses,
                "speedup_vs_cold": 1.0,
            },
            {
                "run": "warm",
                "seconds": round(warm_seconds, 4),
                "files": warm.files_checked,
                "findings": len(warm.findings),
                "cache_hits": warm.cache_hits,
                "cache_misses": warm.cache_misses,
                "speedup_vs_cold": round(speedup, 2),
            },
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"warm run only {speedup:.1f}x faster than cold "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s); cache keying broken?"
    )


def test_jobs_flag_matches_serial(tmp_path):
    """--jobs must not change results (same findings, any order)."""
    config = AnalysisConfig()
    serial = analyze_paths(["src"], root=REPO_ROOT, config=config)
    parallel = analyze_paths(["src"], root=REPO_ROOT, config=config, jobs=2)
    key = lambda f: (f.path, f.line, f.code, f.message)  # noqa: E731
    assert sorted(map(key, parallel.findings)) == sorted(
        map(key, serial.findings)
    )
    assert parallel.files_checked == serial.files_checked
