"""Figure 2: self-join-size variance decomposition vs skew (Bernoulli).

Expected shape: interaction dominates at low skew; the *sampling* term
dominates for skewed data (unlike the join case of Fig 1).
"""

from repro.experiments import fig2_self_join_variance_decomposition


def test_fig2(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig2_self_join_variance_decomposition(scale), rounds=1, iterations=1
    )
    save_result("fig2", result.format())

    for p in (0.1, 0.01):
        rows = result.series(p)
        low_skew = rows[0]
        high_skew = rows[-1]
        assert low_skew[4] > low_skew[2], "interaction should beat sampling at skew 0"
        assert high_skew[2] > 0.5, "sampling term should dominate at high skew"
