"""Observability overhead: the disabled path must be free, and stay free.

The observability layer is threaded through every hot loop in the system
(``OnlineStatisticsEngine.consume``, ``StreamRuntime.process``, the scan
driver), always on, defaulting to the shared null observer.  That design
is only acceptable if the null path costs nothing measurable — so this
benchmark is the gate that keeps it honest.

End-to-end A/B timing of ``engine.consume`` versus a bare
``sketch.update`` loop cannot gate a ~1% effect: on a shared CI machine
the run-to-run noise of a ~5 ms pass is several percent, larger than the
signal.  Instead the gate is surgical — it times the *exact*
per-chunk instrument-call sequence ``consume`` issues (two counter
increments and a gauge set) in isolation, against the bare sketch-update
loop over the same chunks:

* **null path** — the call sequence against the shared null observer.
  Must cost **<= 3%** of the bare scan (asserted).
* **enabled path** — the same sequence against a live
  :class:`Observer`.  Reported, not gated: enabling observability is a
  deliberate choice and its price is allowed to be visible (it stays
  small because instruments are registry-cached per ``(name, labels)``).

Both sides are tight best-of-``REPS`` loops, so the ratio is stable in a
way the end-to-end difference is not.  Results land in
``BENCH_observability.json`` (``benchmarks/results/`` plus the repo-root
mirror): records of ``{path, mode, seconds, tuples_per_sec,
overhead_pct}``.
"""

import time

import numpy as np

from repro.observability import NULL_OBSERVER, Observer
from repro.sketches import FagmsSketch

TUPLES = 262_144
CHUNK = 8_192
BUCKETS = 1_024
REPS = 9
#: The gate: per-chunk instrumentation cost over the bare scan.
MAX_NULL_OVERHEAD = 0.03


def _chunks() -> list:
    keys = np.random.default_rng(41).integers(
        0, 2**31 - 2, size=TUPLES, dtype=np.int64
    )
    return [keys[start : start + CHUNK] for start in range(0, keys.size, CHUNK)]


def _time_bare(chunks) -> float:
    """Best-of-reps seconds for the raw chunked sketch-update scan."""
    best = float("inf")
    for _ in range(REPS):
        sketch = FagmsSketch(BUCKETS, 1, seed=3)
        start = time.perf_counter()
        for chunk in chunks:
            sketch.update(chunk)
        best = min(best, time.perf_counter() - start)
    return best


def _time_instrumentation(chunks, obs) -> float:
    """Best-of-reps seconds for ``consume``'s per-chunk observer calls.

    Mirrors :meth:`OnlineStatisticsEngine.consume` exactly: two labeled
    counter increments and one labeled gauge set per chunk.
    """
    total = float(TUPLES)
    best = float("inf")
    for _ in range(REPS):
        scanned = 0
        start = time.perf_counter()
        for chunk in chunks:
            scanned += int(chunk.size)
            obs.counter("engine.rows.consumed", relation="stream").inc(
                int(chunk.size)
            )
            obs.counter("engine.chunks.consumed", relation="stream").inc()
            obs.gauge("engine.fraction_scanned", relation="stream").set(
                scanned / total
            )
        best = min(best, time.perf_counter() - start)
    return best


def test_observability_overhead(save_result, save_bench):
    chunks = _chunks()

    # Warm caches and lazy hash-family builds outside the timed region.
    warm = FagmsSketch(BUCKETS, 1, seed=3)
    warm.update(chunks[0])

    bare = _time_bare(chunks)
    null_cost = _time_instrumentation(chunks, NULL_OBSERVER)
    enabled_cost = _time_instrumentation(chunks, Observer())

    def record(path, mode, seconds):
        return {
            "path": path,
            "mode": mode,
            "seconds": round(seconds, 6),
            "tuples_per_sec": round(TUPLES / (bare + seconds)),
            "overhead_pct": round(100.0 * seconds / bare, 3),
        }

    records = [
        {
            "path": "sketch.update",
            "mode": "bare",
            "seconds": round(bare, 6),
            "tuples_per_sec": round(TUPLES / bare),
            "overhead_pct": 0.0,
        },
        record("consume.instruments", "null_observer", null_cost),
        record("consume.instruments", "enabled_observer", enabled_cost),
    ]
    save_bench("observability", records)

    lines = [
        f"Observability overhead ({TUPLES:,} tuples, chunk={CHUNK})",
        *(
            f"  {r['path']:<20} {r['mode']:<18} {r['seconds']*1e3:8.3f} ms "
            f"(+{r['overhead_pct']:.2f}%)"
            for r in records
        ),
    ]
    save_result("observability_overhead", "\n".join(lines))

    null_overhead = null_cost / bare
    assert null_overhead <= MAX_NULL_OVERHEAD, (
        f"null-observer instrumentation costs {100 * null_overhead:.2f}% of "
        f"the bare scan (gate: {100 * MAX_NULL_OVERHEAD:.0f}%)"
    )
