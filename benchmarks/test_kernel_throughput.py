"""Kernel-layer throughput: tuples/sec per sketch and backend.

Measures bulk-update throughput for each sketch through every available
kernel backend and writes both a human-readable table and the
machine-readable ``BENCH_kernels.json`` baseline — records of
``{sketch, batch, backend, tuples_per_sec}``, written to
``benchmarks/results/`` and mirrored at the repo root — that
``docs/PERFORMANCE.md`` explains how to read.

The ``smoke`` test is the CI perf gate: tiny batches, asserting the
default numpy backend never regresses below 0.8× the legacy reference
path.  The full matrix is for humans and the committed baseline.
"""

import time

import numpy as np
import pytest

from repro.experiments.report import format_table
from repro.kernels import native_available, use_backend
from repro.sketches import AgmsSketch, CountMinSketch, FagmsSketch

SKETCHES = {
    "fagms": lambda seed: FagmsSketch(1024, 1, seed=seed),
    "countmin": lambda seed: CountMinSketch(1024, 3, seed=seed),
    "agms": lambda seed: AgmsSketch(16, seed=seed),
}

BACKENDS = ["reference", "numpy"] + (["native"] if native_available() else [])


def _throughput(factory, backend, batch, reps=5, seed=7):
    """Best-of-*reps* tuples/sec for repeated bulk updates of one batch."""
    keys = np.random.default_rng(3).integers(
        0, 2**31 - 2, size=batch, dtype=np.int64
    )
    with use_backend(backend):
        sketch = factory(seed)
        sketch.update(keys[: min(batch, 128)])  # warm caches and lazy builds
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            sketch.update(keys)
            best = min(best, time.perf_counter() - start)
    return batch / best


def test_kernel_throughput_matrix(save_result, save_bench):
    batch = 65_536
    records = []
    for sketch_name, factory in SKETCHES.items():
        for backend in BACKENDS:
            records.append(
                {
                    "sketch": sketch_name,
                    "batch": batch,
                    "backend": backend,
                    "tuples_per_sec": round(_throughput(factory, backend, batch)),
                }
            )

    save_bench("kernels", records)

    by_key = {(r["sketch"], r["backend"]): r["tuples_per_sec"] for r in records}
    rows = [
        (
            sketch_name,
            backend,
            by_key[sketch_name, backend] / 1e6,
            by_key[sketch_name, backend] / by_key[sketch_name, "reference"],
        )
        for sketch_name in SKETCHES
        for backend in BACKENDS
    ]
    save_result(
        "kernel_throughput",
        format_table(
            ("sketch", "backend", "Mtuples/s", "vs_reference"),
            rows,
            title=f"Kernel backend throughput (batch={batch})",
        ),
    )

    # The fused numpy path must beat per-row add.at for every sketch at
    # bulk batch sizes; the compiled path must beat numpy for F-AGMS.
    for sketch_name in SKETCHES:
        assert by_key[sketch_name, "numpy"] > by_key[sketch_name, "reference"]
    if "native" in BACKENDS:
        assert by_key["fagms", "native"] > by_key["fagms", "numpy"]


@pytest.mark.parametrize("sketch_name", sorted(SKETCHES))
def test_kernel_smoke(sketch_name):
    """CI perf smoke: the default backend keeps up with the legacy path.

    Small batches and a generous 0.8× floor — this is a regression trip
    wire for accidental slow paths (e.g. a dtype promotion sneaking into
    the hot loop), not a performance benchmark.
    """
    factory = SKETCHES[sketch_name]
    batch = 8_192
    fused = _throughput(factory, "numpy", batch, reps=7)
    legacy = _throughput(factory, "reference", batch, reps=7)
    assert fused >= 0.8 * legacy, (
        f"{sketch_name}: numpy backend {fused:.0f} tuples/s fell below "
        f"0.8x the reference path {legacy:.0f} tuples/s"
    )
