"""Kernel-layer throughput: tuples/sec per sketch and backend.

Measures bulk-update throughput for each sketch through every available
kernel backend — plus the fused multi-sketch entry point against the
equivalent separate updates — and writes both a human-readable table and
the machine-readable ``BENCH_kernels.json`` baseline: records of
``{sketch, batch, backend, tuples_per_sec}`` (fused rows add
``separate_tuples_per_sec`` and ``fused_speedup``), written to
``benchmarks/results/`` and mirrored at the repo root, that
``docs/PERFORMANCE.md`` explains how to read.

The ``smoke`` tests are the CI perf gates: tiny batches, asserting the
default numpy backend never regresses below 0.8× the legacy reference
path and that the fused path keeps its ≥ 1.5× advantage over separate
updates on the ensemble workload.  The full matrix is for humans and the
committed baseline.
"""

import time

import numpy as np
import pytest

from repro.experiments.report import format_table
from repro.kernels import (
    fused_update,
    make_fused_plan,
    native_available,
    use_backend,
)
from repro.sketches import AgmsSketch, CountMinSketch, FagmsSketch

SKETCHES = {
    "fagms": lambda seed: FagmsSketch(1024, 1, seed=seed),
    "countmin": lambda seed: CountMinSketch(1024, 3, seed=seed),
    "agms": lambda seed: AgmsSketch(16, seed=seed),
}

#: Multi-sketch mixes for the fused entry point.  ``trio`` is the
#: canonical co-maintained AGMS + F-AGMS + Count-Min set; ``bank8`` is
#: the ensemble shape (many small single-row sketches over one stream)
#: where the per-sketch dispatch overhead fusion removes is largest.
FUSED_MIXES = {
    "trio": lambda seed: [
        AgmsSketch(16, seed=seed),
        FagmsSketch(1024, rows=5, seed=seed),
        CountMinSketch(1024, rows=3, seed=seed),
    ],
    "bank8": lambda seed: [
        FagmsSketch(1024, rows=1, seed=seed + i) for i in range(8)
    ],
}

#: (mix, streaming chunk size) points recorded in the baseline.
FUSED_POINTS = (("trio", 1_024), ("trio", 65_536), ("bank8", 2_048))

BACKENDS = ["reference", "numpy"] + (["native"] if native_available() else [])


def _throughput(factory, backend, batch, reps=5, seed=7):
    """Best-of-*reps* tuples/sec for repeated bulk updates of one batch."""
    keys = np.random.default_rng(3).integers(
        0, 2**31 - 2, size=batch, dtype=np.int64
    )
    with use_backend(backend):
        sketch = factory(seed)
        sketch.update(keys[: min(batch, 128)])  # warm caches and lazy builds
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            sketch.update(keys)
            best = min(best, time.perf_counter() - start)
    return batch / best


def _fused_throughput(mix, backend, chunk, total=524_288, reps=3):
    """Best-of-*reps* (fused, separate) tuples/sec streaming int32 chunks.

    Both sides consume the identical stream in identical chunks; the
    only variable is whether each chunk crosses the seam once (fused
    plan) or once per sketch (separate ``update`` calls).
    """
    factory = FUSED_MIXES[mix]
    keys = np.random.default_rng(3).integers(
        0, 2**31 - 2, size=total, dtype=np.int32
    )
    with use_backend(backend):
        fused = factory(7)
        plan = make_fused_plan(fused)
        fused_update(plan, keys[:chunk])  # warm caches and lazy builds
        best_fused = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            for offset in range(0, total, chunk):
                fused_update(plan, keys[offset : offset + chunk])
            best_fused = min(best_fused, time.perf_counter() - start)

        separate = factory(9)
        wide = keys.astype(np.int64)
        for sketch in separate:
            sketch.update(wide[:chunk])
        best_separate = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            for offset in range(0, total, chunk):
                piece = wide[offset : offset + chunk]
                for sketch in separate:
                    sketch.update(piece)
            best_separate = min(best_separate, time.perf_counter() - start)
    return total / best_fused, total / best_separate


def test_kernel_throughput_matrix(save_result, save_bench):
    batch = 65_536
    records = []
    for sketch_name, factory in SKETCHES.items():
        for backend in BACKENDS:
            records.append(
                {
                    "sketch": sketch_name,
                    "batch": batch,
                    "backend": backend,
                    "tuples_per_sec": round(_throughput(factory, backend, batch)),
                }
            )

    fused_records = []
    for backend in BACKENDS:
        for mix, chunk in FUSED_POINTS:
            fused_tps, separate_tps = _fused_throughput(mix, backend, chunk)
            fused_records.append(
                {
                    "sketch": f"fused:{mix}",
                    "batch": chunk,
                    "backend": backend,
                    "tuples_per_sec": round(fused_tps),
                    "separate_tuples_per_sec": round(separate_tps),
                    "fused_speedup": round(fused_tps / separate_tps, 2),
                }
            )
    records.extend(fused_records)

    save_bench("kernels", records)

    by_key = {
        (r["sketch"], r["backend"]): r["tuples_per_sec"]
        for r in records
        if r["sketch"] in SKETCHES
    }
    rows = [
        (
            sketch_name,
            backend,
            by_key[sketch_name, backend] / 1e6,
            by_key[sketch_name, backend] / by_key[sketch_name, "reference"],
        )
        for sketch_name in SKETCHES
        for backend in BACKENDS
    ]
    save_result(
        "kernel_throughput",
        format_table(
            ("sketch", "backend", "Mtuples/s", "vs_reference"),
            rows,
            title=f"Kernel backend throughput (batch={batch})",
        )
        + "\n"
        + format_table(
            ("mix", "chunk", "backend", "Mtuples/s", "vs_separate"),
            [
                (
                    r["sketch"],
                    r["batch"],
                    r["backend"],
                    r["tuples_per_sec"] / 1e6,
                    r["fused_speedup"],
                )
                for r in fused_records
            ],
            title="Fused multi-sketch update vs separate updates (int32 stream)",
        ),
    )

    # The fused numpy path must beat per-row add.at for every sketch at
    # bulk batch sizes; the compiled path must beat numpy for F-AGMS.
    for sketch_name in SKETCHES:
        assert by_key[sketch_name, "numpy"] > by_key[sketch_name, "reference"]
    if "native" in BACKENDS:
        assert by_key["fagms", "native"] > by_key["fagms", "numpy"]
        # One native C call per chunk for the whole ensemble must beat
        # eight separate dispatches by >= 2x at streaming chunk sizes.
        bank = next(
            r
            for r in fused_records
            if r["sketch"] == "fused:bank8" and r["backend"] == "native"
        )
        assert bank["fused_speedup"] >= 2.0, (
            f"native fused bank8 speedup {bank['fused_speedup']}x fell "
            "below the 2x floor over separate updates"
        )


@pytest.mark.parametrize("sketch_name", sorted(SKETCHES))
def test_kernel_smoke(sketch_name):
    """CI perf smoke: the default backend keeps up with the legacy path.

    Small batches and a generous 0.8× floor — this is a regression trip
    wire for accidental slow paths (e.g. a dtype promotion sneaking into
    the hot loop), not a performance benchmark.
    """
    factory = SKETCHES[sketch_name]
    batch = 8_192
    fused = _throughput(factory, "numpy", batch, reps=7)
    legacy = _throughput(factory, "reference", batch, reps=7)
    assert fused >= 0.8 * legacy, (
        f"{sketch_name}: numpy backend {fused:.0f} tuples/s fell below "
        f"0.8x the reference path {legacy:.0f} tuples/s"
    )


def test_fused_smoke_numpy():
    """CI perf smoke: fused keeps >= 1.5x over separate on numpy.

    The ensemble workload (eight single-row F-AGMS sketches, 512-key
    chunks) is where the separate path pays eight full dispatches per
    chunk; the fused plan pays one.  Measured headroom is ~3.9x, so the
    1.5x floor trips only on a real regression (e.g. the plan cache
    breaking and per-chunk setup creeping back in), not on CI noise.
    """
    fused_tps, separate_tps = _fused_throughput(
        "bank8", "numpy", 512, total=131_072, reps=5
    )
    assert fused_tps >= 1.5 * separate_tps, (
        f"fused numpy ensemble update {fused_tps:.0f} tuples/s fell below "
        f"1.5x the separate path {separate_tps:.0f} tuples/s"
    )
