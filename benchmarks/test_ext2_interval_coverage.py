"""Extended study 2: empirical coverage of the theory-backed intervals.

Runs the full sketch-over-sample pipeline for all three schemes and counts
how often the Prop 10/12-based CLT interval contains the truth.  Coverage
should sit near the nominal confidence for every scheme.
"""

from repro.experiments.extended import ext2_interval_coverage


def test_ext2(benchmark, scale, save_result):
    run_scale = scale.with_(trials=max(scale.trials, 60))
    result = benchmark.pedantic(
        lambda: ext2_interval_coverage(run_scale, confidence=0.95),
        rounds=1,
        iterations=1,
    )
    save_result("ext2_interval_coverage", result.format())

    for scheme, trials, coverage, nominal in result.rows:
        # Binomial(trials, 0.95) fluctuation: allow ~4 standard errors.
        slack = 4 * (nominal * (1 - nominal) / trials) ** 0.5
        assert coverage >= nominal - slack - 0.02, (scheme, coverage)
