"""Serving-layer cost: query latency, QPS, rotation cost, ingest tax.

Four measurements, one gate:

* **query latency** — p50/p99 of end-to-end HTTP round trips
  (self-join and point queries) against a settled registry;
* **QPS under concurrent ingest** — an unthrottled client hammering the
  server while the stream is still being consumed (reported, not gated:
  it measures the client+server pair, not the sketching loop);
* **rotation cost** — seconds per snapshot publication (one frozen
  counters copy per mutated relation, by copy-on-write);
* **ingest tax (THE GATE)** — tuples/second of `registry.ingest` with
  per-chunk rotation AND a live HTTP server answering a bounded-rate
  client, versus the bare `engine.consume` scan of the same chunks.
  Serving must keep **>= 0.9x** of bare-scan ingest throughput
  (`MIN_INGEST_RATIO`); the paper's sketching loop is the product, the
  service must stay out of its way.

The gated client is rate-bounded (a 100 Hz poll — a hot dashboard, not
a saturation attack) and runs **out of process** over one keep-alive
connection, so the gate measures the serving machinery's tax on the
sketching loop rather than GIL starvation under an adversarial
in-process client; the saturation number is what the QPS record
reports.

Noise-robust gating: CI boxes (often single-core VMs) suffer frequency
drift, CPU steal, and background load that make any single served/bare
ratio swing wildly.  The gate therefore takes the better of two
noise-robust estimators over REPS back-to-back pairs: the best paired
**wall-clock** ratio (both scans of a pair sample the same load
window) and the ratio of best **process-CPU** times (immune to
wall-clock stalls from off-process noise, and excludes the client
subprocess).  Results land in ``BENCH_serving.json``
(``benchmarks/results/`` + repo-root mirror).
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
import urllib.request

import numpy as np

from repro.engine import OnlineStatisticsEngine
from repro.serving import RotationPolicy, SketchRegistry, serve_in_thread

TUPLES = 4_194_304
CHUNK = 65_536
BUCKETS = 4_096
ROWS = 1
SEED = 13
REPS = 8
LATENCY_SAMPLES = 300
#: The gate: served ingest must keep this fraction of bare-scan speed.
MIN_INGEST_RATIO = 0.9


def _chunks() -> list:
    keys = np.random.default_rng(SEED).integers(
        0, 100_000, size=TUPLES, dtype=np.int64
    )
    return [keys[start : start + CHUNK] for start in range(0, keys.size, CHUNK)]


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def _time_bare_scan_once(chunks) -> tuple[float, float]:
    """(wall, cpu) seconds for one bare engine consume loop."""
    engine = OnlineStatisticsEngine(buckets=BUCKETS, rows=ROWS, seed=SEED)
    engine.register("s", TUPLES)
    wall = time.perf_counter()
    cpu = time.process_time()
    for chunk in chunks:
        engine.consume("s", chunk)
    return time.perf_counter() - wall, time.process_time() - cpu


#: The paced dashboard client, run out of process so the gate measures
#: the *server's* tax on ingest rather than GIL contention with an
#: in-process client loop (real clients are not in-process threads).
#: One persistent keep-alive connection, like a real dashboard.
_CLIENT_SCRIPT = """\
import http.client, sys, time, urllib.parse
parts = urllib.parse.urlsplit(sys.argv[1])
conn = http.client.HTTPConnection(parts.hostname, parts.port, timeout=10)
path = f"{parts.path}?{parts.query}"
while True:
    conn.request("GET", path)
    conn.getresponse().read()
    time.sleep(0.01)
"""


def _time_served_scan_once(chunks) -> tuple[float, float]:
    """(wall, cpu) seconds for one ingest + rotation + live-server scan.

    A paced subprocess client (one query every ~10 ms) runs for the
    whole scan.  Process-CPU time covers the ingest thread, rotation,
    and the server thread's query handling — the serving machinery —
    but not the client subprocess or anything else on the box.
    """
    registry = SketchRegistry(buckets=BUCKETS, rows=ROWS, seed=SEED)
    registry.register_stream("s", TUPLES)
    registry.ingest("s", chunks[0])  # make the stream queryable
    with serve_in_thread(registry) as handle:
        url = f"{handle.url}/v1/query/self_join?stream=s"
        client = subprocess.Popen([sys.executable, "-c", _CLIENT_SCRIPT, url])
        try:
            time.sleep(0.3)  # let the client warm up and settle
            wall = time.perf_counter()
            cpu = time.process_time()
            for chunk in chunks[1:]:
                registry.ingest("s", chunk)
            return time.perf_counter() - wall, time.process_time() - cpu
        finally:
            client.terminate()
            client.wait()


def _measure_ingest_tax(chunks) -> dict:
    """Gate ratio plus reporting rates from REPS back-to-back pairs.

    Two noise-robust estimators of the served/bare ratio; the gate
    takes the better one:

    * best **paired wall** ratio — bare and served timed back to back
      within a rep sample the same load window, so drift between reps
      cancels;
    * best-**CPU** ratio — min process-CPU served vs min process-CPU
      bare across all reps; immune to wall-clock stalls caused by
      off-process noise, excludes the client subprocess.
    """
    # The served loop consumes one chunk fewer (the warm-up chunk).
    scale = (TUPLES - CHUNK) / TUPLES
    pairs = []
    for _ in range(REPS):
        bare_wall, bare_cpu = _time_bare_scan_once(chunks)
        served_wall, served_cpu = _time_served_scan_once(chunks)
        pairs.append((bare_wall, bare_cpu, served_wall, served_cpu))
    wall_ratio = max(scale * bw / sw for bw, _, sw, _ in pairs)
    cpu_ratio = (
        scale
        * min(bc for _, bc, _, _ in pairs)
        / min(sc for *_, sc in pairs)
    )
    return {
        "ratio": max(wall_ratio, cpu_ratio),
        "wall_pair_ratio": wall_ratio,
        "cpu_ratio": cpu_ratio,
        "bare_rate": TUPLES / min(bw for bw, _, _, _ in pairs),
        "served_rate": (TUPLES - CHUNK) / min(sw for _, _, sw, _ in pairs),
    }


def _rotation_cost() -> float:
    """Mean seconds per forced rotation with a dirty relation."""
    registry = SketchRegistry(
        buckets=BUCKETS,
        rows=ROWS,
        seed=SEED,
        policy=RotationPolicy(every_chunks=10**9),  # never auto-rotate
    )
    registry.register_stream("s", TUPLES)
    rng = np.random.default_rng(7)
    rotations = 200
    total = 0.0
    for _ in range(rotations):
        registry.ingest("s", rng.integers(0, 1000, size=64))  # dirty the COW
        start = time.perf_counter()
        registry.rotate("s")
        total += time.perf_counter() - start
    return total / rotations


def _latency_profile(handle) -> dict:
    """p50/p99 seconds per HTTP query round trip, per query kind."""
    out = {}
    for kind, url in (
        ("self_join", f"{handle.url}/v1/query/self_join?stream=s"),
        ("point", f"{handle.url}/v1/query/point?stream=s&key=17"),
    ):
        samples = []
        for _ in range(LATENCY_SAMPLES):
            start = time.perf_counter()
            _get(url)
            samples.append(time.perf_counter() - start)
        ordered = np.sort(samples)
        out[kind] = {
            "p50_seconds": float(np.quantile(ordered, 0.50)),
            "p99_seconds": float(np.quantile(ordered, 0.99)),
        }
    return out


def _qps_under_ingest(chunks) -> float:
    """Unthrottled query throughput while the stream is being consumed."""

    def slow_chunks():
        for chunk in chunks[1:]:  # chunk 0 is the warm-up ingest below
            time.sleep(0.001)  # stretch the scan past the measuring window
            yield chunk

    registry = SketchRegistry(buckets=BUCKETS, rows=ROWS, seed=SEED)
    registry.register_stream("s", TUPLES)
    registry.ingest("s", chunks[0])
    with serve_in_thread(registry) as handle:
        registry.start_ingest("s", slow_chunks())
        url = f"{handle.url}/v1/query/self_join?stream=s"
        served = 0
        start = time.perf_counter()
        while time.perf_counter() - start < 1.0:
            _get(url)
            served += 1
        elapsed = time.perf_counter() - start
        registry.wait_ingest("s")
    return served / elapsed


def test_serving_latency_and_ingest_tax(save_bench):
    chunks = _chunks()

    tax = _measure_ingest_tax(chunks)
    ratio = tax["ratio"]
    bare_rate = tax["bare_rate"]
    served_rate = tax["served_rate"]

    rotation_seconds = _rotation_cost()
    qps = _qps_under_ingest(chunks)

    registry = SketchRegistry(buckets=BUCKETS, rows=ROWS, seed=SEED)
    registry.register_stream("s", TUPLES)
    for chunk in chunks:
        registry.ingest("s", chunk)
    with serve_in_thread(registry) as handle:
        latency = _latency_profile(handle)

    records = [
        {
            "metric": "ingest_tax",
            "bare_tuples_per_sec": bare_rate,
            "served_tuples_per_sec": served_rate,
            "ratio": ratio,
            "wall_pair_ratio": tax["wall_pair_ratio"],
            "cpu_ratio": tax["cpu_ratio"],
            "gate_min_ratio": MIN_INGEST_RATIO,
        },
        {
            "metric": "rotation",
            "seconds_per_rotation": rotation_seconds,
            "buckets": BUCKETS,
            "rows": ROWS,
        },
        {"metric": "qps_under_ingest", "queries_per_sec": qps},
        {"metric": "latency", **latency},
    ]
    save_bench("serving", records)
    print(
        f"\nserving ingest tax: bare {bare_rate:,.0f} t/s, "
        f"served {served_rate:,.0f} t/s (ratio {ratio:.3f}: "
        f"wall-pair {tax['wall_pair_ratio']:.3f}, "
        f"cpu {tax['cpu_ratio']:.3f}); "
        f"rotation {rotation_seconds * 1e6:.0f} us; "
        f"{qps:,.0f} qps under ingest; "
        f"self-join p50 {latency['self_join']['p50_seconds'] * 1e3:.2f} ms / "
        f"p99 {latency['self_join']['p99_seconds'] * 1e3:.2f} ms"
    )

    assert ratio >= MIN_INGEST_RATIO, (
        f"serving taxed ingest below the gate: {ratio:.3f} < "
        f"{MIN_INGEST_RATIO} (bare {bare_rate:,.0f} t/s, served "
        f"{served_rate:,.0f} t/s)"
    )
