"""Figure 4: self-join-size relative error vs skew, Bernoulli sampling.

Expected shape (Section VII-A): curves coincide for low skew; the sampling
rate matters visibly for high-skew data (where the sampling variance
dominates, per Fig 2).
"""

from repro.experiments import fig4_self_join_error_bernoulli


def test_fig4(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig4_self_join_error_bernoulli(scale), rounds=1, iterations=1
    )
    save_result("fig4", result.format())

    # Full sketch gets *more* accurate with skew (F-AGMS isolates heavy
    # hitters) — compare the endpoints of the p=1 series.
    full = result.series(1.0)
    assert full[-1][2] < full[0][2]
    # Moderate sampling stays usable at every skew.
    for row in result.series(0.1):
        assert row[2] < 1.0, row
