"""Extended study 1: the Eq. 22 averaging floor.

Over a fixed Bernoulli sample rate, growing the F-AGMS bucket count can
reduce the error only down to the sampling-covariance floor — the shared
sampling noise every basic estimator sees.  The bench measures the curve
and checks it flattens at the theoretical floor.
"""

from repro.experiments.extended import ext1_error_vs_buckets


def test_ext1(benchmark, scale, save_result):
    # The floor comparison needs tighter Monte-Carlo statistics than the
    # default small preset provides.
    run_scale = scale.with_(trials=max(scale.trials, 60))
    result = benchmark.pedantic(
        lambda: ext1_error_vs_buckets(run_scale), rounds=1, iterations=1
    )
    save_result("ext1_averaging_floor", result.format())

    errors = result.column("mean_rel_error")
    floor = result.column("sampling_floor_1sigma")[0]
    # Decreasing then flat:
    assert errors[0] > errors[-1]
    # The plateau sits near the floor: |err| of a ~normal estimator has
    # mean ≈ 0.8σ, so the flat region should be within [0.5, 1.5]× 0.8·floor.
    plateau = errors[-1]
    assert 0.4 * 0.8 * floor < plateau < 1.8 * floor
    # The last bucket doubling bought almost nothing (< 15% improvement).
    assert errors[-1] > 0.85 * errors[-2]
