"""Figure 8: TPC-H F₂(l_orderkey) error vs WOR sampling rate.

Expected shape (Section VII-C): the error decreases with the sample size
and becomes stable for sampling rates larger than 10%.
"""

from repro.experiments import fig8_self_join_error_wor_tpch


def test_fig8(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig8_self_join_error_wor_tpch(scale), rounds=1, iterations=1
    )
    save_result("fig8", result.format())

    errors = {row[0]: row[1] for row in result.rows}
    assert errors[0.01] > errors[0.1], errors
    # The 1% -> 10% improvement dwarfs the 10% -> 100% improvement: the
    # curve has largely stabilized by the 10% mark.
    assert errors[0.01] - errors[0.1] > errors[0.1] - errors[1.0], errors
    assert errors[0.1] < 6 * max(errors[1.0], 0.02), errors
