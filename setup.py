"""Shim for environments whose setuptools predates PEP-660 editable installs.

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-build-isolation`` (legacy path) on toolchains
without the ``wheel`` package.
"""

from setuptools import setup

setup()
