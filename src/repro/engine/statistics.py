"""A sketch-backed statistics engine for online aggregation (Section VI-C).

The paper's vision: while an online-aggregation engine scans its relations
in random order, it sketches every tuple it passes ("essentially for free"
on spare cores) and the sketches provide — at any moment of the scan —
unbiased estimates of the statistics the engine's decisions need:

* the second frequency moment of any scanned column, and
* the size of join (correlation) between any *pair* of scanned columns.

:class:`OnlineStatisticsEngine` is that component.  All registered
relations share one set of hash/ξ families, so every pair is joinable; the
WOR corrections use each relation's scanned-fraction, so relations may be
scanned at different speeds and statistics stay unbiased throughout.

Usage::

    engine = OnlineStatisticsEngine(buckets=4096, seed=7)
    engine.register("lineitem", total_tuples=6_000_000)
    engine.register("orders",   total_tuples=1_500_000)
    for chunk in lineitem_scan:
        engine.consume("lineitem", chunk)
        ...
    engine.self_join_size("lineitem")     # F2 estimate, any time
    engine.join_size("lineitem", "orders")
    engine.snapshot()                     # everything at once
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import CheckpointError, ConfigurationError, InsufficientDataError
from ..observability.observer import Observer, as_observer
from ..rng import SeedLike, as_seed_sequence
from ..sampling.base import SampleInfo
from ..sampling.unbiasing import join_scale, self_join_correction
from ..sketches.fagms import FagmsSketch
from ..sketches.serialization import build_sketch, expected_state_shape, sketch_header
from .snapshot import EngineSnapshot, RelationSnapshot, StatisticsSnapshot

__all__ = ["OnlineStatisticsEngine", "ScanState", "StatisticsSnapshot"]


@dataclass
class ScanState:
    """Progress of one registered relation's scan.

    ``mutations`` counts the chunks consumed into this relation — the
    copy-on-write key for snapshot publication: a published frozen
    counter array is reused verbatim while the mutation count it was
    taken at still matches.
    """

    name: str
    total_tuples: int
    sketch: FagmsSketch
    scanned: int = 0
    mutations: int = 0

    @property
    def fraction(self) -> float:
        """Scanned fraction of the relation."""
        return self.scanned / self.total_tuples if self.total_tuples else 0.0

    def info(self) -> SampleInfo:
        """The WOR draw metadata of the scanned prefix."""
        return SampleInfo(
            scheme="without_replacement",
            population_size=self.total_tuples,
            sample_size=self.scanned,
        )


class OnlineStatisticsEngine:
    """Maintains sketch statistics over concurrently scanned relations.

    Parameters
    ----------
    buckets, rows:
        F-AGMS shape shared by every relation's sketch.
    seed:
        One seed for all sketches — required so cross-relation inner
        products are meaningful.
    observer:
        Optional :class:`~repro.observability.Observer` receiving the
        engine's row/update counters and estimate gauges; defaults to
        the near-free null observer.
    """

    def __init__(
        self,
        buckets: int = 4096,
        rows: int = 1,
        seed: SeedLike = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self._template = FagmsSketch(
            buckets, rows, as_seed_sequence(seed)
        )
        self._relations: dict[str, ScanState] = {}
        self._observer = as_observer(observer)
        # Snapshot-publication state: the engine's total mutation count
        # (the generation stamped onto published snapshots) and the
        # copy-on-write cache of frozen counter arrays, keyed per
        # relation by the mutation count each was taken at.
        self._generation = 0
        self._published: dict[str, tuple[int, np.ndarray]] = {}

    @property
    def observer(self) -> Observer:
        """The attached observer (the shared null observer when disabled)."""
        return self._observer

    # ------------------------------------------------------------------
    # Registration and scanning
    # ------------------------------------------------------------------

    def register(self, name: str, total_tuples: int) -> None:
        """Register a relation before scanning it.

        ``total_tuples`` must be known (online aggregation scans stored
        relations whose cardinality the catalog provides).
        """
        if not name:
            raise ConfigurationError("relation name must be non-empty")
        if name in self._relations:
            raise ConfigurationError(f"relation {name!r} already registered")
        if total_tuples < 2:
            raise ConfigurationError(
                f"relation {name!r} needs at least 2 tuples, got {total_tuples}"
            )
        self._relations[name] = ScanState(
            name=name,
            total_tuples=total_tuples,
            sketch=self._template.copy_empty(),
        )

    @property
    def relations(self) -> tuple[str, ...]:
        """Names of registered relations."""
        return tuple(self._relations)

    def _state(self, name: str) -> ScanState:
        try:
            return self._relations[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown relation {name!r}; registered: {self.relations}"
            ) from None

    def consume(
        self, name: str, keys, *, shards=None, pool=None, shared_memory=None
    ) -> None:
        """Feed the next chunk of *name*'s random-order scan.

        Updates run through the row-batched :mod:`repro.kernels` path,
        so chunked scanning costs one fused accumulation per chunk;
        empty chunks are accepted and skipped outright.

        With *shards* and/or *pool* set, the chunk's hashing and
        accumulation fan out over :func:`repro.parallel.parallel_update`
        (chunked work-stealing, bit-identical to the sequential path); a
        :class:`~repro.parallel.pool.WorkerPool` passed here is reused
        across calls rather than respawned per chunk.  *shared_memory*
        forwards to :func:`~repro.parallel.parallel_update` — by default
        process pools move keys and counters through shared-memory
        segments instead of the pickle pipe.
        """
        state = self._state(name)
        keys = np.asarray(keys)
        if state.scanned + keys.size > state.total_tuples:
            raise ConfigurationError(
                f"scan of {name!r} overflows its declared cardinality "
                f"({state.total_tuples})"
            )
        if keys.size:
            if shards is None and pool is None:
                state.sketch.update(keys)
            else:
                from ..parallel import parallel_update

                parallel_update(
                    state.sketch,
                    keys,
                    shards=shards,
                    pool=pool,
                    shared_memory=shared_memory,
                )
            state.scanned += int(keys.size)
            state.mutations += 1
            self._generation += 1
            obs = self._observer
            obs.counter("engine.rows.consumed", relation=name).inc(int(keys.size))
            obs.counter("engine.chunks.consumed", relation=name).inc()
            obs.gauge("engine.fraction_scanned", relation=name).set(state.fraction)

    def fraction_scanned(self, name: str) -> float:
        """Scanned fraction of a relation."""
        return self._state(name).fraction

    def scanned_tuples(self, name: str) -> int:
        """Number of tuples consumed from a relation so far."""
        return self._state(name).scanned

    @property
    def generation(self) -> int:
        """Total chunks consumed across all relations (monotone)."""
        return self._generation

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def self_join_size(self, name: str) -> float:
        """Current unbiased ``F₂`` estimate for *name*'s scanned column."""
        state = self._state(name)
        if state.scanned < 2:
            raise InsufficientDataError(
                f"need at least 2 scanned tuples of {name!r} to unbias F2"
            )
        correction = self_join_correction(state.info())
        return correction.apply(state.sketch.second_moment(), state.scanned)

    def join_size(self, name_a: str, name_b: str) -> float:
        """Current unbiased ``|A ⋈ B|`` estimate between two scans."""
        state_a = self._state(name_a)
        state_b = self._state(name_b)
        if name_a == name_b:
            raise ConfigurationError(
                "join_size needs two distinct relations; use self_join_size "
                "for a relation with itself"
            )
        if state_a.scanned < 1 or state_b.scanned < 1:
            raise InsufficientDataError(
                "both relations need scanned tuples before a join estimate"
            )
        raw = state_a.sketch.inner_product(state_b.sketch)
        return float(join_scale(state_a.info(), state_b.info())) * raw

    def _publish(self) -> EngineSnapshot:
        """Build an immutable snapshot of the current scan state.

        Copy-on-write: a relation whose mutation count is unchanged
        since the last publication reuses the previously frozen counter
        array by reference; only mutated relations pay an array copy.
        No observer side effects — :meth:`snapshot` adds those.
        """
        relations = {}
        for name, state in self._relations.items():
            cached = self._published.get(name)
            if cached is not None and cached[0] == state.mutations:
                counters = cached[1]
            else:
                counters = state.sketch.counters_snapshot()
                self._published[name] = (state.mutations, counters)
            relations[name] = RelationSnapshot(
                name=name,
                total_tuples=state.total_tuples,
                scanned=state.scanned,
                counters=counters,
            )
        return EngineSnapshot(
            generation=self._generation,
            template_header=sketch_header(self._template),
            relations=relations,
            template_sketch=self._template,
        )

    def snapshot(self) -> EngineSnapshot:
        """Publish an immutable, generation-tagged view of the scan.

        The returned :class:`~repro.engine.snapshot.EngineSnapshot`
        answers every estimate lazily from frozen counters (and exposes
        the classic ``fractions`` / ``self_join_sizes`` / ``join_sizes``
        maps with the original omission rules), so it is safe to hand to
        concurrent readers while :meth:`consume` keeps mutating the scan.
        """
        snap = self._publish()
        self._observer.counter("engine.snapshots").inc()
        if self._observer.enabled:
            # Preserve the eager gauge semantics of the pre-snapshot API:
            # a monitored engine publishes its current self-join estimates
            # at every snapshot.  (The unmonitored path stays lazy.)
            for name, estimate in snap.self_join_sizes.items():
                self._observer.gauge(
                    "engine.self_join_estimate", relation=name
                ).set(estimate)
        return snap

    # ------------------------------------------------------------------
    # Persistence (repro.resilience checkpoint payload)
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> tuple:
        """Split the engine into a JSON state blob and counter arrays.

        Returns ``(state, arrays)`` in the shape expected by
        :meth:`repro.resilience.checkpoint.CheckpointManager.save`: the
        shared template header plus per-relation scan progress in *state*,
        and one CRC-protected counter array per relation in *arrays*.
        The payload is derived from a published snapshot (same frozen
        arrays the serving layer reads), so checkpointing and serving
        share one publication path; bytes are pinned against the
        pre-snapshot implementation by
        ``tests/serving/test_checkpoint_digest.py``.
        """
        return self._publish().checkpoint_payload()

    @classmethod
    def from_checkpoint_state(cls, state: dict, arrays: dict) -> "OnlineStatisticsEngine":
        """Rebuild an engine from a :meth:`checkpoint_state` snapshot.

        Every relation's sketch is reconstructed from the shared template
        header (so cross-relation inner products remain meaningful) and
        its checkpointed counters, verified against the expected shape.
        Raises :class:`~repro.errors.CheckpointError` on any mismatch.
        """
        header = state.get("template")
        if not isinstance(header, dict):
            raise CheckpointError("engine checkpoint has no template header")
        relations = state.get("relations")
        if not isinstance(relations, list):
            raise CheckpointError("engine checkpoint has no relation list")
        engine = object.__new__(cls)
        engine._observer = as_observer(None)
        engine._generation = 0
        engine._published = {}
        engine._template = build_sketch(header)
        if not isinstance(engine._template, FagmsSketch):
            raise CheckpointError(
                f"engine checkpoint template is a "
                f"{type(engine._template).__name__}, expected an F-AGMS sketch"
            )
        expected = expected_state_shape(header)
        engine._relations = {}
        for raw in relations:
            name = raw.get("name")
            counters = arrays.get(f"counters.{name}")
            if counters is None:
                raise CheckpointError(
                    f"engine checkpoint is missing counters for relation {name!r}"
                )
            if tuple(counters.shape) != expected:
                raise CheckpointError(
                    f"engine checkpoint counters for {name!r} have shape "
                    f"{counters.shape}, expected {expected}"
                )
            sketch = build_sketch(header)
            sketch.load_counters(counters)
            scan = ScanState(
                name=name,
                total_tuples=int(raw["total_tuples"]),
                sketch=sketch,
                scanned=int(raw["scanned"]),
            )
            if not 0 <= scan.scanned <= scan.total_tuples:
                raise CheckpointError(
                    f"engine checkpoint scan progress for {name!r} is invalid: "
                    f"{scan.scanned}/{scan.total_tuples}"
                )
            engine._relations[name] = scan
        return engine

    def adopt(self, restored: "OnlineStatisticsEngine") -> None:
        """Take over *restored*'s scan state (checkpoint resume seam).

        Used by :func:`repro.engine.scan.run_lockstep_scan` to swap a
        freshly-restored engine's state into the engine the caller holds
        a reference to, without reaching into either engine's internals.
        The publication cache is reset so the next snapshot re-freezes
        every relation; the observer attachment is kept.
        """
        self._template = restored._template
        self._relations = restored._relations
        self._generation = restored._generation
        self._published = {}

    # ------------------------------------------------------------------

    def memory_footprint(self) -> int:
        """Bytes of counter state across all registered relations."""
        return sum(
            state.sketch._state().nbytes for state in self._relations.values()
        )

    def __repr__(self) -> str:
        scans = ", ".join(
            f"{name}:{state.fraction:.0%}"
            for name, state in self._relations.items()
        )
        return f"OnlineStatisticsEngine({scans or 'no relations'})"
