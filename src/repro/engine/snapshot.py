"""Immutable, generation-tagged snapshots of the statistics engine.

The serving layer (ROADMAP item 1) needs ingestion and queries to never
block each other.  The mechanism is *snapshot isolation*:
:meth:`~repro.engine.statistics.OnlineStatisticsEngine.consume` mutates
private scan state, while
:meth:`~repro.engine.statistics.OnlineStatisticsEngine.snapshot` publishes
an :class:`EngineSnapshot` — an immutable, self-contained view of every
registered relation at one moment of the scan.  Queries evaluated against
a snapshot can never observe a torn update, because the snapshot's counter
arrays are frozen copies (``writeable = False``) published atomically.

Publication is **copy-on-write at snapshot granularity**: the engine keeps
the last published frozen array per relation, keyed by that relation's
mutation count.  Rotating a snapshot copies only the counters of relations
that actually changed since the previous rotation — an idle relation's
array is shared (by reference) across every snapshot generation, so a
registry rotating after every chunk pays one array copy per *mutated*
relation, not per relation.

Every snapshot carries a **generation** — the engine's total mutation
count at publication time.  Generations are strictly monotone per engine,
which is what lets a concurrent reader prove it never travelled back in
time (see ``tests/serving/test_concurrent_consistency.py``).

A snapshot can answer every estimate the live engine can (point
frequency, self-join, join, fractions), attach the paper's
variance-derived confidence intervals via the runtime plug-in bounds of
:mod:`repro.variance.runtime`, and reproduce the engine's durable
checkpoint payload byte for byte (:meth:`EngineSnapshot.checkpoint_payload`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, InsufficientDataError
from ..sampling.base import SampleInfo
from ..sampling.unbiasing import join_scale, self_join_correction
from ..sketches.fagms import FagmsSketch
from ..sketches.serialization import build_sketch
from ..variance.bounds import (
    ConfidenceInterval,
    chebyshev_interval,
    clt_interval,
)
from ..variance.runtime import (
    prefix_join_variance,
    prefix_point_frequency_variance,
    prefix_self_join_variance,
)

__all__ = [
    "EngineSnapshot",
    "RelationSnapshot",
    "StatisticsSnapshot",
    "join_interval_between",
    "join_size_between",
    "join_variance_between",
]


@dataclass(frozen=True)
class StatisticsSnapshot:
    """All statistics available at one moment of the scan."""

    fractions: dict
    self_join_sizes: dict
    join_sizes: dict

    def __repr__(self) -> str:
        scanned = ", ".join(
            f"{name}={fraction:.0%}" for name, fraction in self.fractions.items()
        )
        return f"StatisticsSnapshot({scanned})"


def _interval(
    estimate: float, variance: float, confidence: float, method: str
) -> ConfidenceInterval:
    if method == "chebyshev":
        return chebyshev_interval(estimate, variance, confidence)
    if method == "clt":
        return clt_interval(estimate, variance, confidence)
    raise ConfigurationError(
        f"unknown interval method {method!r}; expected 'chebyshev' or 'clt'"
    )


@dataclass(frozen=True)
class RelationSnapshot:
    """One relation's frozen scan state at publication time.

    ``counters`` is a read-only ``float64`` array — attempting to write
    through it raises, so a published snapshot can never be torn by later
    ingestion.
    """

    name: str
    total_tuples: int
    scanned: int
    counters: np.ndarray

    @property
    def fraction(self) -> float:
        """Scanned fraction of the relation at publication time."""
        return self.scanned / self.total_tuples if self.total_tuples else 0.0

    def info(self) -> SampleInfo:
        """The WOR draw metadata of the frozen prefix."""
        return SampleInfo(
            scheme="without_replacement",
            population_size=self.total_tuples,
            sample_size=self.scanned,
        )


class EngineSnapshot:
    """Queryable frozen view of an engine, published at one generation.

    Snapshots are cheap to hold and safe to share across threads: all
    state is immutable, and estimate evaluation only *reads* the frozen
    counters.  Estimator results are cached after first evaluation, so a
    snapshot served many times computes each statistic once.

    For backward compatibility with the pre-serving API, a snapshot also
    exposes the :class:`~repro.engine.statistics.StatisticsSnapshot`
    surface (``fractions`` / ``self_join_sizes`` / ``join_sizes``), so
    code written against ``engine.snapshot()``'s old return type keeps
    working unchanged.
    """

    __slots__ = (
        "generation",
        "template_header",
        "_relations",
        "_template",
        "_sketches",
        "_stats_cache",
    )

    def __init__(
        self,
        *,
        generation: int,
        template_header: dict,
        relations: dict,
        template_sketch: FagmsSketch | None = None,
    ) -> None:
        self.generation = int(generation)
        self.template_header = template_header
        self._relations: dict[str, RelationSnapshot] = dict(relations)
        # Hash families are immutable, so sharing the engine's template
        # lets sketch_view() clone instead of regenerating the families —
        # the hot cost of serving a freshly rotated snapshot.
        self._template = template_sketch
        self._sketches: dict[str, FagmsSketch] = {}
        self._stats_cache: dict = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Names of the relations frozen in this snapshot."""
        return tuple(self._relations)

    def relation(self, name: str) -> RelationSnapshot:
        """The frozen scan state of one relation."""
        try:
            return self._relations[name]
        except KeyError:
            raise ConfigurationError(
                f"snapshot has no relation {name!r}; frozen: {self.names}"
            ) from None

    def fraction_scanned(self, name: str) -> float:
        """Frozen scanned fraction of a relation."""
        return self.relation(name).fraction

    def scanned_tuples(self, name: str) -> int:
        """Frozen scanned-tuple count of a relation."""
        return self.relation(name).scanned

    def sketch_view(self, name: str) -> FagmsSketch:
        """A sketch bound (read-only) to the relation's frozen counters.

        The returned sketch shares the engine's hash families, so
        estimates and cross-snapshot inner products are meaningful; its
        counter storage is the frozen array, so any attempted update
        raises instead of corrupting the snapshot.
        """
        sketch = self._sketches.get(name)
        if sketch is None:
            relation = self.relation(name)
            if self._template is not None:
                sketch = self._template.copy_empty()
            else:
                sketch = build_sketch(self.template_header)
            sketch._adopt_state(relation.counters)
            self._sketches[name] = sketch
        return sketch

    @property
    def averaged_estimators(self) -> int:
        """Basic estimators averaged per estimate (buckets for F-AGMS)."""
        buckets = self.template_header.get("buckets")
        if buckets is None:
            return 1
        return int(buckets)

    # ------------------------------------------------------------------
    # Estimates (bit-identical to the live engine at the same prefix)
    # ------------------------------------------------------------------

    def self_join_size(self, name: str) -> float:
        """Unbiased ``F₂`` estimate for the frozen prefix of *name*."""
        cached = self._stats_cache.get(("sj", name))
        if cached is not None:
            return cached
        relation = self.relation(name)
        if relation.scanned < 2:
            raise InsufficientDataError(
                f"need at least 2 scanned tuples of {name!r} to unbias F2"
            )
        correction = self_join_correction(relation.info())
        estimate = correction.apply(
            self.sketch_view(name).second_moment(), relation.scanned
        )
        self._stats_cache[("sj", name)] = estimate
        return estimate

    def join_size(self, name_a: str, name_b: str) -> float:
        """Unbiased ``|A ⋈ B|`` estimate between two frozen prefixes."""
        if name_a == name_b:
            raise ConfigurationError(
                "join_size needs two distinct relations; use self_join_size "
                "for a relation with itself"
            )
        return join_size_between(self, name_a, self, name_b)

    def point_frequency(self, name: str, key: int) -> float:
        """Estimated full-relation frequency of *key* (prefix-corrected).

        The sketch's raw Count-Sketch estimate targets the *scanned
        prefix*'s frequency; scaling by ``1/α`` (the inverse scanned
        fraction) makes it unbiased for the full relation.
        """
        relation = self.relation(name)
        if relation.scanned < 1:
            raise InsufficientDataError(
                f"need at least 1 scanned tuple of {name!r} for a point query"
            )
        raw = self.sketch_view(name).point_estimate(int(key))
        return raw * (relation.total_tuples / relation.scanned)

    # ------------------------------------------------------------------
    # Confidence intervals (runtime plug-in bounds)
    # ------------------------------------------------------------------

    def self_join_variance_bound(self, name: str) -> float:
        """Conservative variance bound for :meth:`self_join_size`.

        The runtime plug-in bound
        :func:`repro.variance.runtime.prefix_self_join_variance`,
        computable from the snapshot alone.
        """
        relation = self.relation(name)
        return prefix_self_join_variance(
            self.self_join_size(name),
            scanned=relation.scanned,
            total=relation.total_tuples,
            averaged=self.averaged_estimators,
        )

    def point_frequency_variance_bound(self, name: str, key: int) -> float:
        """Conservative variance bound for :meth:`point_frequency`."""
        relation = self.relation(name)
        return prefix_point_frequency_variance(
            self.point_frequency(name, key),
            self.sketch_view(name).second_moment(),
            scanned=relation.scanned,
            total=relation.total_tuples,
            buckets=self.averaged_estimators,
        )

    def self_join_interval(
        self,
        name: str,
        confidence: float = 0.95,
        *,
        method: str = "chebyshev",
    ) -> ConfidenceInterval:
        """Confidence interval for :meth:`self_join_size`.

        Uses :meth:`self_join_variance_bound` and the paper's
        Chebyshev/CLT interval constructions.
        """
        return _interval(
            self.self_join_size(name),
            self.self_join_variance_bound(name),
            confidence,
            method,
        )

    def join_interval(
        self,
        name_a: str,
        name_b: str,
        confidence: float = 0.95,
        *,
        method: str = "chebyshev",
    ) -> ConfidenceInterval:
        """Confidence interval for :meth:`join_size`."""
        return join_interval_between(
            self, name_a, self, name_b, confidence, method=method
        )

    def point_frequency_interval(
        self,
        name: str,
        key: int,
        confidence: float = 0.95,
        *,
        method: str = "chebyshev",
    ) -> ConfidenceInterval:
        """Confidence interval for :meth:`point_frequency`."""
        return _interval(
            self.point_frequency(name, key),
            self.point_frequency_variance_bound(name, key),
            confidence,
            method,
        )

    # ------------------------------------------------------------------
    # StatisticsSnapshot compatibility surface
    # ------------------------------------------------------------------

    def statistics(self) -> StatisticsSnapshot:
        """The classic all-at-once statistics view of this snapshot.

        Mirrors the original ``engine.snapshot()`` semantics: relations
        with fewer than 2 scanned tuples are omitted from the self-join
        map; pairs with an unscanned member are omitted from the join map.
        """
        cached = self._stats_cache.get("statistics")
        if cached is not None:
            return cached
        fractions = {
            name: relation.fraction
            for name, relation in self._relations.items()
        }
        self_joins = {
            name: self.self_join_size(name)
            for name, relation in self._relations.items()
            if relation.scanned >= 2
        }
        joins = {}
        names = list(self._relations)
        for i, name_a in enumerate(names):
            for name_b in names[i + 1 :]:
                if (
                    self._relations[name_a].scanned
                    and self._relations[name_b].scanned
                ):
                    joins[(name_a, name_b)] = self.join_size(name_a, name_b)
        stats = StatisticsSnapshot(
            fractions=fractions,
            self_join_sizes=self_joins,
            join_sizes=joins,
        )
        self._stats_cache["statistics"] = stats
        return stats

    @property
    def fractions(self) -> dict:
        """Scanned fraction per relation (compatibility accessor)."""
        return self.statistics().fractions

    @property
    def self_join_sizes(self) -> dict:
        """Self-join estimates per relation (compatibility accessor)."""
        return self.statistics().self_join_sizes

    @property
    def join_sizes(self) -> dict:
        """Join estimates per relation pair (compatibility accessor)."""
        return self.statistics().join_sizes

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def checkpoint_payload(self) -> tuple:
        """The engine's durable checkpoint payload, from frozen state.

        Byte-identical to what the live engine would checkpoint at the
        same scan position (pinned by
        ``tests/serving/test_checkpoint_digest.py``).
        """
        state = {
            "template": self.template_header,
            "relations": [
                {
                    "name": relation.name,
                    "total_tuples": relation.total_tuples,
                    "scanned": relation.scanned,
                }
                for relation in self._relations.values()
            ],
        }
        arrays = {
            f"counters.{name}": relation.counters
            for name, relation in self._relations.items()
        }
        return state, arrays

    def __repr__(self) -> str:
        scanned = ", ".join(
            f"{name}={relation.fraction:.0%}"
            for name, relation in self._relations.items()
        )
        return f"EngineSnapshot(generation={self.generation}, {scanned})"


# ----------------------------------------------------------------------
# Cross-snapshot estimates (the serving registry's join path)
# ----------------------------------------------------------------------


def _check_cross(
    snap_a: EngineSnapshot, name_a: str, snap_b: EngineSnapshot, name_b: str
) -> tuple[RelationSnapshot, RelationSnapshot]:
    rel_a = snap_a.relation(name_a)
    rel_b = snap_b.relation(name_b)
    if snap_a is snap_b and name_a == name_b:
        raise ConfigurationError(
            "join between a relation and itself; use self_join_size"
        )
    if rel_a.scanned < 1 or rel_b.scanned < 1:
        raise InsufficientDataError(
            "both relations need scanned tuples before a join estimate"
        )
    return rel_a, rel_b


def join_size_between(
    snap_a: EngineSnapshot,
    name_a: str,
    snap_b: EngineSnapshot,
    name_b: str,
) -> float:
    """Unbiased join-size estimate across two (possibly distinct) snapshots.

    The snapshots may come from different engines — e.g. two named streams
    of a :class:`~repro.serving.registry.SketchRegistry` — as long as the
    engines share their seed (hence hash families); incompatible sketches
    raise :class:`~repro.errors.IncompatibleSketchError`.
    """
    rel_a, rel_b = _check_cross(snap_a, name_a, snap_b, name_b)
    raw = snap_a.sketch_view(name_a).inner_product(snap_b.sketch_view(name_b))
    return float(join_scale(rel_a.info(), rel_b.info())) * raw


def join_variance_between(
    snap_a: EngineSnapshot,
    name_a: str,
    snap_b: EngineSnapshot,
    name_b: str,
) -> float:
    """Conservative variance bound for :func:`join_size_between`."""
    rel_a, rel_b = _check_cross(snap_a, name_a, snap_b, name_b)
    return prefix_join_variance(
        join_size_between(snap_a, name_a, snap_b, name_b),
        _prefix_f2(snap_a, name_a),
        _prefix_f2(snap_b, name_b),
        scanned_f=rel_a.scanned,
        total_f=rel_a.total_tuples,
        scanned_g=rel_b.scanned,
        total_g=rel_b.total_tuples,
        averaged=min(snap_a.averaged_estimators, snap_b.averaged_estimators),
    )


def join_interval_between(
    snap_a: EngineSnapshot,
    name_a: str,
    snap_b: EngineSnapshot,
    name_b: str,
    confidence: float = 0.95,
    *,
    method: str = "chebyshev",
) -> ConfidenceInterval:
    """Confidence interval for :func:`join_size_between`."""
    return _interval(
        join_size_between(snap_a, name_a, snap_b, name_b),
        join_variance_between(snap_a, name_a, snap_b, name_b),
        confidence,
        method,
    )


def _prefix_f2(snap: EngineSnapshot, name: str) -> float:
    """Full-relation ``F₂`` plug-in for the variance bounds.

    Falls back to the raw prefix second moment when the prefix is too
    short to unbias (one scanned tuple) — still a valid plug-in, just a
    smaller one; the bound stays an estimate-derived surrogate either way.
    """
    relation = snap.relation(name)
    if relation.scanned >= 2:
        return snap.self_join_size(name)
    return snap.sketch_view(name).second_moment()
