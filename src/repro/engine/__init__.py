"""Online-aggregation engine substrate (Section VI-C of the paper).

An online-aggregation engine scans relations in random order and keeps the
user updated with progressively refining estimates; the prefix of a
random-order scan is a without-replacement sample of the scanned fraction.
The paper's proposal: sketch the tuples *as they are scanned* and use the
WOR corrections (Section V-D) to turn the sketch into statistics — second
frequency moments, join-size correlations — "essentially for free".

:class:`~repro.engine.online_aggregation.OnlineSelfJoinAggregator` and
:class:`~repro.engine.online_aggregation.OnlineJoinAggregator` implement
exactly that scan loop and yield a
:class:`~repro.engine.online_aggregation.ProgressivePoint` per checkpoint.
"""

from .online_aggregation import (
    OnlineJoinAggregator,
    OnlineSelfJoinAggregator,
    ProgressivePoint,
)
from .scan import run_lockstep_scan
from .snapshot import (
    EngineSnapshot,
    RelationSnapshot,
    StatisticsSnapshot,
    join_interval_between,
    join_size_between,
)
from .statistics import OnlineStatisticsEngine, ScanState

__all__ = [
    "ProgressivePoint",
    "OnlineSelfJoinAggregator",
    "OnlineJoinAggregator",
    "OnlineStatisticsEngine",
    "EngineSnapshot",
    "RelationSnapshot",
    "ScanState",
    "StatisticsSnapshot",
    "join_interval_between",
    "join_size_between",
    "run_lockstep_scan",
]
