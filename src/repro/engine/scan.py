"""Scan driver: run relations through the statistics engine with checkpoints.

:class:`~repro.engine.statistics.OnlineStatisticsEngine` is deliberately
passive (callers push chunks); this module adds the loop an online
aggregation engine actually runs — scan all registered relations in
lockstep fractions, snapshotting the statistics at checkpoints::

    engine = OnlineStatisticsEngine(buckets=4096, seed=7)
    for snapshot in run_lockstep_scan(
        engine,
        {"lineitem": tables.lineitem, "orders": tables.orders},
        checkpoints=(0.01, 0.1, 0.5, 1.0),
    ):
        decide_something(snapshot)

Relations are registered automatically; their arrival order must already
be random (the WOR-prefix premise).

With ``checkpoint_dir`` set, the engine's full state (template header,
per-relation counters and scan cursors) is durably snapshotted through
:class:`~repro.resilience.checkpoint.CheckpointManager` after every
yielded fraction; ``resume=True`` then restarts a killed scan from the
newest intact snapshot, re-yielding only the remaining fractions with
statistics bit-identical to an uninterrupted run.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence

from ..errors import CheckpointError, ConfigurationError
from ..observability.observer import Observer
from ..resilience.checkpoint import CheckpointManager
from ..streams.base import Relation
from .online_aggregation import DEFAULT_CHECKPOINTS, _validate_checkpoints
from .snapshot import EngineSnapshot
from .statistics import OnlineStatisticsEngine

__all__ = ["run_lockstep_scan"]


def run_lockstep_scan(
    engine: OnlineStatisticsEngine,
    relations: Mapping[str, Relation],
    *,
    checkpoints: Sequence[float] = DEFAULT_CHECKPOINTS,
    checkpoint_dir=None,
    keep_checkpoints: int = 2,
    resume: bool = False,
    shards=None,
    pool=None,
    shared_memory=None,
    observer: Optional[Observer] = None,
) -> Iterator[EngineSnapshot]:
    """Scan every relation to each checkpoint fraction, yielding snapshots.

    At checkpoint ``x`` every relation has had an ``x`` fraction of its
    tuples consumed (ripple-join-style lockstep).  Relations not yet
    registered with *engine* are registered with their exact cardinality.

    *shards*/*pool* route every consumed slice through the sharded update
    path of :mod:`repro.parallel` (``pool`` alone defaults the shard count
    to the pool's worker count).  Integer counter deltas add exactly, so
    the counters — and therefore every snapshot and checkpoint — stay
    bit-identical to the sequential scan.  *shared_memory* forwards to
    :func:`~repro.parallel.parallel_update`: process pools default to
    moving keys and counters through shared-memory segments.

    *checkpoint_dir* enables durable snapshots (one after each yielded
    fraction).  With ``resume=True`` the scan restarts from the newest
    intact snapshot in that directory: the passed *engine* is rewound to
    the checkpointed state (it must be freshly constructed — its sketch
    template is replaced by the checkpointed one so the hash families
    match), already-completed fractions are not re-yielded, and every
    relation's cardinality is validated against the snapshot.  When no
    usable snapshot exists the scan simply starts from the beginning.

    *observer* receives ``scan.*`` spans (one ``scan.fraction`` per
    yielded checkpoint, one ``scan.chunk`` per consumed slice, plus
    checkpoint write/restore spans) and scan-progress metrics; it
    defaults to the engine's own observer, so attaching one observer to
    the engine instruments the whole scan.
    """
    if not relations:
        raise ConfigurationError("at least one relation is required")
    if resume and checkpoint_dir is None:
        raise ConfigurationError("resume=True needs a checkpoint_dir")
    obs = engine.observer if observer is None else observer
    fractions = _validate_checkpoints(checkpoints)
    manager = (
        None
        if checkpoint_dir is None
        else CheckpointManager(checkpoint_dir, keep=keep_checkpoints)
    )
    completed = 0
    if resume and manager is not None:
        snapshot = manager.latest()
        if snapshot is not None:
            with obs.span("scan.checkpoint.restore", position=snapshot.position):
                restored = OnlineStatisticsEngine.from_checkpoint_state(
                    snapshot.state, snapshot.arrays
                )
            obs.counter("scan.checkpoint.restores").inc()
            if set(restored.relations) != set(relations):
                raise CheckpointError(
                    f"checkpointed scan covers relations "
                    f"{sorted(restored.relations)}, caller supplied "
                    f"{sorted(relations)}"
                )
            restored_view = restored.snapshot()
            for name, relation in relations.items():
                recorded = restored_view.relation(name).total_tuples
                if recorded != len(relation):
                    raise CheckpointError(
                        f"relation {name!r} has {len(relation)} tuples but the "
                        f"checkpoint recorded {recorded}"
                    )
            engine.adopt(restored)
            completed = snapshot.position
            if completed > len(fractions):
                raise CheckpointError(
                    f"checkpoint completed {completed} fractions but only "
                    f"{len(fractions)} were requested"
                )
    if completed == 0:
        for name, relation in relations.items():
            if name not in engine.relations:
                engine.register(name, len(relation))
            elif engine.fraction_scanned(name) > 0:
                raise ConfigurationError(
                    f"relation {name!r} was already partially scanned; "
                    "run_lockstep_scan needs a fresh engine registration"
                )
    scanned = {name: engine.scanned_tuples(name) for name in relations}
    for index in range(completed, len(fractions)):
        fraction = fractions[index]
        with obs.span("scan.fraction", index=index, fraction=fraction):
            for name, relation in relations.items():
                target = min(
                    len(relation), max(1, int(round(fraction * len(relation))))
                )
                if target > scanned[name]:
                    with obs.span(
                        "scan.chunk", relation=name, rows=target - scanned[name]
                    ):
                        engine.consume(
                            name,
                            relation.keys[scanned[name] : target],
                            shards=shards,
                            pool=pool,
                            shared_memory=shared_memory,
                        )
                    scanned[name] = target
            if manager is not None:
                started = obs.clock()
                with obs.span("scan.checkpoint.write", position=index + 1):
                    state, arrays = engine.checkpoint_state()
                    manager.save(position=index + 1, state=state, arrays=arrays)
                obs.histogram("scan.checkpoint.seconds").observe(
                    obs.clock() - started
                )
                obs.counter("scan.checkpoint.writes").inc()
            obs.counter("scan.fractions.completed").inc()
        yield engine.snapshot()
