"""Scan driver: run relations through the statistics engine with checkpoints.

:class:`~repro.engine.statistics.OnlineStatisticsEngine` is deliberately
passive (callers push chunks); this module adds the loop an online
aggregation engine actually runs — scan all registered relations in
lockstep fractions, snapshotting the statistics at checkpoints::

    engine = OnlineStatisticsEngine(buckets=4096, seed=7)
    for snapshot in run_lockstep_scan(
        engine,
        {"lineitem": tables.lineitem, "orders": tables.orders},
        checkpoints=(0.01, 0.1, 0.5, 1.0),
    ):
        decide_something(snapshot)

Relations are registered automatically; their arrival order must already
be random (the WOR-prefix premise).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from ..errors import ConfigurationError
from ..streams.base import Relation
from .online_aggregation import DEFAULT_CHECKPOINTS, _validate_checkpoints
from .statistics import OnlineStatisticsEngine, StatisticsSnapshot

__all__ = ["run_lockstep_scan"]


def run_lockstep_scan(
    engine: OnlineStatisticsEngine,
    relations: Mapping[str, Relation],
    *,
    checkpoints: Sequence[float] = DEFAULT_CHECKPOINTS,
) -> Iterator[StatisticsSnapshot]:
    """Scan every relation to each checkpoint fraction, yielding snapshots.

    At checkpoint ``x`` every relation has had an ``x`` fraction of its
    tuples consumed (ripple-join-style lockstep).  Relations not yet
    registered with *engine* are registered with their exact cardinality.
    """
    if not relations:
        raise ConfigurationError("at least one relation is required")
    fractions = _validate_checkpoints(checkpoints)
    for name, relation in relations.items():
        if name not in engine.relations:
            engine.register(name, len(relation))
        elif engine.fraction_scanned(name) > 0:
            raise ConfigurationError(
                f"relation {name!r} was already partially scanned; "
                "run_lockstep_scan needs a fresh engine registration"
            )
    scanned = {name: 0 for name in relations}
    for fraction in fractions:
        for name, relation in relations.items():
            target = min(len(relation), max(1, int(round(fraction * len(relation)))))
            if target > scanned[name]:
                engine.consume(name, relation.keys[scanned[name] : target])
                scanned[name] = target
        yield engine.snapshot()
