"""Progressive estimation over random-order scans (online aggregation).

The scan model (refs [8], [9], [11] of the paper): tuples of a relation are
processed in uniform random order; after ``m`` of ``N`` tuples, the scanned
prefix is exactly a without-replacement sample of size ``m``.  Both
aggregators below sketch the prefix incrementally — each tuple is touched
once, when scanned — and at each *checkpoint* produce an unbiased estimate
of the full-relation aggregate using the WOR corrections of Section V-D.

Confidence intervals come in two flavours:

* ``true_frequencies`` given (analysis mode, used by the Fig 7–8
  experiments): the exact combined variance of Props 10/12 and 16 with the
  CLT bound — the paper's setting;
* otherwise (deployment mode) no interval is attached; a real engine would
  plug in estimated moments, which is outside the paper's analysis.

The aggregators do not shuffle for you: pass relations whose arrival order
is already random (``Relation.shuffled()`` / ``shuffle=True`` generators),
as the engine model prescribes.  A non-random order silently breaks the
WOR-sample premise, so this is called out loudly here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..errors import ConfigurationError
from ..frequency import FrequencyVector
from ..sampling.base import SampleInfo
from ..sampling.unbiasing import join_scale, self_join_correction
from ..sketches.base import Sketch
from ..streams.base import Relation
from ..variance.bounds import ConfidenceInterval, clt_interval
from ..variance.generic import (
    combined_join_variance,
    combined_self_join_variance,
    moment_model_for,
)

__all__ = ["ProgressivePoint", "OnlineSelfJoinAggregator", "OnlineJoinAggregator"]

DEFAULT_CHECKPOINTS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class ProgressivePoint:
    """One progressive answer emitted at a scan checkpoint."""

    fraction: float
    tuples_scanned: int
    estimate: float
    interval: Optional[ConfidenceInterval] = None

    def __repr__(self) -> str:
        ci = f", ±{self.interval.half_width:.4g}" if self.interval else ""
        return (
            f"ProgressivePoint({self.fraction:.0%} scanned, "
            f"estimate={self.estimate:.6g}{ci})"
        )


def _validate_checkpoints(checkpoints: Sequence[float]) -> list[float]:
    values = sorted(set(float(c) for c in checkpoints))
    if not values:
        raise ConfigurationError("at least one checkpoint is required")
    if values[0] <= 0 or values[-1] > 1:
        raise ConfigurationError(
            f"checkpoints must lie in (0, 1], got {checkpoints}"
        )
    return values


def _checkpoint_counts(checkpoints: Sequence[float], total: int) -> list[int]:
    counts = []
    for fraction in checkpoints:
        count = min(total, max(1, int(round(fraction * total))))
        counts.append(count)
    return counts


class OnlineSelfJoinAggregator:
    """Progressive ``F₂`` estimates while scanning one relation.

    Parameters
    ----------
    relation:
        The relation to scan — arrival order must already be random.
    sketch:
        Zeroed sketch used to summarize the scanned prefix.
    checkpoints:
        Scan fractions at which to emit estimates.
    true_frequencies:
        Optional exact frequency vector of the relation, enabling
        theory-backed confidence intervals (analysis mode).
    confidence:
        Confidence level of the intervals.
    """

    def __init__(
        self,
        relation: Relation,
        sketch: Sketch,
        *,
        checkpoints: Sequence[float] = DEFAULT_CHECKPOINTS,
        true_frequencies: Optional[FrequencyVector] = None,
        confidence: float = 0.95,
    ) -> None:
        if len(relation) < 2:
            raise ConfigurationError(
                "online aggregation needs at least 2 tuples to unbias F2"
            )
        self.relation = relation
        self.sketch = sketch
        self.checkpoints = _validate_checkpoints(checkpoints)
        self.true_frequencies = true_frequencies
        self.confidence = confidence

    def _sketch_averages(self) -> int:
        """Number of averaged basic estimators the sketch represents."""
        return getattr(self.sketch, "buckets", 1) * self.sketch.rows

    def run(self) -> Iterator[ProgressivePoint]:
        """Scan the relation, yielding one point per checkpoint."""
        total = len(self.relation)
        counts = _checkpoint_counts(self.checkpoints, total)
        scanned = 0
        for fraction, count in zip(self.checkpoints, counts):
            if count < 2:
                count = 2
            if count > scanned:
                self.sketch.update(self.relation.keys[scanned:count])
                scanned = count
            info = SampleInfo(
                scheme="without_replacement",
                population_size=total,
                sample_size=scanned,
            )
            correction = self_join_correction(info)
            estimate = correction.apply(self.sketch.second_moment(), scanned)
            interval = None
            if self.true_frequencies is not None:
                # Even at a full scan the interval is meaningful: the WOR
                # sampling variance vanishes but the sketch variance remains.
                variance = combined_self_join_variance(
                    moment_model_for(info),
                    self.true_frequencies,
                    correction.scale,
                    self._sketch_averages(),
                )
                interval = clt_interval(estimate, float(variance), self.confidence)
            yield ProgressivePoint(
                fraction=fraction,
                tuples_scanned=scanned,
                estimate=estimate,
                interval=interval,
            )


class OnlineJoinAggregator:
    """Progressive ``|F ⋈ G|`` estimates while scanning two relations.

    The two relations are scanned in lockstep fractions: at checkpoint
    ``x``, an ``x`` fraction of each has been sketched (as in a ripple-join
    style engine).  Both sketches must share their random families.
    """

    def __init__(
        self,
        relation_f: Relation,
        relation_g: Relation,
        sketch_f: Sketch,
        sketch_g: Sketch,
        *,
        checkpoints: Sequence[float] = DEFAULT_CHECKPOINTS,
        true_frequencies: Optional[tuple[FrequencyVector, FrequencyVector]] = None,
        confidence: float = 0.95,
    ) -> None:
        if relation_f.domain_size != relation_g.domain_size:
            raise ConfigurationError(
                "join requires matching domains: "
                f"{relation_f.domain_size} vs {relation_g.domain_size}"
            )
        sketch_f.check_compatible(sketch_g)
        self.relation_f = relation_f
        self.relation_g = relation_g
        self.sketch_f = sketch_f
        self.sketch_g = sketch_g
        self.checkpoints = _validate_checkpoints(checkpoints)
        self.true_frequencies = true_frequencies
        self.confidence = confidence

    def _sketch_averages(self) -> int:
        return getattr(self.sketch_f, "buckets", 1) * self.sketch_f.rows

    def run(self) -> Iterator[ProgressivePoint]:
        """Scan both relations, yielding one point per checkpoint."""
        total_f = len(self.relation_f)
        total_g = len(self.relation_g)
        counts_f = _checkpoint_counts(self.checkpoints, total_f)
        counts_g = _checkpoint_counts(self.checkpoints, total_g)
        scanned_f = scanned_g = 0
        for fraction, count_f, count_g in zip(
            self.checkpoints, counts_f, counts_g
        ):
            if count_f > scanned_f:
                self.sketch_f.update(self.relation_f.keys[scanned_f:count_f])
                scanned_f = count_f
            if count_g > scanned_g:
                self.sketch_g.update(self.relation_g.keys[scanned_g:count_g])
                scanned_g = count_g
            info_f = SampleInfo(
                scheme="without_replacement",
                population_size=total_f,
                sample_size=scanned_f,
            )
            info_g = SampleInfo(
                scheme="without_replacement",
                population_size=total_g,
                sample_size=scanned_g,
            )
            raw = self.sketch_f.inner_product(self.sketch_g)
            estimate = float(join_scale(info_f, info_g)) * raw
            interval = None
            if self.true_frequencies is not None:
                f, g = self.true_frequencies
                variance = combined_join_variance(
                    moment_model_for(info_f),
                    f,
                    moment_model_for(info_g),
                    g,
                    join_scale(info_f, info_g),
                    self._sketch_averages(),
                )
                interval = clt_interval(estimate, float(variance), self.confidence)
            yield ProgressivePoint(
                fraction=fraction,
                tuples_scanned=scanned_f + scanned_g,
                estimate=estimate,
                interval=interval,
            )
