"""Load shedding for sketches: Bernoulli sampling in front of the sketch.

Section VI-A of the paper: when a stream is too fast to sketch every tuple,
drop tuples with a Bernoulli filter and sketch only the survivors — the
combined estimator analysis (Props 13–14) quantifies exactly how much
accuracy a given shedding rate costs.

The filter is implemented with *skip-ahead* sampling (ref [18]): instead of
tossing a coin per tuple, the gaps between kept tuples are drawn from the
geometric distribution, so the shedder does work proportional only to the
kept tuples — which is what makes the end-to-end speed-up ``∝ 1/p`` real
(benchmarked in ``benchmarks/test_update_speedup.py``).

:class:`LoadShedder` is the stateful filter (usable on its own);
:class:`SheddingSketcher` couples it with a sketch and exposes corrected,
unbiased estimates of the *full-stream* aggregates.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, InsufficientDataError
from ..rng import SeedLike, as_generator
from ..sampling.base import SampleInfo
from ..sampling.bernoulli import bernoulli_skip_lengths
from ..sampling.unbiasing import join_scale, self_join_correction
from ..sketches.base import Sketch

__all__ = ["LoadShedder", "SheddingSketcher"]


class LoadShedder:
    """Stateful Bernoulli(p) filter over a chunked stream, skip-ahead style.

    The kept positions across the concatenation of all chunks are
    distributed exactly as independent Bernoulli(p) selections; state
    (the distance to the next kept tuple) carries across chunk boundaries.
    """

    __slots__ = ("p", "_rng", "_until_next", "_seen", "_kept")

    def __init__(self, p: float, seed: SeedLike = None) -> None:
        if not 0 < p <= 1:
            raise ConfigurationError(f"shedding probability must be in (0, 1], got {p}")
        self.p = float(p)
        self._rng = as_generator(seed)
        self._seen = 0
        self._kept = 0
        # Offset (within the upcoming stream) of the next kept tuple.
        self._until_next = int(bernoulli_skip_lengths(self.p, 1, self._rng)[0])

    @property
    def seen(self) -> int:
        """Total tuples that arrived."""
        return self._seen

    @property
    def kept(self) -> int:
        """Total tuples that survived shedding."""
        return self._kept

    def set_p(self, p: float) -> None:
        """Change the keep-probability at a chunk boundary.

        The carried skip-state (the pending gap to the next kept tuple)
        was drawn under the *old* rate, so it cannot simply be kept: the
        gap is redrawn from Geometric(p) — by memorylessness the kept
        positions from this boundary onward are then distributed exactly
        as a fresh Bernoulli(p) process.  An invalid *p* is rejected
        *before* any state is touched, so a failed update never corrupts
        the carried skip-state.
        """
        if not 0 < p <= 1:
            raise ConfigurationError(f"shedding probability must be in (0, 1], got {p}")
        self.p = float(p)
        self._until_next = int(bernoulli_skip_lengths(self.p, 1, self._rng)[0])

    def state(self) -> dict:
        """JSON-serializable snapshot of the full filter state.

        Captures the rate, the seen/kept tallies, the carried skip-state,
        and the underlying bit-generator state, so :meth:`restore` resumes
        the kept-position sequence *bit-identically*.
        """
        return {
            "p": self.p,
            "seen": self._seen,
            "kept": self._kept,
            "until_next": self._until_next,
            "rng_state": self._rng.bit_generator.state,
        }

    @classmethod
    def restore(cls, state: dict) -> "LoadShedder":
        """Rebuild a shedder from a :meth:`state` snapshot."""
        shedder = cls(state["p"])
        shedder._rng.bit_generator.state = state["rng_state"]
        shedder._seen = int(state["seen"])
        shedder._kept = int(state["kept"])
        shedder._until_next = int(state["until_next"])
        return shedder

    def filter(self, keys) -> np.ndarray:
        """Return the surviving tuples of one chunk, preserving order."""
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ConfigurationError(f"keys must be 1-D, got shape {keys.shape}")
        length = keys.size
        self._seen += length
        if self.p >= 1.0:
            self._kept += length
            return keys
        positions = self._kept_positions(length)
        self._kept += positions.size
        return keys[positions]

    def _kept_positions(self, length: int) -> np.ndarray:
        """Positions kept within a chunk of *length*, advancing the state."""
        collected: list[np.ndarray] = []
        position = self._until_next
        while position < length:
            # Draw a batch of gaps sized to (over-)cover the rest of the chunk.
            remaining = length - position
            batch = max(16, int(remaining * self.p * 1.5) + 8)
            gaps = bernoulli_skip_lengths(self.p, batch, self._rng)
            steps = np.empty(batch, dtype=np.int64)
            steps[0] = 0
            np.cumsum(gaps[:-1] + 1, out=steps[1:])
            positions = position + steps
            inside = positions < length
            collected.append(positions[inside])
            if bool(inside.all()):
                # Batch exhausted inside the chunk: continue from the last
                # kept position plus its following gap.
                position = int(positions[-1]) + 1 + int(
                    bernoulli_skip_lengths(self.p, 1, self._rng)[0]
                )
            else:
                position = int(positions[np.argmin(inside)])
                break
        self._until_next = position - length
        if not collected:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(collected)

    def info(self) -> SampleInfo:
        """Bernoulli draw metadata for the stream consumed so far."""
        if self._seen == 0:
            raise InsufficientDataError("no tuples have been processed yet")
        return SampleInfo(
            scheme="bernoulli",
            population_size=self._seen,
            sample_size=self._kept,
            probability=self.p,
        )

    def __repr__(self) -> str:
        return f"LoadShedder(p={self.p}, seen={self._seen}, kept={self._kept})"


class SheddingSketcher:
    """A sketch fed through a Bernoulli load shedder (Section VI-A).

    ``process()`` chunks of the raw stream; the estimates are unbiased for
    the *full* stream despite only a ``p`` fraction being sketched.
    """

    __slots__ = ("sketch", "shedder")

    def __init__(self, sketch: Sketch, p: float, seed: SeedLike = None) -> None:
        self.sketch = sketch
        self.shedder = LoadShedder(p, seed)

    @property
    def p(self) -> float:
        """The shedding (keep) probability."""
        return self.shedder.p

    def process(self, keys) -> int:
        """Consume one chunk of the raw stream; returns tuples sketched.

        Chunks whose survivors are empty (common at aggressive shedding
        rates with small chunks) skip the sketch's kernel path entirely.
        """
        kept = self.shedder.filter(keys)
        if kept.size:
            self.sketch.update(kept)
        return int(kept.size)

    def info(self) -> SampleInfo:
        """Draw metadata for the stream consumed so far."""
        return self.shedder.info()

    def self_join_size(self) -> float:
        """Unbiased full-stream ``F₂`` estimate (Prop 14 estimator)."""
        correction = self_join_correction(self.info())
        return correction.apply(self.sketch.second_moment(), self.shedder.kept)

    def join_size(self, other: "SheddingSketcher") -> float:
        """Unbiased full-stream ``|F ⋈ G|`` estimate (Prop 13 estimator)."""
        raw = self.sketch.inner_product(other.sketch)
        return float(join_scale(self.info(), other.info())) * raw

    def __repr__(self) -> str:
        return f"SheddingSketcher(p={self.p}, sketch={self.sketch!r})"
