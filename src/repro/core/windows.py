"""Tumbling-window sketching over sampled streams (extension feature).

Stream monitoring rarely wants all-time aggregates; it wants them *per
window* ("F₂ of the last minute") and *across windows* ("how similar is
this minute's traffic to the previous minute's?").  Because sketches are
linear and cheap, a tumbling-window deployment simply rotates the sketch
at each window boundary — and with Bernoulli shedding in front (Section
VI-A), each window estimate inherits the combined-estimator corrections.

:class:`TumblingWindowSketcher` packages that pattern:

* feed the stream through :meth:`process`; windows close automatically
  every ``window_size`` tuples;
* each closed :class:`WindowSummary` holds the window's sketch plus its
  shedding metadata, so per-window F₂ estimates are unbiased;
* summaries of different windows share hash families, so
  :func:`window_join_size` estimates the *join similarity between two
  windows* — the traffic-drift signal.

This is an extension beyond the paper's experiments, built entirely from
the paper's machinery (the corrections are per-window Prop 13/14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError, InsufficientDataError
from ..rng import SeedLike, as_seed_sequence
from ..sampling.base import SampleInfo
from ..sampling.unbiasing import join_scale, self_join_correction
from ..sketches.fagms import FagmsSketch
from .load_shedding import LoadShedder

__all__ = ["WindowSummary", "TumblingWindowSketcher", "window_join_size"]


@dataclass(frozen=True)
class WindowSummary:
    """A closed window: its sketch and the shedding draw that fed it."""

    index: int
    sketch: FagmsSketch
    info: SampleInfo

    def self_join_size(self) -> float:
        """Unbiased ``F₂`` of the window's full (pre-shedding) tuples."""
        correction = self_join_correction(self.info)
        return correction.apply(self.sketch.second_moment(), self.info.sample_size)

    @property
    def tuples(self) -> int:
        """Tuples that arrived during the window (before shedding)."""
        return self.info.population_size


def window_join_size(a: WindowSummary, b: WindowSummary) -> float:
    """Unbiased ``Σᵢ fᵢ(A) · fᵢ(B)`` between two windows' full traffic.

    The cross-window join size is the unnormalized traffic-similarity
    measure: it is maximal when the same keys dominate both windows.
    """
    raw = a.sketch.inner_product(b.sketch)
    return float(join_scale(a.info, b.info)) * raw


class TumblingWindowSketcher:
    """Rotate shedding sketches over fixed-size tumbling windows.

    Parameters
    ----------
    window_size:
        Tuples per window (pre-shedding).
    buckets, rows:
        F-AGMS shape per window.  All windows share families (one seed) so
        cross-window joins work.
    p:
        Bernoulli keep-probability of the shedder (1.0 = sketch
        everything).
    keep_last:
        How many closed windows to retain (older summaries are dropped).
    """

    def __init__(
        self,
        window_size: int,
        buckets: int,
        *,
        rows: int = 1,
        p: float = 1.0,
        keep_last: int = 16,
        seed: SeedLike = None,
    ) -> None:
        if window_size < 1:
            raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
        if keep_last < 1:
            raise ConfigurationError(f"keep_last must be >= 1, got {keep_last}")
        root = as_seed_sequence(seed)
        sketch_seed, shedder_seed = root.spawn(2)
        self.window_size = window_size
        self.p = float(p)
        self.keep_last = keep_last
        self._template = FagmsSketch(buckets, rows, sketch_seed)
        self._shedder = LoadShedder(p, shedder_seed)
        self._current = self._template.copy_empty()
        self._seen_before_window = 0
        self._kept_before_window = 0
        self._windows: list[WindowSummary] = []
        self._next_index = 0

    # ------------------------------------------------------------------

    @property
    def closed_windows(self) -> tuple[WindowSummary, ...]:
        """Summaries of the retained closed windows, oldest first."""
        return tuple(self._windows)

    @property
    def current_fill(self) -> int:
        """Tuples consumed by the (still open) current window."""
        return self._shedder.seen - self._seen_before_window

    def process(self, keys) -> list[WindowSummary]:
        """Consume a chunk; returns any windows closed by it."""
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ConfigurationError(f"keys must be 1-D, got shape {keys.shape}")
        closed: list[WindowSummary] = []
        position = 0
        while position < keys.size:
            room = self.window_size - self.current_fill
            take = min(room, keys.size - position)
            kept = self._shedder.filter(keys[position : position + take])
            self._current.update(kept)
            position += take
            if self.current_fill == self.window_size:
                closed.append(self._close_window())
        return closed

    def _close_window(self) -> WindowSummary:
        seen = self._shedder.seen - self._seen_before_window
        kept = self._shedder.kept - self._kept_before_window
        summary = WindowSummary(
            index=self._next_index,
            sketch=self._current,
            info=SampleInfo(
                scheme="bernoulli",
                population_size=seen,
                sample_size=kept,
                probability=self.p,
            ),
        )
        self._windows.append(summary)
        if len(self._windows) > self.keep_last:
            self._windows.pop(0)
        self._next_index += 1
        self._current = self._template.copy_empty()
        self._seen_before_window = self._shedder.seen
        self._kept_before_window = self._shedder.kept
        return summary

    # ------------------------------------------------------------------

    def latest(self) -> WindowSummary:
        """The most recently closed window."""
        if not self._windows:
            raise InsufficientDataError("no window has closed yet")
        return self._windows[-1]

    def merged_summary(self, last: int) -> WindowSummary:
        """One summary covering the union of the most recent *last* windows.

        Sketch linearity plus the shared shedding probability make the
        merged sketch exactly a sketch over a Bernoulli(p) sample of the
        union of the windows' traffic, so the combined-estimator
        corrections apply to the merged summary unchanged — this is the
        *sliding-window* view over tumbling panes.
        """
        if last < 1:
            raise ConfigurationError(f"last must be >= 1, got {last}")
        if len(self._windows) < last:
            raise InsufficientDataError(
                f"only {len(self._windows)} closed windows retained, "
                f"requested {last}"
            )
        recent = self._windows[-last:]
        merged = recent[0].sketch.copy()
        for summary in recent[1:]:
            merged.merge(summary.sketch)
        return WindowSummary(
            index=recent[-1].index,
            sketch=merged,
            info=SampleInfo(
                scheme="bernoulli",
                population_size=sum(s.info.population_size for s in recent),
                sample_size=sum(s.info.sample_size for s in recent),
                probability=self.p,
            ),
        )

    def drift(self) -> Optional[float]:
        """Normalized similarity between the two most recent windows.

        ``join(A, B) / sqrt(F₂(A) · F₂(B))`` — a cosine-style similarity in
        ``[0, ~1]`` (estimates may stray slightly outside).  ``None`` until
        two windows have closed, or when an estimate degenerates (a
        non-positive F₂ estimate after correction).
        """
        if len(self._windows) < 2:
            return None
        a, b = self._windows[-2], self._windows[-1]
        f2_a = a.self_join_size()
        f2_b = b.self_join_size()
        if f2_a <= 0 or f2_b <= 0:
            return None
        return window_join_size(a, b) / float(np.sqrt(f2_a * f2_b))

    def __repr__(self) -> str:
        return (
            f"TumblingWindowSketcher(window_size={self.window_size}, p={self.p}, "
            f"closed={self._next_index}, fill={self.current_fill})"
        )
