"""Sketch-over-samples estimators (Section V of the paper).

The workflow mirrors the paper exactly:

1. draw a sample of a relation with one of the three schemes
   (:mod:`repro.sampling`),
2. sketch the sample instead of the full relation,
3. scale/correct the sketch estimate so it is unbiased for the *full*
   relation's aggregate (the corrections of
   :mod:`repro.sampling.unbiasing`),
4. (optionally) attach a confidence interval computed from the exact
   combined variance of Props 9–16.

:func:`sketch_over_sample` performs steps 1–2, returning the
:class:`~repro.sampling.base.SampleInfo` that steps 3–4 need;
:func:`estimate_join_size` / :func:`estimate_self_join_size` perform
step 3; :func:`join_interval` / :func:`self_join_interval` perform step 4
when the base frequency vectors are available (analysis / planning mode —
the variance formulas need the true frequency moments).

Example
-------
>>> from repro.sketches import FagmsSketch
>>> from repro.sampling import BernoulliSampler
>>> from repro.streams import zipf_relation
>>> from repro.core import sketch_over_sample, estimate_self_join_size
>>> relation = zipf_relation(100_000, 10_000, skew=1.0, seed=7)
>>> sketch = FagmsSketch(buckets=2_000, seed=42)
>>> info = sketch_over_sample(relation, BernoulliSampler(0.1), sketch, seed=3)
>>> estimate = estimate_self_join_size(sketch, info)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..errors import ConfigurationError
from ..frequency import FrequencyVector
from ..rng import SeedLike, as_generator
from ..sampling.base import SampleInfo, Sampler
from ..sampling.unbiasing import join_scale, self_join_correction
from ..sketches.base import Sketch
from ..streams.base import Relation
from ..variance.bounds import ConfidenceInterval, chebyshev_interval, clt_interval
from ..variance.generic import (
    combined_join_variance,
    combined_self_join_variance,
    moment_model_for,
)

__all__ = [
    "sketch_over_sample",
    "estimate_join_size",
    "estimate_self_join_size",
    "JoinEstimate",
    "SelfJoinEstimate",
    "join_interval",
    "self_join_interval",
]

Source = Union[Relation, FrequencyVector]


@dataclass(frozen=True)
class JoinEstimate:
    """Unbiased size-of-join estimate with its provenance."""

    value: float
    raw_sketch_estimate: float
    scale: float
    info_f: SampleInfo
    info_g: SampleInfo


@dataclass(frozen=True)
class SelfJoinEstimate:
    """Unbiased self-join-size estimate with its provenance."""

    value: float
    raw_sketch_estimate: float
    info: SampleInfo


def sketch_over_sample(
    source: Source,
    sampler: Sampler,
    sketch: Sketch,
    *,
    seed: SeedLike = None,
    path: str = "auto",
) -> SampleInfo:
    """Sample *source* and insert the sample into *sketch* (in place).

    Parameters
    ----------
    source:
        The relation to sample — a :class:`~repro.streams.base.Relation`
        (tuple-domain) or a :class:`~repro.frequency.FrequencyVector`.
    sampler:
        Any of the three sampling schemes.
    sketch:
        A zeroed (or pre-existing, if accumulating) sketch to update.
    seed:
        Randomness of the sampling draw.
    path:
        ``"items"`` forces tuple-domain sampling, ``"frequency"`` forces the
        frequency-domain fast path, ``"auto"`` (default) picks frequency
        for :class:`FrequencyVector` sources and items for relations.

    Returns
    -------
    SampleInfo
        The draw metadata required by the estimate/correction functions.
    """
    if path not in ("auto", "items", "frequency"):
        raise ConfigurationError(f"unknown sampling path {path!r}")
    rng = as_generator(seed)
    if isinstance(source, FrequencyVector):
        if path == "items":
            raise ConfigurationError(
                "tuple-domain sampling of a FrequencyVector would require "
                "materializing the relation; pass a Relation instead"
            )
        sample, info = sampler.sample_frequencies(source, rng)
        sketch.update_frequency_vector(sample)
        return info
    if not isinstance(source, Relation):
        raise ConfigurationError(
            f"source must be a Relation or FrequencyVector, got {type(source)!r}"
        )
    if path == "frequency":
        sample, info = sampler.sample_frequencies(source.frequency_vector(), rng)
        sketch.update_frequency_vector(sample)
        return info
    sampled_keys, info = sampler.sample_items(source.keys, rng)
    sketch.update(sampled_keys)
    return info


def estimate_join_size(
    sketch_f: Sketch,
    info_f: SampleInfo,
    sketch_g: Sketch,
    info_g: SampleInfo,
) -> JoinEstimate:
    """Unbiased ``|F ⋈ G|`` estimate from sketches of two samples.

    The raw sketch inner product estimates the *sample* join size
    ``Σᵢ f′ᵢg′ᵢ``; scaling by ``C`` (Eq. 18's constant) unbiases it for the
    population.
    """
    raw = sketch_f.inner_product(sketch_g)
    scale = float(join_scale(info_f, info_g))
    return JoinEstimate(
        value=scale * raw,
        raw_sketch_estimate=raw,
        scale=scale,
        info_f=info_f,
        info_g=info_g,
    )


def estimate_self_join_size(sketch: Sketch, info: SampleInfo) -> SelfJoinEstimate:
    """Unbiased ``F₂`` estimate from a sketch of one sample.

    Applies the scheme-specific scale *and* additive correction (the
    estimators of Props 4, 14 and Sections III-D/E, V-C/D).
    """
    raw = sketch.second_moment()
    correction = self_join_correction(info)
    return SelfJoinEstimate(
        value=correction.apply(raw, info.sample_size),
        raw_sketch_estimate=raw,
        info=info,
    )


# ----------------------------------------------------------------------
# Theory-backed confidence intervals (analysis / planning mode)
# ----------------------------------------------------------------------

_INTERVALS = {"clt": clt_interval, "chebyshev": chebyshev_interval}


def _interval(estimate: float, variance: float, confidence: float, method: str):
    if method not in _INTERVALS:
        raise ConfigurationError(
            f"unknown interval method {method!r}; expected one of "
            f"{tuple(_INTERVALS)}"
        )
    return _INTERVALS[method](estimate, variance, confidence)


def join_interval(
    estimate: Union[JoinEstimate, float],
    f: FrequencyVector,
    g: FrequencyVector,
    info_f: SampleInfo,
    info_g: SampleInfo,
    n: int,
    *,
    confidence: float = 0.95,
    method: str = "clt",
) -> ConfidenceInterval:
    """Confidence interval from the exact combined variance (Props 9–11).

    Needs the *base* frequency vectors — this is the paper's analysis
    setting (e.g. deciding how aggressive load shedding may be for a known
    workload profile).  ``n`` is the number of averaged basic estimators
    (the bucket count for F-AGMS).
    """
    value = estimate.value if isinstance(estimate, JoinEstimate) else float(estimate)
    variance = combined_join_variance(
        moment_model_for(info_f),
        f,
        moment_model_for(info_g),
        g,
        join_scale(info_f, info_g),
        n,
    )
    return _interval(value, float(variance), confidence, method)


def self_join_interval(
    estimate: Union[SelfJoinEstimate, float],
    f: FrequencyVector,
    info: SampleInfo,
    n: int,
    *,
    confidence: float = 0.95,
    method: str = "clt",
) -> ConfidenceInterval:
    """Confidence interval from the exact combined variance (Props 10–12).

    See :func:`join_interval` about the analysis setting.
    """
    value = (
        estimate.value if isinstance(estimate, SelfJoinEstimate) else float(estimate)
    )
    correction = self_join_correction(info)
    variance = combined_self_join_variance(
        moment_model_for(info),
        f,
        correction.scale,
        n,
        correction=correction.random_coefficient,
    )
    return _interval(value, float(variance), confidence, method)
