"""Sampling-only estimators (Section III) — the paper's first baseline.

These estimators compute the aggregate *exactly over the sample* (no
sketch) and unbias it for the population — Props 3–6.  They are the
baseline the combined estimator is measured against, and they also mark
one side of the classic trade-off the paper's discussion cites (ref [2]):
sampling is the better primitive for **size of join**, sketches for the
**second frequency moment**.  The ablation bench
``benchmarks/test_ablation_estimator_comparison.py`` reproduces exactly
that trade-off with these estimators.

The functions accept the sample either as a key array (what a streaming
sampler emits) or as a :class:`~repro.frequency.FrequencyVector`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import DomainError
from ..frequency import FrequencyVector
from ..sampling.base import SampleInfo
from ..sampling.unbiasing import join_scale, self_join_correction
from ..variance.bounds import ConfidenceInterval, chebyshev_interval, clt_interval
from ..variance.generic import (
    moment_model_for,
    sampling_join_variance,
    sampling_self_join_variance,
)

__all__ = [
    "sample_join_size",
    "sample_self_join_size",
    "sample_join_interval",
    "sample_self_join_interval",
]

SampleLike = Union[FrequencyVector, np.ndarray, list]


def _as_frequency_vector(sample: SampleLike, domain_size: int) -> FrequencyVector:
    if isinstance(sample, FrequencyVector):
        if sample.domain_size != domain_size:
            raise DomainError(
                f"sample domain {sample.domain_size} does not match "
                f"declared domain {domain_size}"
            )
        return sample
    return FrequencyVector.from_items(np.asarray(sample), domain_size)


def sample_join_size(
    sample_f: SampleLike,
    info_f: SampleInfo,
    sample_g: SampleLike,
    info_g: SampleInfo,
    domain_size: int,
) -> float:
    """Unbiased ``|F ⋈ G|`` from two explicit samples (Props 3, 5, 6).

    ``X = C · Σᵢ f′ᵢ g′ᵢ`` with the scheme-appropriate ``C``.
    """
    fv_f = _as_frequency_vector(sample_f, domain_size)
    fv_g = _as_frequency_vector(sample_g, domain_size)
    return float(join_scale(info_f, info_g)) * fv_f.join_size(fv_g)


def sample_self_join_size(
    sample: SampleLike, info: SampleInfo, domain_size: int
) -> float:
    """Unbiased ``F₂`` from an explicit sample (Props 4 and Section III-D/E)."""
    fv = _as_frequency_vector(sample, domain_size)
    correction = self_join_correction(info)
    return correction.apply(float(fv.f2), info.sample_size)


def sample_join_interval(
    estimate: float,
    f: FrequencyVector,
    g: FrequencyVector,
    info_f: SampleInfo,
    info_g: SampleInfo,
    *,
    confidence: float = 0.95,
    method: str = "clt",
) -> ConfidenceInterval:
    """Theory-backed interval around a sampling-only join estimate.

    Uses the exact Prop 1 variance (needs the base frequency vectors —
    analysis/planning mode, like :func:`repro.core.estimators.join_interval`).
    """
    variance = float(
        sampling_join_variance(
            moment_model_for(info_f),
            f,
            moment_model_for(info_g),
            g,
            join_scale(info_f, info_g),
        )
    )
    builder = clt_interval if method == "clt" else chebyshev_interval
    return builder(estimate, variance, confidence)


def sample_self_join_interval(
    estimate: float,
    f: FrequencyVector,
    info: SampleInfo,
    *,
    confidence: float = 0.95,
    method: str = "clt",
) -> ConfidenceInterval:
    """Theory-backed interval around a sampling-only ``F₂`` estimate."""
    correction = self_join_correction(info)
    variance = float(
        sampling_self_join_variance(
            moment_model_for(info),
            f,
            correction.scale,
            correction=correction.random_coefficient,
        )
    )
    builder = clt_interval if method == "clt" else chebyshev_interval
    return builder(estimate, variance, confidence)
