"""Estimating generative-model properties from i.i.d. sample streams.

Section VI-B of the paper: the input stream *is* a with-replacement sample
from a finite population of known size (a generative model), too large to
store.  Sketch the stream with the standard update algorithm, then apply
the WR corrections (Section V-C) at estimation time — the estimation, not
the update, is what changes.

:class:`GenerativeModelEstimator` supports both the finite-population view
(estimates of ``Σᵢ fᵢ²`` and ``Σᵢ fᵢgᵢ`` of the population) and the
infinite-population / density view the paper describes ("the frequencies
… become densities"): :meth:`second_moment_density` estimates
``Σᵢ ρᵢ²`` where ``ρᵢ = fᵢ/|F|`` — which stays finite as the population
grows and equals the collision probability of the generative model.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, InsufficientDataError
from ..sampling.base import SampleInfo
from ..sampling.unbiasing import join_scale, self_join_correction
from ..sketches.base import Sketch

__all__ = ["GenerativeModelEstimator"]


class GenerativeModelEstimator:
    """Sketch an i.i.d. stream; estimate properties of its source population.

    Parameters
    ----------
    population_size:
        The (known) size ``|F|`` of the finite population the stream
        samples from.  The paper's WR analysis requires it; for the
        density view it only needs to be correct up to the ratio used in
        :meth:`second_moment_density`.
    sketch:
        The sketch that summarizes the stream.
    """

    __slots__ = ("population_size", "sketch", "_consumed")

    def __init__(self, population_size: int, sketch: Sketch) -> None:
        if population_size < 1:
            raise ConfigurationError(
                f"population_size must be >= 1, got {population_size}"
            )
        self.population_size = int(population_size)
        self.sketch = sketch
        self._consumed = 0

    @property
    def consumed(self) -> int:
        """Number of i.i.d. samples consumed so far (``|F′|``)."""
        return self._consumed

    def consume(self, keys) -> None:
        """Feed one chunk of the i.i.d. stream into the sketch."""
        keys = np.asarray(keys)
        self.sketch.update(keys)
        self._consumed += int(keys.size)

    def info(self) -> SampleInfo:
        """WR draw metadata for the stream consumed so far."""
        if self._consumed == 0:
            raise InsufficientDataError("no samples have been consumed yet")
        return SampleInfo(
            scheme="with_replacement",
            population_size=self.population_size,
            sample_size=self._consumed,
        )

    # ------------------------------------------------------------------
    # Population-level estimates
    # ------------------------------------------------------------------

    def self_join_size(self) -> float:
        """Unbiased estimate of the population's ``F₂ = Σᵢ fᵢ²``.

        Requires at least two consumed samples (the correction divides by
        ``|F′| − 1``).
        """
        correction = self_join_correction(self.info())
        return correction.apply(self.sketch.second_moment(), self._consumed)

    def join_size(self, other: "GenerativeModelEstimator") -> float:
        """Unbiased estimate of ``Σᵢ fᵢgᵢ`` between two populations.

        Both estimators' sketches must share their random families (same
        seed) — the usual sketch-compatibility requirement.
        """
        raw = self.sketch.inner_product(other.sketch)
        return float(join_scale(self.info(), other.info())) * raw

    # ------------------------------------------------------------------
    # Density (infinite-population) view
    # ------------------------------------------------------------------

    def second_moment_density(self) -> float:
        """Estimate of ``Σᵢ ρᵢ²`` — the model's collision probability.

        This is the population ``F₂`` normalized by ``|F|²``; the paper
        notes the WR analysis "straightforwardly extends to i.i.d. samples"
        under exactly this normalization.
        """
        return self.self_join_size() / self.population_size**2

    def join_density(self, other: "GenerativeModelEstimator") -> float:
        """Estimate of ``Σᵢ ρᵢ σᵢ`` between two generative models."""
        return self.join_size(other) / (
            self.population_size * other.population_size
        )

    def __repr__(self) -> str:
        return (
            f"GenerativeModelEstimator(population_size={self.population_size}, "
            f"consumed={self._consumed})"
        )
