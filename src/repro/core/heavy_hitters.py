"""Heavy hitters over sampled streams (extension feature).

Count-Sketch (our F-AGMS) was originally designed for finding frequent
items; combined with the paper's machinery it answers: *what are the heavy
hitters of the full stream when only a sample was sketched?*  Point
estimates from the sample scale by the same ``1/κ₁`` factor as the
first-moment aggregates (``E[f′ᵢ] = κ₁ fᵢ`` for every scheme of the
paper), so a sketch-over-sample supports frequency queries on the
*pre-sampling* stream.

The query model is candidate-based: callers supply the candidate key set
(the whole domain for small domains, or an application shortlist — e.g.
known customer IDs, observed sample keys).  A candidate-free heavy-hitter
structure would need a hierarchy of sketches, which is outside the paper's
scope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..sampling.base import SampleInfo
from ..sampling.unbiasing import _expectation_inverse
from ..sketches.fagms import FagmsSketch

__all__ = ["HeavyHitter", "estimate_frequencies", "heavy_hitters"]


@dataclass(frozen=True)
class HeavyHitter:
    """One frequent item: key and its estimated full-stream frequency."""

    key: int
    estimate: float


def estimate_frequencies(
    sketch: FagmsSketch, info: SampleInfo, keys
) -> np.ndarray:
    """Unbiased full-stream frequency estimates for candidate *keys*.

    *info* is the sampling draw that fed the sketch (from
    :func:`repro.core.sketch_over_sample` or a shedder); pass a
    ``p = 1`` Bernoulli info for an unsampled sketch.
    """
    keys = np.asarray(keys, dtype=np.int64)
    scale = float(_expectation_inverse(info))
    return scale * sketch.estimate_frequencies(keys)


def heavy_hitters(
    sketch: FagmsSketch,
    info: SampleInfo,
    candidates,
    *,
    threshold: float,
    top: int | None = None,
) -> list[HeavyHitter]:
    """Candidates whose estimated full-stream frequency exceeds *threshold*.

    Results are sorted by estimated frequency, descending; *top* truncates
    to the largest ``top`` survivors.  Callers choose the threshold in
    full-stream units (e.g. ``0.01 * stream_length`` for 1%-heavy hitters).
    """
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    if top is not None and top < 1:
        raise ConfigurationError(f"top must be >= 1, got {top}")
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.size == 0:
        return []
    estimates = estimate_frequencies(sketch, info, candidates)
    keep = estimates >= threshold
    survivors = candidates[keep]
    values = estimates[keep]
    order = np.argsort(values)[::-1]
    hitters = [
        HeavyHitter(key=int(survivors[i]), estimate=float(values[i]))
        for i in order
    ]
    if top is not None:
        hitters = hitters[:top]
    return hitters
