"""The paper's primary contribution: sketch-over-samples estimation.

This package combines the substrates — sketches (:mod:`repro.sketches`),
sampling (:mod:`repro.sampling`), and the variance theory
(:mod:`repro.variance`) — into the estimators the paper introduces
(Section V) and their three applications (Section VI):

* :mod:`~repro.core.estimators` — build a sketch over a sample of a
  relation and produce unbiased size-of-join / self-join-size estimates
  with optional theory-backed confidence intervals;
* :mod:`~repro.core.load_shedding` — streaming Bernoulli shedding in front
  of a sketch with skip-ahead sampling (Section VI-A);
* :mod:`~repro.core.iid` — estimating properties of a generative model
  from a stream of i.i.d. (with-replacement) samples (Section VI-B);
* online aggregation (Section VI-C) lives in :mod:`repro.engine`.
"""

from .heavy_hitters import HeavyHitter, estimate_frequencies, heavy_hitters
from .estimators import (
    JoinEstimate,
    SelfJoinEstimate,
    estimate_join_size,
    estimate_self_join_size,
    join_interval,
    self_join_interval,
    sketch_over_sample,
)
from .iid import GenerativeModelEstimator
from .load_shedding import LoadShedder, SheddingSketcher
from .planning import SheddingPlan, plan_shedding_rate, predict_relative_error
from .sampling_estimators import (
    sample_join_interval,
    sample_join_size,
    sample_self_join_interval,
    sample_self_join_size,
)
from .windows import TumblingWindowSketcher, WindowSummary, window_join_size

__all__ = [
    "sketch_over_sample",
    "estimate_join_size",
    "estimate_self_join_size",
    "JoinEstimate",
    "SelfJoinEstimate",
    "join_interval",
    "self_join_interval",
    "LoadShedder",
    "SheddingSketcher",
    "GenerativeModelEstimator",
    "SheddingPlan",
    "plan_shedding_rate",
    "predict_relative_error",
    "sample_join_size",
    "sample_self_join_size",
    "sample_join_interval",
    "sample_self_join_interval",
    "TumblingWindowSketcher",
    "WindowSummary",
    "window_join_size",
    "HeavyHitter",
    "estimate_frequencies",
    "heavy_hitters",
]
