"""Shedding-rate planning from the variance formulas (the paper's intro).

The introduction motivates the whole analysis with: "The formulas
resulting from such an analysis could be used to determine **how
aggressive the load shedding can be** without a significant loss in the
accuracy of the sketch over samples estimator."  This module is that tool.

Given a workload profile (the frequency vector of a representative window
of the stream), a sketch size, and an accuracy target, it computes the
smallest Bernoulli keep-probability ``p`` whose *predicted* relative error
meets the target — i.e. the largest admissible shedding rate.  The
prediction is the exact combined variance (Props 13–14) pushed through
the chosen tail bound.

All of this runs before any data is shed: it is a planning computation on
historical/profiled frequencies, exactly the use the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError, EstimationError
from ..frequency import FrequencyVector
from ..sampling.moments import BernoulliMoments
from ..variance.bounds import normal_quantile
from ..variance.generic import combined_join_variance, combined_self_join_variance

__all__ = ["SheddingPlan", "predict_relative_error", "plan_shedding_rate"]

#: Smallest keep-probability the planner will ever recommend.
MIN_KEEP_PROBABILITY = 1e-6


@dataclass(frozen=True)
class SheddingPlan:
    """Result of a shedding-rate search.

    Attributes
    ----------
    keep_probability:
        The recommended Bernoulli ``p`` (smallest meeting the target).
    predicted_error:
        Predicted relative error at that ``p`` (same bound as requested).
    speedup:
        The sketch-update speed-up factor, ``1/p``.
    target_error, confidence:
        Echo of the request.
    """

    keep_probability: float
    predicted_error: float
    speedup: float
    target_error: float
    confidence: float


def predict_relative_error(
    f: FrequencyVector,
    p: float,
    n: int,
    *,
    g: Optional[FrequencyVector] = None,
    confidence: float = 0.95,
) -> float:
    """Predicted relative error of the Bernoulli sketch-over-samples estimator.

    ``z · sqrt(Var) / truth`` with the exact combined variance: the
    half-width of the CLT interval at *confidence*, normalized by the true
    aggregate.  Provide ``g`` for size of join; omit it for self-join size.
    ``n`` is the number of averaged basic estimators (F-AGMS buckets).
    """
    if not 0 < p <= 1:
        raise ConfigurationError(f"keep probability must be in (0, 1], got {p}")
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    model = BernoulliMoments(_as_fraction(p))
    if g is not None:
        truth = f.join_size(g)
        if truth == 0:
            raise EstimationError("cannot target relative error of an empty join")
        scale = 1 / (_as_fraction(p) * _as_fraction(p))
        variance = combined_join_variance(model, f, model, g, scale, n)
    else:
        truth = f.f2
        if truth == 0:
            raise EstimationError("cannot target relative error of an empty relation")
        p_fraction = _as_fraction(p)
        variance = combined_self_join_variance(
            model,
            f,
            1 / p_fraction**2,
            n,
            correction=(1 - p_fraction) / p_fraction**2,
        )
    z = normal_quantile(0.5 + confidence / 2)
    return z * math.sqrt(float(variance)) / float(truth)


def plan_shedding_rate(
    f: FrequencyVector,
    target_error: float,
    n: int,
    *,
    g: Optional[FrequencyVector] = None,
    confidence: float = 0.95,
    tolerance: float = 1e-3,
) -> SheddingPlan:
    """Smallest Bernoulli keep-probability meeting a relative-error target.

    Binary-searches ``p`` over ``[MIN_KEEP_PROBABILITY, 1]`` using the
    monotone predicted error.  Raises :class:`EstimationError` when even
    ``p = 1`` (no shedding) misses the target — the sketch itself is then
    the bottleneck and more buckets are needed, not less shedding.
    """
    if target_error <= 0:
        raise ConfigurationError(f"target_error must be > 0, got {target_error}")
    error_at_full = predict_relative_error(f, 1.0, n, g=g, confidence=confidence)
    if error_at_full > target_error:
        raise EstimationError(
            f"target {target_error:.3g} unreachable: even without shedding the "
            f"predicted error is {error_at_full:.3g}; increase the sketch size"
        )
    low, high = MIN_KEEP_PROBABILITY, 1.0
    if predict_relative_error(f, low, n, g=g, confidence=confidence) <= target_error:
        high = low
    else:
        while (high - low) / high > tolerance:
            mid = math.sqrt(low * high)  # geometric bisection: p spans decades
            if predict_relative_error(f, mid, n, g=g, confidence=confidence) <= target_error:
                high = mid
            else:
                low = mid
    p = high
    return SheddingPlan(
        keep_probability=p,
        predicted_error=predict_relative_error(f, p, n, g=g, confidence=confidence),
        speedup=1.0 / p,
        target_error=target_error,
        confidence=confidence,
    )


def _as_fraction(p: float):
    from fractions import Fraction

    return Fraction(p).limit_denominator(10**12)
