"""Pipeline sinks: where verified envelopes leave the dataplane.

Sinks are the tail of a :class:`~repro.dataplane.pipeline.Pipeline` (and
the targets of tee/partition fan-out).  Every sink keeps its own
exactly-once cursor — duplicates are skipped, gaps raise
:class:`~repro.errors.StreamIntegrityError` — so a fan-out branch is as
replay-safe as the pipeline head.

Shipped sinks:

* :class:`SketcherSink` — terminate the stream in a (shedding) sketcher;
* :class:`RuntimeSink` — delegate to a full
  :class:`~repro.resilience.runtime.StreamRuntime` (its own cursor,
  checkpoints, governor);
* :class:`CheckpointSink` — periodic durable snapshots through
  :class:`~repro.resilience.checkpoint.CheckpointManager`;
* :class:`RegistrySink` — feed a serving
  :class:`~repro.serving.registry.SketchRegistry` stream, rotating a
  fresh queryable snapshot on flush;
* :class:`ObserverExportSink` — export the pipeline's metrics to JSONL
  on flush (:mod:`repro.observability.export`);
* :class:`CollectSink` / :class:`CallbackSink` — buffer batches for
  tests, or hand each envelope to arbitrary code.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from ..errors import ConfigurationError, StreamIntegrityError
from ..observability.export import metrics_to_records, write_jsonl
from ..observability.observer import Observer
from ..resilience.checkpoint import CheckpointManager
from ..resilience.runtime import ChunkEnvelope, StreamRuntime

__all__ = [
    "CallbackSink",
    "CheckpointSink",
    "CollectSink",
    "ObserverExportSink",
    "RegistrySink",
    "RuntimeSink",
    "SketcherSink",
    "Sink",
]


class Sink:
    """Base class for sinks: a per-sink exactly-once cursor + a writer.

    Subclasses implement :meth:`write`; :meth:`accept` handles the
    cursor (duplicate skip, gap detection) before delegating.  Sinks
    whose backend keeps its *own* cursor (``self_verifying = True``)
    override :meth:`accept` instead.
    """

    #: Stage label used in ``dataplane.stage.*`` metrics.
    name = "sink"
    #: True when the backend performs its own envelope verification; the
    #: pipeline then skips redundant head checks for sink-only chains.
    self_verifying = False

    def __init__(self, *, start: int = 0) -> None:
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        self.position = int(start)
        self.duplicates = 0
        self.tuples = 0

    def accept(self, envelope: ChunkEnvelope) -> int:
        """Apply one envelope exactly once; returns tuples written."""
        if envelope.sequence < self.position:
            self.duplicates += 1
            return 0
        if envelope.sequence > self.position:
            raise StreamIntegrityError(
                f"{self.name} sink gap: expected chunk {self.position}, "
                f"received chunk {envelope.sequence}"
            )
        keys = np.asarray(envelope.keys)
        self.write(keys, envelope)
        self.position += 1
        self.tuples += int(keys.size)
        return int(keys.size)

    def write(self, keys: np.ndarray, envelope: ChunkEnvelope) -> None:
        """Persist one verified batch (subclass hook)."""
        raise NotImplementedError

    def flush(self) -> None:
        """End-of-stream hook (default: nothing)."""


class CollectSink(Sink):
    """Buffer every batch in memory — the assertion-friendly test sink."""

    name = "collect"

    def __init__(self, *, start: int = 0) -> None:
        super().__init__(start=start)
        self.chunks: list = []

    def write(self, keys: np.ndarray, envelope: ChunkEnvelope) -> None:
        """Append the batch to :attr:`chunks`."""
        self.chunks.append(keys)

    def keys(self) -> np.ndarray:
        """All collected keys, concatenated in arrival order."""
        if not self.chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self.chunks)


class CallbackSink(Sink):
    """Hand each envelope to a callable (integration escape hatch).

    *fn* receives the sealed envelope; *on_flush*, when given, runs at
    end-of-stream.
    """

    name = "callback"

    def __init__(
        self,
        fn: Callable[[ChunkEnvelope], None],
        *,
        on_flush: Optional[Callable[[], None]] = None,
        start: int = 0,
    ) -> None:
        super().__init__(start=start)
        self.fn = fn
        self.on_flush = on_flush

    def write(self, keys: np.ndarray, envelope: ChunkEnvelope) -> None:
        """Invoke the callback with the envelope."""
        self.fn(envelope)

    def flush(self) -> None:
        """Invoke the flush callback, when configured."""
        if self.on_flush is not None:
            self.on_flush()


class SketcherSink(Sink):
    """Terminate the stream in a sketcher's ``process(keys)`` method.

    Works with :class:`~repro.resilience.adaptive.AdaptiveSheddingSketcher`
    and :class:`~repro.core.load_shedding.SheddingSketcher`.  When the
    sketcher is adaptive, the sink re-exports ``rate`` / ``set_rate`` /
    ``last_kept`` so the pipeline's governor wiring can retune it.
    """

    name = "sketcher"

    def __init__(self, sketcher, *, start: int = 0) -> None:
        super().__init__(start=start)
        self.sketcher = sketcher
        self.kept = 0
        self.last_kept = 0

    @property
    def rate(self) -> float:
        """The sketcher's keep-probability currently in force."""
        return self.sketcher.rate

    def set_rate(self, p: float) -> None:
        """Retune the sketcher's keep-probability."""
        self.sketcher.set_rate(p)

    def write(self, keys: np.ndarray, envelope: ChunkEnvelope) -> None:
        """Shed + sketch the batch."""
        self.last_kept = int(self.sketcher.process(keys))
        self.kept += self.last_kept


class RuntimeSink(Sink):
    """Delegate every envelope to a :class:`StreamRuntime`.

    The runtime keeps its own exactly-once cursor, integrity checks,
    checkpoint cadence, and governor wiring, so this sink is
    ``self_verifying`` and the pipeline feeds it raw envelopes — the
    seam that re-bases :meth:`StreamRuntime.run` on the dataplane.
    """

    name = "runtime"
    self_verifying = True

    def __init__(self, runtime: StreamRuntime) -> None:
        super().__init__()
        self.runtime = runtime
        self.kept = 0
        self.last_kept = 0

    def accept(self, envelope: ChunkEnvelope) -> int:
        """Apply through :meth:`StreamRuntime.process` (its own cursor)."""
        self.last_kept = int(self.runtime.process(envelope))
        self.kept += self.last_kept
        self.tuples += int(np.asarray(envelope.keys).size)
        return self.last_kept

    def write(self, keys: np.ndarray, envelope: ChunkEnvelope) -> None:
        """Unused — :meth:`accept` delegates to the runtime directly."""
        raise NotImplementedError("RuntimeSink delivers via accept()")


class CheckpointSink(Sink):
    """Periodic durable snapshots of pipeline state.

    *payload* is a zero-argument callable returning ``(state, arrays)``
    — typically closing over the sketch/engine being maintained — and is
    invoked every *every* envelopes plus once on flush (when new
    envelopes arrived since the last snapshot).  Snapshots go through
    :class:`~repro.resilience.checkpoint.CheckpointManager`, so they are
    atomic, CRC-verified, and pruned to *keep*.
    """

    name = "checkpoint"

    def __init__(
        self,
        directory,
        payload: Callable[[], tuple],
        *,
        every: int = 16,
        keep: int = 2,
        start: int = 0,
    ) -> None:
        super().__init__(start=start)
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every}")
        self.manager = CheckpointManager(directory, keep=keep)
        self.payload = payload
        self.every = int(every)
        self.written = 0
        self._applied = int(start)
        self._dirty = False

    def write(self, keys: np.ndarray, envelope: ChunkEnvelope) -> None:
        """Snapshot every *every* envelopes."""
        self._applied += 1
        self._dirty = True
        if self._applied % self.every == 0:
            self.checkpoint()

    def checkpoint(self):
        """Write one durable snapshot now; returns its path."""
        state, arrays = self.payload()
        path = self.manager.save(
            position=self._applied, state=state, arrays=arrays
        )
        self.written += 1
        self._dirty = False
        return path

    def flush(self) -> None:
        """Final snapshot covering any tail since the last cadence hit."""
        if self._dirty:
            self.checkpoint()


class RegistrySink(Sink):
    """Feed a serving-registry stream; rotate a snapshot on flush.

    Each batch goes to :meth:`SketchRegistry.ingest`; :meth:`flush`
    calls :meth:`SketchRegistry.rotate` so queries see a fresh snapshot
    the moment the pipeline finishes (rotation on flush).  Set
    *rotate_every* to also rotate mid-stream every N envelopes, making
    partial progress queryable while the pipeline is in flight.
    """

    name = "registry"

    def __init__(
        self,
        registry,
        stream: str,
        *,
        rotate_every: Optional[int] = None,
        start: int = 0,
    ) -> None:
        super().__init__(start=start)
        if rotate_every is not None and rotate_every < 1:
            raise ConfigurationError(
                f"rotate_every must be >= 1, got {rotate_every}"
            )
        self.registry = registry
        self.stream = str(stream)
        self.rotate_every = rotate_every
        self.rotations = 0

    def write(self, keys: np.ndarray, envelope: ChunkEnvelope) -> None:
        """Ingest the batch; rotate on the mid-stream cadence if set."""
        if keys.size:
            self.registry.ingest(self.stream, keys)
        if self.rotate_every is not None and (
            (self.position + 1) % self.rotate_every == 0
        ):
            self.registry.rotate(self.stream)
            self.rotations += 1

    def flush(self) -> None:
        """Rotate a fresh queryable snapshot."""
        self.registry.rotate(self.stream)
        self.rotations += 1


class ObserverExportSink(Sink):
    """Export an observer's metrics to a JSONL file on flush.

    Batches only advance the cursor; at end-of-stream the observer's
    counters/gauges/histograms — including the pipeline's own
    ``dataplane.*`` series — are written through
    :func:`repro.observability.export.metrics_to_records` +
    :func:`~repro.observability.export.write_jsonl`.
    """

    name = "export"

    def __init__(
        self,
        observer: Observer,
        path,
        *,
        namespace: str = "repro",
        start: int = 0,
    ) -> None:
        super().__init__(start=start)
        self.observer = observer
        self.path = path
        self.namespace = namespace
        self.exports = 0

    def write(self, keys: np.ndarray, envelope: ChunkEnvelope) -> None:
        """Nothing per batch — the cursor advance is the bookkeeping."""

    def flush(self) -> None:
        """Write the metric records out."""
        records = metrics_to_records(self.observer, namespace=self.namespace)
        write_jsonl(self.path, records, append=self.exports > 0)
        self.exports += 1


def flush_all(sinks: Iterable) -> None:
    """Flush a collection of sinks/branches in order (shared helper)."""
    for sink in sinks:
        sink.flush()


__all__.append("flush_all")
