"""Composable dataplane: sources → operators → sinks with backpressure.

One scan loop for every workload (ROADMAP item 5).  Build a
:class:`Pipeline` from pluggable stages instead of hand-rolling ingest::

    from repro.dataplane import FileSource, Pipeline, ShedOperator, SketcherSink

    pipeline = Pipeline(
        FileSource("stream.rprs", chunk_size=8192),
        ShedOperator(p=0.25, seed=7),
        sinks=[SketcherSink(sketcher)],
        governor=LoadGovernor(2e-6),
        observer=observer,
    )
    result = pipeline.run()

Every stage rides the library's existing seams — sealed
:class:`~repro.resilience.runtime.ChunkEnvelope` cursors (exactly-once),
:class:`~repro.resilience.chaos.ChaosInjector` fault points at the
delivery boundary, ``observer=`` spans/metrics under ``dataplane.*`` —
and a file-backed pipeline is bit-identical to the equivalent
:func:`~repro.engine.scan.run_lockstep_scan`.  See ``docs/DATAPLANE.md``.
"""

from .operators import (
    EngineOperator,
    FilterOperator,
    KeyPartitionOperator,
    MapOperator,
    Operator,
    ShedOperator,
    SketchUpdateOperator,
    TeeOperator,
)
from .pipeline import Branch, Pipeline, PipelineResult
from .queue import CLOSED, BoundedQueue, QueueAborted
from .sinks import (
    CallbackSink,
    CheckpointSink,
    CollectSink,
    ObserverExportSink,
    RegistrySink,
    RuntimeSink,
    Sink,
    SketcherSink,
    flush_all,
)
from .sources import (
    FileSource,
    IterableSource,
    MicroBatchSource,
    SocketSource,
    Source,
    UnionSource,
    send_frames,
)

__all__ = [
    "Branch",
    "Pipeline",
    "PipelineResult",
    "BoundedQueue",
    "CLOSED",
    "QueueAborted",
    "Operator",
    "EngineOperator",
    "FilterOperator",
    "KeyPartitionOperator",
    "MapOperator",
    "ShedOperator",
    "SketchUpdateOperator",
    "TeeOperator",
    "Sink",
    "CallbackSink",
    "CheckpointSink",
    "CollectSink",
    "ObserverExportSink",
    "RegistrySink",
    "RuntimeSink",
    "SketcherSink",
    "flush_all",
    "Source",
    "FileSource",
    "IterableSource",
    "MicroBatchSource",
    "SocketSource",
    "UnionSource",
    "send_frames",
]
