"""Bounded hand-off queue: the dataplane's backpressure primitive.

A :class:`BoundedQueue` sits between a pipeline's producer thread (the
source) and its consumer loop (operators + sinks).  The bound is the
whole point: when the consumer falls behind, :meth:`BoundedQueue.put`
blocks the producer instead of buffering without limit, so a slow sink
propagates backpressure all the way to the source and memory stays
``O(capacity)`` regardless of stream length.

Wait times on both sides are folded into
:class:`~repro.resilience.clock.Ewma` trackers through an injectable
:data:`~repro.resilience.clock.Clock`, giving the
:class:`~repro.resilience.governor.LoadGovernor` (and the operator) a
congestion signal without any ambient timing of its own.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from ..errors import ConfigurationError
from ..resilience.clock import DEFAULT_CLOCK, Clock, Ewma

__all__ = ["CLOSED", "BoundedQueue", "QueueAborted"]


class QueueAborted(RuntimeError):
    """Raised to a blocked producer when the consumer side tears down.

    Deliberately not a :class:`~repro.errors.ReproError`: it is internal
    flow control (the consumer already holds the real failure) and must
    never be caught as a typed pipeline error.
    """


class _Closed:
    """Sentinel type for :data:`CLOSED` (singleton, falsy repr aid)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<queue closed>"


#: Returned by :meth:`BoundedQueue.get` once the queue is closed and drained.
CLOSED = _Closed()


class BoundedQueue:
    """A blocking FIFO with a hard capacity and wait-time accounting.

    Parameters
    ----------
    capacity:
        Maximum items buffered; ``put`` blocks at this depth.
    clock:
        Shared monotonic timer for wait accounting (injectable for
        deterministic tests).
    smoothing:
        EWMA weight for the put/get wait trackers.
    """

    __slots__ = (
        "capacity",
        "clock",
        "put_wait",
        "get_wait",
        "high_watermark",
        "_items",
        "_lock",
        "_not_full",
        "_not_empty",
        "_closed",
        "_aborted",
    )

    def __init__(
        self,
        capacity: int,
        *,
        clock: Clock = DEFAULT_CLOCK,
        smoothing: float = 0.5,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.clock = clock
        #: EWMA of seconds producers spent blocked in :meth:`put`.
        self.put_wait = Ewma(smoothing)
        #: EWMA of seconds the consumer spent blocked in :meth:`get`.
        self.get_wait = Ewma(smoothing)
        #: Deepest the queue ever got (bounded by *capacity* by design).
        self.high_watermark = 0
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._aborted = False

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        """Items currently buffered."""
        return len(self._items)

    def put(self, item) -> None:
        """Append *item*, blocking while the queue is at capacity.

        Raises :class:`QueueAborted` if the consumer tore the queue down
        (the producer should simply exit), and
        :class:`~repro.errors.ConfigurationError` on a closed queue
        (a programming error, not flow control).
        """
        started = self.clock()
        with self._not_full:
            while len(self._items) >= self.capacity and not self._aborted:
                self._not_full.wait()
            if self._aborted:
                raise QueueAborted("queue torn down by the consumer")
            if self._closed:
                raise ConfigurationError("put() on a closed queue")
            self._items.append(item)
            depth = len(self._items)
            if depth > self.high_watermark:
                self.high_watermark = depth
            self._not_empty.notify()
        self.put_wait.update(self.clock() - started)

    def get(self):
        """Pop the oldest item, blocking while empty.

        Returns :data:`CLOSED` once the queue is closed *and* drained.
        """
        started = self.clock()
        with self._not_empty:
            while not self._items and not (self._closed or self._aborted):
                self._not_empty.wait()
            if not self._items:
                return CLOSED
            item = self._items.popleft()
            self._not_full.notify()
        self.get_wait.update(self.clock() - started)
        return item

    def close(self) -> None:
        """Producer-side end-of-stream: no more puts; getters drain then
        receive :data:`CLOSED`."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def abort(self) -> None:
        """Consumer-side teardown: wake and fail any blocked producer.

        Buffered items are dropped; subsequent :meth:`get` calls return
        :data:`CLOSED` immediately.
        """
        with self._lock:
            self._aborted = True
            self._items.clear()
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def __repr__(self) -> str:
        return (
            f"BoundedQueue(capacity={self.capacity}, depth={self.depth}, "
            f"high_watermark={self.high_watermark}, closed={self._closed})"
        )
