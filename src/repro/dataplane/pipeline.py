"""The pipeline: one composable scan loop for every workload.

:class:`Pipeline` ties a :class:`~repro.dataplane.sources.Source`, a
chain of :class:`~repro.dataplane.operators.Operator` stages, and a list
of :class:`~repro.dataplane.sinks.Sink` targets into the single ingest
loop the rest of the library used to hand-roll four different ways
(:class:`~repro.resilience.runtime.StreamRuntime`,
:func:`~repro.engine.scan.run_lockstep_scan`, the sharded driver, and
every example).

Semantics:

* **Exactly-once head cursor** — envelopes are verified once, at the
  head: duplicates (sequence behind the cursor) are skipped *before any
  stateful operator runs*, so a post-recovery replay cannot advance a
  shedder's RNG twice; gaps and count/CRC failures raise
  :class:`~repro.errors.StreamIntegrityError`.  Faults are accounted
  under ``dataplane.chunks.*``.
* **Bounded-queue backpressure** — with ``queue_depth > 0`` the source
  runs on a producer thread feeding a
  :class:`~repro.dataplane.queue.BoundedQueue`; a slow sink therefore
  stalls the source at a bounded depth instead of buffering the stream.
  ``queue_depth=0`` runs everything synchronously on the caller's
  thread (deterministic, zero threading overhead — what
  :meth:`StreamRuntime.run` uses).
* **Governor wiring** — give the pipeline a
  :class:`~repro.resilience.governor.LoadGovernor` and it retunes the
  first stage exposing ``rate`` / ``set_rate`` / ``last_kept`` (a
  :class:`~repro.dataplane.operators.ShedOperator`,
  :class:`~repro.dataplane.sinks.SketcherSink`, …) from each
  envelope's measured cost.
* **Seams for free** — a :class:`~repro.resilience.chaos.ChaosInjector`
  wraps the source, and an :class:`~repro.observability.Observer`
  receives ``dataplane.stage.*`` metrics and the ``dataplane.run``
  span, end-to-end.

Bit-identity: integer sketch updates are exact, shed stages at
``p = 1`` consume no randomness, and duplicates never reach operators —
so a file-backed pipeline produces counters bit-identical to the
equivalent :func:`~repro.engine.scan.run_lockstep_scan` (asserted in
``tests/dataplane``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..errors import ConfigurationError, StreamIntegrityError
from ..observability.observer import Observer, as_observer
from ..resilience.clock import DEFAULT_CLOCK, Clock
from ..resilience.governor import LoadGovernor
from ..resilience.runtime import ChunkEnvelope, verify_payload
from .operators import Operator
from .queue import CLOSED, BoundedQueue, QueueAborted
from .sinks import flush_all
from .sources import Source

__all__ = ["Branch", "Pipeline", "PipelineResult"]


class _Failure:
    """Producer-side exception, shipped through the queue to the caller."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


def _retunable(stage) -> bool:
    """True when *stage* exposes the governor's retuning contract."""
    return all(hasattr(stage, attr) for attr in ("rate", "set_rate", "last_kept"))


@dataclass
class PipelineResult:
    """Summary of one :meth:`Pipeline.run` (counters, not estimates)."""

    #: Envelopes accepted through the head cursor this run.
    envelopes: int
    #: Tuples that arrived in accepted envelopes.
    tuples_in: int
    #: Tuples delivered to sinks after the operator chain.
    tuples_out: int
    #: Re-delivered envelopes skipped by the head cursor.
    duplicates: int
    #: Governor rate changes applied.
    retunes: int
    #: Deepest the hand-off queue got (0 in synchronous mode).
    max_queue_depth: int
    #: EWMA seconds the source spent blocked on backpressure (or None).
    queue_put_wait: Optional[float]
    #: EWMA seconds the consumer spent waiting for the source (or None).
    queue_get_wait: Optional[float]


class Branch:
    """A sub-chain (operators + sinks) used as a fan-out target.

    :class:`~repro.dataplane.operators.KeyPartitionOperator` and
    :class:`~repro.dataplane.operators.TeeOperator` deliver envelopes to
    targets with ``accept``/``flush``; a :class:`Branch` lets such a
    target be a whole chain rather than a single sink.  Branches trust
    their upstream pipeline's head cursor and do not re-verify.
    """

    def __init__(self, *operators: Operator, sinks: Sequence = ()) -> None:
        self.operators: Sequence[Operator] = tuple(operators)
        self.sinks: Sequence = tuple(sinks)
        if not self.operators and not self.sinks:
            raise ConfigurationError("a Branch needs at least one stage")

    def accept(self, envelope: ChunkEnvelope) -> None:
        """Route one envelope through the branch's chain."""
        envelopes = [envelope]
        for operator in self.operators:
            envelopes = [
                produced
                for received in envelopes
                for produced in operator.process(received)
            ]
            if not envelopes:
                return
        for produced in envelopes:
            for sink in self.sinks:
                sink.accept(produced)

    def flush(self) -> None:
        """Cascade end-of-stream through the branch."""
        for index, operator in enumerate(self.operators):
            for trailing in operator.flush():
                tail = Branch(*self.operators[index + 1 :], sinks=self.sinks)
                tail.accept(trailing)
        flush_all(self.sinks)


class Pipeline:
    """Source → operators → sinks with backpressure and exactly-once.

    Parameters
    ----------
    source:
        The stream head (any :class:`~repro.dataplane.sources.Source`).
    *operators:
        Transform chain, applied in order to every verified envelope.
    sinks:
        Delivery targets (each envelope goes to every sink, in order).
    queue_depth:
        Capacity of the producer/consumer hand-off queue — the
        backpressure bound.  ``0`` disables the producer thread and runs
        the source synchronously.
    governor:
        Optional :class:`~repro.resilience.governor.LoadGovernor`
        retuning the *retune* stage from measured per-envelope cost.
    retune:
        The stage the governor controls; default: the first operator or
        sink exposing ``rate``/``set_rate``/``last_kept``.
    chaos:
        Optional :class:`~repro.resilience.chaos.ChaosInjector` wrapped
        around the source (fault injection at the delivery boundary).
    clock:
        Shared :data:`~repro.resilience.clock.Clock` for stage timing
        and queue-wait accounting (injectable for deterministic tests).
    observer:
        Optional :class:`~repro.observability.Observer` receiving
        ``dataplane.*`` metrics and the ``dataplane.run`` span.
    start:
        Initial head-cursor position (resume support).
    """

    def __init__(
        self,
        source: Source,
        *operators: Operator,
        sinks: Sequence = (),
        queue_depth: int = 8,
        governor: Optional[LoadGovernor] = None,
        retune=None,
        chaos=None,
        clock: Clock = DEFAULT_CLOCK,
        observer: Optional[Observer] = None,
        start: int = 0,
    ) -> None:
        if queue_depth < 0:
            raise ConfigurationError(
                f"queue_depth must be >= 0, got {queue_depth}"
            )
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        self.source = source
        self.operators: Sequence[Operator] = tuple(operators)
        self.sinks: Sequence = tuple(sinks)
        self.queue_depth = int(queue_depth)
        self.governor = governor
        self.chaos = chaos
        self.clock = clock
        self.observer = as_observer(observer)
        self.position = int(start)
        self.duplicates = 0
        self.tuples_in = 0
        self.tuples_out = 0
        self.envelopes_accepted = 0
        self.retunes = 0
        self.last_queue: Optional[BoundedQueue] = None
        if retune is None:
            for stage in (*self.operators, *self.sinks):
                if _retunable(stage):
                    retune = stage
                    break
        elif not _retunable(retune):
            raise ConfigurationError(
                f"retune stage {retune!r} lacks rate/set_rate/last_kept"
            )
        self.retune = retune
        if governor is not None and retune is None:
            raise ConfigurationError(
                "a governed pipeline needs a retunable stage (ShedOperator, "
                "SketcherSink, ...); none found"
            )
        # Sink-only chains whose sinks all run their own cursor (e.g. a
        # StreamRuntime) delegate verification instead of doubling it.
        self._delegate_cursor = (
            not self.operators
            and bool(self.sinks)
            and all(getattr(sink, "self_verifying", False) for sink in self.sinks)
        )

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def _stream(self) -> Iterable[ChunkEnvelope]:
        envelopes = self.source.envelopes()
        if self.chaos is not None:
            envelopes = self.chaos.wrap(envelopes)
        return envelopes

    def _deliver(self, envelope: ChunkEnvelope) -> None:
        """Verify one envelope at the head, run the chain, feed the sinks."""
        obs = self.observer
        if self._delegate_cursor:
            for sink in self.sinks:
                sink.accept(envelope)
            self.envelopes_accepted += 1
            self.tuples_in += int(envelope.count)
            self.tuples_out += int(envelope.count)
            return
        if envelope.sequence < self.position:
            self.duplicates += 1
            obs.counter("dataplane.chunks.duplicate").inc()
            return
        if envelope.sequence > self.position:
            obs.counter("dataplane.chunks.rejected", reason="gap").inc()
            raise StreamIntegrityError(
                f"stream gap: expected chunk {self.position}, "
                f"received chunk {envelope.sequence}"
            )
        keys = verify_payload(
            envelope,
            lambda reason: obs.counter(
                "dataplane.chunks.rejected", reason=reason
            ).inc(),
        )
        started = self.clock()
        envelopes = [envelope]
        for operator in self.operators:
            stage_start = self.clock()
            envelopes = [
                produced
                for received in envelopes
                for produced in operator.process(received)
            ]
            if obs.enabled:
                obs.histogram(
                    "dataplane.stage.seconds", stage=operator.name
                ).observe(self.clock() - stage_start)
                obs.counter(
                    "dataplane.stage.envelopes", stage=operator.name
                ).inc(len(envelopes))
                obs.counter("dataplane.stage.tuples", stage=operator.name).inc(
                    int(sum(env.count for env in envelopes))
                )
            if not envelopes:
                break
        delivered = 0
        for produced in envelopes:
            for sink in self.sinks:
                stage_start = self.clock()
                sink.accept(produced)
                if obs.enabled:
                    obs.histogram(
                        "dataplane.stage.seconds", stage=sink.name
                    ).observe(self.clock() - stage_start)
                    obs.counter(
                        "dataplane.stage.envelopes", stage=sink.name
                    ).inc()
            delivered += int(produced.count)
        elapsed = self.clock() - started
        if self.governor is not None:
            proposal = self.governor.propose(
                self.retune.rate, int(self.retune.last_kept), elapsed
            )
            if proposal is not None:
                self.retune.set_rate(proposal)
                self.retunes += 1
                obs.counter("dataplane.rate.retunes").inc()
        self.position += 1
        self.envelopes_accepted += 1
        self.tuples_in += int(keys.size)
        self.tuples_out += delivered
        obs.counter("dataplane.chunks.accepted").inc()
        obs.counter("dataplane.tuples.seen").inc(int(keys.size))
        obs.counter("dataplane.tuples.delivered").inc(delivered)
        obs.histogram("dataplane.chunk.seconds").observe(elapsed)

    def _flush(self) -> None:
        """Cascade end-of-stream through operators, then flush sinks."""
        for index, operator in enumerate(self.operators):
            for trailing in operator.flush():
                tail = Branch(*self.operators[index + 1 :], sinks=self.sinks)
                tail.accept(trailing)
        flush_all(self.sinks)

    def _run_threaded(self) -> None:
        obs = self.observer
        queue = BoundedQueue(self.queue_depth, clock=self.clock)
        self.last_queue = queue

        def produce() -> None:
            try:
                for envelope in self._stream():
                    queue.put(envelope)
            except QueueAborted:
                return
            except BaseException as error:  # shipped to the caller's thread
                try:
                    queue.put(_Failure(error))
                except QueueAborted:
                    return
            finally:
                queue.close()

        producer = threading.Thread(
            target=produce, name="dataplane-source", daemon=True
        )
        producer.start()
        try:
            while True:
                item = queue.get()
                if item is CLOSED:
                    break
                if isinstance(item, _Failure):
                    raise item.error
                if obs.enabled:
                    obs.gauge("dataplane.queue.depth").set(queue.depth)
                self._deliver(item)
        except BaseException:
            queue.abort()
            raise
        finally:
            producer.join()
            wait = queue.get_wait.value
            if obs.enabled and wait is not None:
                obs.histogram("dataplane.queue.wait_seconds").observe(wait)

    def run(self) -> PipelineResult:
        """Drive the source to exhaustion; returns this run's summary.

        Re-running after a fault resumes from the retained head cursor —
        replayed prefixes are skipped as duplicates, which is what makes
        crash/replay recovery bit-identical to a clean run.
        """
        before_envelopes = self.envelopes_accepted
        before_in = self.tuples_in
        before_out = self.tuples_out
        before_dup = self.duplicates
        before_retunes = self.retunes
        self.last_queue = None
        with self.observer.span(
            "dataplane.run",
            operators=len(self.operators),
            sinks=len(self.sinks),
            queue_depth=self.queue_depth,
        ):
            if self.queue_depth == 0:
                for envelope in self._stream():
                    self._deliver(envelope)
            else:
                self._run_threaded()
            self._flush()
        queue = self.last_queue
        return PipelineResult(
            envelopes=self.envelopes_accepted - before_envelopes,
            tuples_in=self.tuples_in - before_in,
            tuples_out=self.tuples_out - before_out,
            duplicates=self.duplicates - before_dup,
            retunes=self.retunes - before_retunes,
            max_queue_depth=0 if queue is None else queue.high_watermark,
            queue_put_wait=None if queue is None else queue.put_wait.value,
            queue_get_wait=None if queue is None else queue.get_wait.value,
        )

    def __repr__(self) -> str:
        stages = [self.source.name]
        stages += [operator.name for operator in self.operators]
        stages += [getattr(sink, "name", "sink") for sink in self.sinks]
        return (
            f"Pipeline({' -> '.join(stages)}, queue_depth={self.queue_depth}, "
            f"position={self.position})"
        )
