"""Pipeline sources: anything that can yield sealed :class:`ChunkEnvelope`s.

A source is the head of a :class:`~repro.dataplane.pipeline.Pipeline` —
the only stage that talks to the outside world.  Every source seals its
chunks with :func:`~repro.resilience.runtime.make_envelope` (sequence
number, declared count, CRC32), so delivery faults anywhere downstream
are detected by the pipeline's exactly-once cursor, and a replay after
recovery re-delivers the same sequences for duplicate-skipping.

Shipped sources:

* :class:`IterableSource` — in-memory chunks or pre-sealed envelopes
  (the generalization of :meth:`StreamRuntime.run`'s input contract);
* :class:`FileSource` — a stream file via
  :func:`repro.streams.io.iter_chunks` (``O(1)`` resume from a cursor);
* :class:`MicroBatchSource` — re-chunks an arbitrary iterable of keys,
  arrays, or small batches into fixed-size envelopes;
* :class:`SocketSource` — length-prefixed ``int64`` frames from a
  connected socket (see :func:`send_frames` for the writer side);
* :class:`UnionSource` — deterministic round-robin merge of several
  sources into one resealed stream (multi-stream union).
"""

from __future__ import annotations

import socket
import struct
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import ConfigurationError, StreamIntegrityError
from ..resilience.runtime import ChunkEnvelope, make_envelope
from ..streams.io import PathLike, iter_chunks

__all__ = [
    "FileSource",
    "IterableSource",
    "MicroBatchSource",
    "SocketSource",
    "Source",
    "UnionSource",
    "send_frames",
]

_FRAME_HEADER = struct.Struct("<Q")


class Source:
    """Base class for pipeline sources.

    Subclasses implement :meth:`envelopes`; re-iterable sources (file,
    list-backed) may be consumed repeatedly, which is what lets a
    pipeline replay its stream after a recovery.
    """

    #: Stage label used in ``dataplane.stage.*`` metrics.
    name = "source"

    def envelopes(self) -> Iterator[ChunkEnvelope]:
        """Yield the source's stream as sealed envelopes."""
        raise NotImplementedError


class IterableSource(Source):
    """Seal an iterable of raw chunks and/or pre-built envelopes.

    Raw chunks are sealed on the fly with sequence numbers continuing
    from the last envelope seen (starting at *start*) — exactly the
    contract :meth:`StreamRuntime.run` established, so recovered runs
    can mix a sealed replay prefix with a raw tail.
    """

    name = "iterable"

    def __init__(self, items: Iterable, *, start: int = 0) -> None:
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        self.items = items
        self.start = int(start)

    def envelopes(self) -> Iterator[ChunkEnvelope]:
        """Yield sealed envelopes, numbering raw chunks sequentially."""
        sequence = self.start
        for item in self.items:
            if isinstance(item, ChunkEnvelope):
                envelope = item
            else:
                envelope = make_envelope(sequence, item)
            sequence = envelope.sequence + 1
            yield envelope


class FileSource(Source):
    """Stream a :mod:`repro.streams.io` file as sealed envelopes.

    *start* / *limit* select a tuple window with an ``O(1)`` seek (no
    re-read of the prefix); *sequence_start* numbers the first envelope,
    so a recovered pipeline can resume mid-file with sequences matching
    its checkpointed cursor.
    """

    name = "file"

    def __init__(
        self,
        path: PathLike,
        chunk_size: int = 65_536,
        *,
        start: int = 0,
        limit=None,
        sequence_start: int = 0,
    ) -> None:
        if sequence_start < 0:
            raise ConfigurationError(
                f"sequence_start must be >= 0, got {sequence_start}"
            )
        self.path = path
        self.chunk_size = int(chunk_size)
        self.start = int(start)
        self.limit = limit
        self.sequence_start = int(sequence_start)

    def envelopes(self) -> Iterator[ChunkEnvelope]:
        """Yield the file window as sealed envelopes (re-iterable)."""
        sequence = self.sequence_start
        for chunk in iter_chunks(
            self.path, self.chunk_size, start=self.start, limit=self.limit
        ):
            yield make_envelope(sequence, chunk)
            sequence += 1


class MicroBatchSource(Source):
    """Re-chunk an arbitrary iterable into fixed-size envelopes.

    Accepts a mix of scalar keys, lists, and arrays; keys are coalesced
    into batches of exactly *batch_size* tuples (the final batch may be
    short).  This is the adapter that turns "any Python iterable" into
    the dataplane's envelope contract.
    """

    name = "microbatch"

    def __init__(self, items: Iterable, batch_size: int, *, start: int = 0) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        self.items = items
        self.batch_size = int(batch_size)
        self.start = int(start)

    def envelopes(self) -> Iterator[ChunkEnvelope]:
        """Yield coalesced fixed-size envelopes."""
        sequence = self.start
        pending: list = []
        pending_size = 0
        for item in self.items:
            keys = np.atleast_1d(np.asarray(item, dtype=np.int64))
            pending.append(keys)
            pending_size += int(keys.size)
            while pending_size >= self.batch_size:
                flat = np.concatenate(pending) if len(pending) > 1 else pending[0]
                batch, rest = flat[: self.batch_size], flat[self.batch_size :]
                yield make_envelope(sequence, batch)
                sequence += 1
                pending = [rest] if rest.size else []
                pending_size = int(rest.size)
        if pending_size:
            flat = np.concatenate(pending) if len(pending) > 1 else pending[0]
            yield make_envelope(sequence, flat)


class SocketSource(Source):
    """Read length-prefixed ``int64`` key frames from a connected socket.

    Frame format: an 8-byte little-endian unsigned count, then ``count``
    little-endian ``int64`` keys.  A clean EOF at a frame boundary ends
    the stream; EOF mid-frame raises
    :class:`~repro.errors.StreamIntegrityError`.  The writer side is
    :func:`send_frames`.
    """

    name = "socket"

    def __init__(self, conn: socket.socket, *, start: int = 0) -> None:
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        self.conn = conn
        self.start = int(start)

    def _read_exact(self, nbytes: int, *, eof_ok: bool) -> bytes:
        parts = []
        got = 0
        while got < nbytes:
            piece = self.conn.recv(nbytes - got)
            if not piece:
                if eof_ok and got == 0:
                    return b""
                raise StreamIntegrityError(
                    f"socket stream truncated mid-frame: wanted {nbytes} bytes, "
                    f"got {got}"
                )
            parts.append(piece)
            got += len(piece)
        return b"".join(parts)

    def envelopes(self) -> Iterator[ChunkEnvelope]:
        """Yield one envelope per received frame until EOF."""
        sequence = self.start
        while True:
            header = self._read_exact(_FRAME_HEADER.size, eof_ok=True)
            if not header:
                return
            (count,) = _FRAME_HEADER.unpack(header)
            payload = self._read_exact(8 * count, eof_ok=False) if count else b""
            keys = np.frombuffer(payload, dtype="<i8").astype(np.int64)
            yield make_envelope(sequence, keys)
            sequence += 1


def send_frames(conn: socket.socket, chunks: Iterable) -> int:
    """Write key chunks to a socket in :class:`SocketSource` frame format.

    Returns the number of tuples sent.  The caller owns the socket and
    signals end-of-stream by closing (or shutting down) its write side.
    """
    sent = 0
    for chunk in chunks:
        keys = np.ascontiguousarray(np.atleast_1d(np.asarray(chunk)), dtype="<i8")
        conn.sendall(_FRAME_HEADER.pack(keys.size) + keys.tobytes())
        sent += int(keys.size)
    return sent


class UnionSource(Source):
    """Deterministic round-robin union of several sources.

    Member envelopes are *resealed* with fresh sequence numbers (member
    streams each start at 0, so their sequences collide); the visit
    order is fixed — one envelope from each live member per round, in
    constructor order — so a union of deterministic sources is itself
    deterministic, which keeps multi-stream joins reproducible.
    """

    name = "union"

    def __init__(self, *sources: Source, start: int = 0) -> None:
        if not sources:
            raise ConfigurationError("UnionSource needs at least one member")
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        self.sources: Sequence[Source] = tuple(sources)
        self.start = int(start)

    def envelopes(self) -> Iterator[ChunkEnvelope]:
        """Yield resealed envelopes, one per live member per round."""
        sequence = self.start
        iterators = [member.envelopes() for member in self.sources]
        while iterators:
            survivors = []
            for iterator in iterators:
                try:
                    envelope = next(iterator)
                except StopIteration:
                    continue
                yield make_envelope(sequence, envelope.keys)
                sequence += 1
                survivors.append(iterator)
            iterators = survivors
