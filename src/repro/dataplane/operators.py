"""Pipeline operators: envelope-in, envelopes-out transforms.

Operators are the middle of a :class:`~repro.dataplane.pipeline.Pipeline`.
Each receives one verified :class:`~repro.resilience.runtime.ChunkEnvelope`
and yields zero or more envelopes downstream; transforms that change the
payload *reseal* it (fresh count + CRC32, same sequence number) so the
exactly-once cursor and integrity checks keep working stage to stage.

Shipped operators:

* :class:`FilterOperator` / :class:`MapOperator` — vectorized predicate /
  transform on the tuple batch;
* :class:`ShedOperator` — Bernoulli load shedding via
  :class:`~repro.core.load_shedding.LoadShedder` (at ``p = 1`` the
  envelope passes through untouched and no RNG is consumed, preserving
  bit-identity);
* :class:`SketchUpdateOperator` / :class:`EngineOperator` — feed a raw
  sketch or an :class:`~repro.engine.statistics.OnlineStatisticsEngine`
  in passing (the envelope continues downstream unchanged);
* :class:`KeyPartitionOperator` — splitmix64 fan-out to per-shard
  branches, reusing :func:`repro.parallel.partition.shard_ids`;
* :class:`TeeOperator` — copy the stream to side targets (multi-stream
  joins: tee one stream into several sketches).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..core.load_shedding import LoadShedder
from ..errors import ConfigurationError
from ..parallel.partition import shard_ids
from ..resilience.runtime import ChunkEnvelope, make_envelope
from ..rng import SeedLike

__all__ = [
    "EngineOperator",
    "FilterOperator",
    "KeyPartitionOperator",
    "MapOperator",
    "Operator",
    "ShedOperator",
    "SketchUpdateOperator",
    "TeeOperator",
]


class Operator:
    """Base class for pipeline operators.

    :meth:`process` maps one envelope to an iterable of envelopes;
    :meth:`flush` runs at end-of-stream for operators that buffer or
    fan out (default: nothing).
    """

    #: Stage label used in ``dataplane.stage.*`` metrics.
    name = "operator"

    def process(self, envelope: ChunkEnvelope) -> Iterable[ChunkEnvelope]:
        """Transform one envelope into zero or more envelopes."""
        raise NotImplementedError

    def flush(self) -> Iterable[ChunkEnvelope]:
        """End-of-stream hook; may emit trailing envelopes."""
        return ()


class FilterOperator(Operator):
    """Keep the tuples selected by a vectorized predicate.

    *predicate* receives the batch's keys array and returns a boolean
    mask (anything :func:`np.asarray` can coerce); the surviving keys
    are resealed under the same sequence number.
    """

    name = "filter"

    def __init__(self, predicate: Callable[[np.ndarray], np.ndarray]) -> None:
        self.predicate = predicate

    def process(self, envelope: ChunkEnvelope) -> Iterator[ChunkEnvelope]:
        """Apply the mask and reseal."""
        keys = np.asarray(envelope.keys)
        mask = np.asarray(self.predicate(keys), dtype=bool)
        if mask.shape != keys.shape:
            raise ConfigurationError(
                f"filter predicate returned shape {mask.shape} for a batch "
                f"of shape {keys.shape}"
            )
        yield make_envelope(envelope.sequence, keys[mask])


class MapOperator(Operator):
    """Rewrite the batch with a vectorized transform (e.g. key projection).

    *fn* receives the keys array and returns the replacement array; the
    result is resealed under the same sequence number.
    """

    name = "map"

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray]) -> None:
        self.fn = fn

    def process(self, envelope: ChunkEnvelope) -> Iterator[ChunkEnvelope]:
        """Apply the transform and reseal."""
        yield make_envelope(envelope.sequence, self.fn(np.asarray(envelope.keys)))


class ShedOperator(Operator):
    """Bernoulli load shedding as a pipeline stage.

    Wraps a :class:`~repro.core.load_shedding.LoadShedder`; survivors
    are resealed under the same sequence number.  At ``p = 1`` the
    original envelope passes through untouched and the shedder's RNG is
    not consumed, so an unshedded pipeline stays bit-identical to one
    without the stage.  Exposes ``rate`` / ``set_rate`` / ``last_kept``,
    the duck-typed contract the pipeline's
    :class:`~repro.resilience.governor.LoadGovernor` wiring retunes.
    """

    name = "shed"

    def __init__(self, p: float = 1.0, seed: SeedLike = None) -> None:
        self.shedder = LoadShedder(p, seed)
        self.seen = 0
        self.kept = 0
        self.last_kept = 0

    @property
    def rate(self) -> float:
        """The keep-probability currently in force."""
        return self.shedder.p

    def set_rate(self, p: float) -> None:
        """Retune the keep-probability at an envelope boundary."""
        self.shedder.set_p(p)

    def process(self, envelope: ChunkEnvelope) -> Iterator[ChunkEnvelope]:
        """Shed the batch; pass through untouched at ``p = 1``."""
        keys = np.asarray(envelope.keys)
        self.seen += int(keys.size)
        if self.shedder.p >= 1.0:
            self.last_kept = int(keys.size)
            self.kept += self.last_kept
            yield envelope
            return
        survivors = self.shedder.filter(keys)
        self.last_kept = int(survivors.size)
        self.kept += self.last_kept
        yield make_envelope(envelope.sequence, survivors)


class SketchUpdateOperator(Operator):
    """Feed a sketch in passing; the envelope continues unchanged.

    *sketch* is any object with an ``update(keys)`` method — the raw
    sketches, or a shedding sketcher's ``process`` via
    :class:`~repro.dataplane.sinks.SketcherSink` when the stream should
    *end* at the sketch instead.
    """

    name = "sketch"

    def __init__(self, sketch) -> None:
        self.sketch = sketch
        self.tuples = 0

    def process(self, envelope: ChunkEnvelope) -> Iterator[ChunkEnvelope]:
        """Update the sketch with the batch, then forward the envelope."""
        keys = np.asarray(envelope.keys)
        if keys.size:
            self.sketch.update(keys)
        self.tuples += int(keys.size)
        yield envelope


class EngineOperator(Operator):
    """Feed one relation of an :class:`OnlineStatisticsEngine` in passing.

    Calls ``engine.consume(relation, keys, **consume_kwargs)`` per
    envelope and forwards the envelope unchanged — the composable form
    of the lockstep scan's inner loop.
    """

    name = "engine"

    def __init__(self, engine, relation: str, **consume_kwargs) -> None:
        self.engine = engine
        self.relation = str(relation)
        self.consume_kwargs = consume_kwargs
        self.tuples = 0

    def process(self, envelope: ChunkEnvelope) -> Iterator[ChunkEnvelope]:
        """Consume the batch into the engine, then forward the envelope."""
        keys = np.asarray(envelope.keys)
        if keys.size:
            self.engine.consume(self.relation, keys, **self.consume_kwargs)
        self.tuples += int(keys.size)
        yield envelope


class TeeOperator(Operator):
    """Copy every envelope to side targets, then forward it downstream.

    Targets are sinks or :class:`~repro.dataplane.pipeline.Branch`
    sub-chains (anything with ``accept``/``flush``) — the building block
    for multi-stream joins, where one physical stream feeds several
    logical consumers.
    """

    name = "tee"

    def __init__(self, *targets) -> None:
        if not targets:
            raise ConfigurationError("TeeOperator needs at least one target")
        self.targets: Sequence = tuple(targets)

    def process(self, envelope: ChunkEnvelope) -> Iterator[ChunkEnvelope]:
        """Deliver to every target, then forward the original envelope."""
        for target in self.targets:
            target.accept(envelope)
        yield envelope

    def flush(self) -> Iterator[ChunkEnvelope]:
        """Flush every target at end-of-stream."""
        for target in self.targets:
            target.flush()
        return iter(())


class KeyPartitionOperator(Operator):
    """splitmix64 fan-out: route each tuple to a per-shard branch.

    Shard assignment reuses :func:`repro.parallel.partition.shard_ids`
    (the sharded engine's partitioner), so a pipeline partition is
    bit-compatible with an offline sharded scan.  Every branch receives
    an envelope for *every* sequence — empty when no tuples landed on
    its shard — keeping per-branch cursors contiguous.  The original
    envelope is forwarded downstream unchanged.
    """

    name = "partition"

    def __init__(self, branches: Sequence) -> None:
        if not branches:
            raise ConfigurationError(
                "KeyPartitionOperator needs at least one branch"
            )
        self.branches: Sequence = tuple(branches)

    def process(self, envelope: ChunkEnvelope) -> Iterator[ChunkEnvelope]:
        """Partition the batch, deliver per-shard envelopes, forward."""
        keys = np.asarray(envelope.keys)
        shards = len(self.branches)
        assignment = (
            shard_ids(keys, shards) if keys.size else np.empty(0, dtype=np.int64)
        )
        for shard, branch in enumerate(self.branches):
            branch.accept(
                make_envelope(envelope.sequence, keys[assignment == shard])
            )
        yield envelope

    def flush(self) -> Iterator[ChunkEnvelope]:
        """Flush every branch at end-of-stream."""
        for branch in self.branches:
            branch.flush()
        return iter(())
