"""Sketch substrate: AGMS, F-AGMS (Count-Sketch), and Count-Min.

Sketches summarize *all* tuples of a stream into a small array of counters
using random hash/±1 families (Section IV of the paper).  The two families
the paper analyzes and uses:

* :class:`AgmsSketch` — the basic AGMS (a.k.a. tug-of-war / AMS) sketch of
  refs [1], [2]: ``rows`` independent ±1 counters, estimates combined by
  averaging (optionally median-of-means).  Every tuple touches every
  counter, so update cost is ``O(rows)``.
* :class:`FagmsSketch` — the Fast-AGMS sketch of refs [3], [4] (identical
  to Count-Sketch): ``rows × buckets`` counters; each tuple touches one
  bucket per row, so update cost is ``O(rows)`` with ``rows`` small (the
  paper: 1 row of 5,000–10,000 buckets, "equivalent to averaging 5,000 or
  10,000 basic estimators"); row estimates combined by the median.
* :class:`CountMinSketch` — included for comparison/ablation: same bucket
  layout but non-negative counters and an upper-bound join estimate.

All sketches are *linear*: ``sketch(F ∪ G) = sketch(F) + sketch(G)`` when
built with the same seeds — exposed as :meth:`merge`.  Two sketches built
with the same seed share their hash/ξ families and can be combined with
:func:`join_size`; :func:`self_join_size` estimates ``F₂``.
"""

from .agms import AgmsSketch
from .base import Sketch, join_size, self_join_size
from .countmin import CountMinSketch
from .fagms import FagmsSketch
from .diagnostics import ContentionReport, bucket_occupancy, contention_report, row_spread
from .serialization import load_sketch, save_sketch

__all__ = [
    "Sketch",
    "AgmsSketch",
    "FagmsSketch",
    "CountMinSketch",
    "join_size",
    "self_join_size",
    "save_sketch",
    "load_sketch",
    "bucket_occupancy",
    "ContentionReport",
    "contention_report",
    "row_spread",
]
