"""Saving and loading sketches.

A sketch is a pair (random families, counters).  The families are fully
determined by the construction seed, so persisting a sketch means storing
the constructor parameters, the root seed entropy, and the counter array.
Two processes that load the same file obtain *compatible* sketches — they
can be merged and their inner products are meaningful — which is the whole
point of sketch linearity in distributed settings (each site sketches its
own partition, a coordinator merges).

Format: a single ``.npz`` with a JSON-encoded header plus the counters.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import ConfigurationError
from .agms import AgmsSketch
from .base import Sketch
from .countmin import CountMinSketch
from .fagms import FagmsSketch

__all__ = ["save_sketch", "load_sketch"]

_FORMAT_VERSION = 1


def _header(sketch: Sketch) -> dict:
    header = {
        "version": _FORMAT_VERSION,
        "type": type(sketch).__name__,
        "rows": sketch.rows,
        "seed_entropy": _encode_entropy(sketch.seed_entropy),
        "spawn_key": [int(k) for k in getattr(sketch, "seed_spawn_key", ())],
    }
    if isinstance(sketch, (AgmsSketch, FagmsSketch)):
        header["sign_family"] = sketch.sign_family
        header["combine"] = sketch.combine
        header["groups"] = sketch.groups
    if isinstance(sketch, (FagmsSketch, CountMinSketch)):
        header["buckets"] = sketch.buckets
    return header


def _encode_entropy(entropy) -> list:
    if entropy is None:
        raise ConfigurationError("sketch has no stored seed entropy")
    if isinstance(entropy, int):
        return [entropy]
    return [int(e) for e in entropy]


def _decode_entropy(values: list) -> Union[int, tuple]:
    if len(values) == 1:
        return values[0]
    return tuple(values)


def save_sketch(sketch: Sketch, path) -> None:
    """Persist *sketch* (families + counters) to an ``.npz`` file."""
    path = Path(path)
    np.savez(
        path,
        header=np.frombuffer(
            json.dumps(_header(sketch)).encode("utf-8"), dtype=np.uint8
        ),
        counters=sketch._state(),
    )


def load_sketch(path) -> Sketch:
    """Load a sketch saved by :func:`save_sketch`.

    The reconstructed sketch is byte-identical in state and *compatible*
    (same families) with the original and with any sketch built from the
    same seed.
    """
    path = Path(path)
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        counters = data["counters"]
    if header.get("version") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported sketch file version {header.get('version')!r}"
        )
    seed = np.random.SeedSequence(
        _decode_entropy(header["seed_entropy"]),
        spawn_key=tuple(header.get("spawn_key", ())),
    )
    sketch_type = header["type"]
    if sketch_type == "AgmsSketch":
        sketch = AgmsSketch(
            header["rows"],
            seed,
            sign_family=header["sign_family"],
            combine=header["combine"],
            groups=header["groups"],
        )
    elif sketch_type == "FagmsSketch":
        sketch = FagmsSketch(
            header["buckets"],
            header["rows"],
            seed,
            sign_family=header["sign_family"],
            combine=header["combine"],
            groups=header["groups"],
        )
    elif sketch_type == "CountMinSketch":
        sketch = CountMinSketch(header["buckets"], header["rows"], seed)
    else:
        raise ConfigurationError(f"unknown sketch type {sketch_type!r}")
    sketch._state()[...] = counters
    return sketch
