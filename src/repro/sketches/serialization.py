"""Saving and loading sketches.

A sketch is a pair (random families, counters).  The families are fully
determined by the construction seed, so persisting a sketch means storing
the constructor parameters, the root seed entropy, and the counter array.
Two processes that load the same file obtain *compatible* sketches — they
can be merged and their inner products are meaningful — which is the whole
point of sketch linearity in distributed settings (each site sketches its
own partition, a coordinator merges).

Format: a single ``.npz`` with a JSON-encoded header plus the counters.

Loading validates everything before any state is constructed: the archive
must open, the header must decode as JSON with the required fields of the
right types, and the counter payload must match the shape/dtype the header
implies.  Every violation raises :class:`~repro.errors.SerializationError`
(a :class:`~repro.errors.ConfigurationError` subclass) instead of an opaque
``KeyError``/``BadZipFile``/numpy broadcast error — truncated or tampered
files fail loudly and typed.  The header-building and reconstruction
halves are exposed as :func:`sketch_header` / :func:`build_sketch` so the
checkpoint layer (:mod:`repro.resilience.checkpoint`) can embed sketches
in its own durable manifests using the same format.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import SerializationError
from .agms import AgmsSketch
from .base import Sketch
from .countmin import CountMinSketch
from .fagms import FagmsSketch

__all__ = [
    "save_sketch",
    "load_sketch",
    "sketch_header",
    "build_sketch",
    "expected_state_shape",
]

_FORMAT_VERSION = 1

#: Required header fields and the types their JSON values must carry.
_REQUIRED_FIELDS = {
    "version": int,
    "type": str,
    "rows": int,
    "seed_entropy": list,
}


def sketch_header(sketch: Sketch) -> dict:
    """JSON-serializable description of a sketch's families and shape.

    Together with the counter array returned by ``sketch._state()`` this
    fully determines the sketch; :func:`build_sketch` inverts it.
    """
    header = {
        "version": _FORMAT_VERSION,
        "type": type(sketch).__name__,
        "rows": sketch.rows,
        "seed_entropy": _encode_entropy(sketch.seed_entropy),
        "spawn_key": [int(k) for k in getattr(sketch, "seed_spawn_key", ())],
    }
    if isinstance(sketch, (AgmsSketch, FagmsSketch)):
        header["sign_family"] = sketch.sign_family
        header["combine"] = sketch.combine
        header["groups"] = sketch.groups
    if isinstance(sketch, (FagmsSketch, CountMinSketch)):
        header["buckets"] = sketch.buckets
    return header


def _encode_entropy(entropy) -> list:
    if entropy is None:
        raise SerializationError("sketch has no stored seed entropy")
    if isinstance(entropy, int):
        return [entropy]
    return [int(e) for e in entropy]


def _decode_entropy(values: list) -> Union[int, tuple]:
    if len(values) == 1:
        return values[0]
    return tuple(values)


def _require(header: dict, field: str, kind: type):
    """Fetch a typed header field, raising a typed error when absent/wrong."""
    if field not in header:
        raise SerializationError(f"sketch header is missing field {field!r}")
    value = header[field]
    # bool is an int subclass; reject it for integer fields explicitly.
    if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
        raise SerializationError(
            f"sketch header field {field!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _validate_header(header: dict) -> None:
    for field, kind in _REQUIRED_FIELDS.items():
        _require(header, field, kind)
    if header["version"] != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported sketch file version {header['version']!r}"
        )
    entropy = header["seed_entropy"]
    if not entropy or not all(
        isinstance(e, int) and not isinstance(e, bool) for e in entropy
    ):
        raise SerializationError("sketch header seed_entropy must be a list of ints")
    if header["rows"] < 1:
        raise SerializationError(f"sketch header rows must be >= 1, got {header['rows']}")


def expected_state_shape(header: dict) -> tuple:
    """The counter-array shape implied by a (validated) sketch header."""
    sketch_type = _require(header, "type", str)
    rows = _require(header, "rows", int)
    if sketch_type == "AgmsSketch":
        return (rows,)
    if sketch_type in ("FagmsSketch", "CountMinSketch"):
        return (rows, _require(header, "buckets", int))
    raise SerializationError(f"unknown sketch type {sketch_type!r}")


def build_sketch(header: dict) -> Sketch:
    """Reconstruct a zeroed sketch (families only) from a header dict.

    The header is fully validated; any structural problem raises
    :class:`~repro.errors.SerializationError`.  Counters are left at zero —
    the caller fills them after validating the payload against
    :func:`expected_state_shape`.
    """
    _validate_header(header)
    seed = np.random.SeedSequence(
        _decode_entropy(header["seed_entropy"]),
        spawn_key=tuple(header.get("spawn_key", ())),
    )
    sketch_type = header["type"]
    if sketch_type == "AgmsSketch":
        return AgmsSketch(
            header["rows"],
            seed,
            sign_family=_require(header, "sign_family", str),
            combine=_require(header, "combine", str),
            groups=_require(header, "groups", int),
        )
    if sketch_type == "FagmsSketch":
        return FagmsSketch(
            _require(header, "buckets", int),
            header["rows"],
            seed,
            sign_family=_require(header, "sign_family", str),
            combine=_require(header, "combine", str),
            groups=_require(header, "groups", int),
        )
    if sketch_type == "CountMinSketch":
        return CountMinSketch(_require(header, "buckets", int), header["rows"], seed)
    raise SerializationError(f"unknown sketch type {sketch_type!r}")


def save_sketch(sketch: Sketch, path) -> None:
    """Persist *sketch* (families + counters) to an ``.npz`` file."""
    path = Path(path)
    np.savez(
        path,
        header=np.frombuffer(
            json.dumps(sketch_header(sketch)).encode("utf-8"), dtype=np.uint8
        ),
        counters=sketch._state(),
    )


def load_sketch(path) -> Sketch:
    """Load a sketch saved by :func:`save_sketch`.

    The reconstructed sketch is byte-identical in state and *compatible*
    (same families) with the original and with any sketch built from the
    same seed.  Truncated, tampered, or otherwise malformed files raise
    :class:`~repro.errors.SerializationError`.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            if "header" not in data or "counters" not in data:
                raise SerializationError(
                    f"{path} is not a sketch file (missing header/counters entries)"
                )
            raw_header = bytes(data["header"])
            counters = data["counters"]
    except (
        OSError,
        zipfile.BadZipFile,
        ValueError,
        EOFError,
        KeyError,
        # corrupt zip directory fields surface as NotImplementedError
        NotImplementedError,
    ) as exc:
        if isinstance(exc, SerializationError):
            raise
        raise SerializationError(f"cannot read sketch file {path}: {exc}") from exc
    try:
        header = json.loads(raw_header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"sketch file {path} has an undecodable header: {exc}"
        ) from exc
    if not isinstance(header, dict):
        raise SerializationError(f"sketch file {path} header is not a JSON object")
    sketch = build_sketch(header)
    state = sketch._state()
    if tuple(counters.shape) != tuple(state.shape):
        raise SerializationError(
            f"sketch file {path} counter shape {tuple(counters.shape)} does not "
            f"match the header's {tuple(state.shape)}"
        )
    if not np.issubdtype(counters.dtype, np.number) or np.issubdtype(
        counters.dtype, np.complexfloating
    ):
        raise SerializationError(
            f"sketch file {path} counters have non-numeric dtype {counters.dtype}"
        )
    state[...] = counters
    return sketch
