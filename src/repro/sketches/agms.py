"""The basic AGMS (AMS / tug-of-war) sketch — refs [1], [2] of the paper.

One basic AGMS estimator keeps a single counter ``S = Σᵢ fᵢ ξᵢ`` where ξ is
a 4-wise independent ±1 family (Eq. 12).  Then (Props 7–8):

* ``S_F · S_G``   is unbiased for the size of join ``Σᵢ fᵢ gᵢ``;
* ``S²``          is unbiased for the self-join size ``Σᵢ fᵢ²``;

with the variances given by Eqs. 14 and 16.  A practical sketch keeps
``rows`` independent counters (independent ξ families) and combines the
basic estimates (see :mod:`._combine`).

Update cost is ``O(rows)`` *per tuple* — every counter is touched — which
is exactly the cost the paper's load-shedding application (Section VI-A)
seeks to amortize by sketching a sample.  For bulk updates this class
evaluates the ξ families over the whole key batch at once.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..hashing import EH3SignFamily, FourWiseSignFamily, SignFamily
from ..kernels import get_backend
from ..rng import SeedLike, as_seed_sequence, derive_seed
from ._combine import combine_estimates, validate_combine
from .base import Sketch

__all__ = ["AgmsSketch"]

_SIGN_FAMILIES = {"fourwise": FourWiseSignFamily, "eh3": EH3SignFamily}


class AgmsSketch(Sketch):
    """Array of ``rows`` basic AGMS estimators.

    Parameters
    ----------
    rows:
        Number of independent basic estimators.  Variance of the combined
        estimate over a full stream falls as ``1/rows`` (mean combining).
    seed:
        Seed for the ξ families.  Two sketches that must be compared
        (:meth:`inner_product`) or merged must be built with the same seed.
    sign_family:
        ``"fourwise"`` (degree-3 polynomial, the analyzed construction) or
        ``"eh3"`` (3-wise, faster; the practical recommendation of the
        paper's ref [17]).
    combine:
        ``"mean"`` (default, matches the paper's averaging analysis),
        ``"median"``, or ``"median-of-means"`` with ``groups`` groups.
    """

    __slots__ = (
        "rows",
        "seed_id",
        "seed_entropy",
        "seed_spawn_key",
        "sign_family",
        "combine",
        "groups",
        "_counters",
        "_signs",
        "_scratch",
    )

    def __init__(
        self,
        rows: int,
        seed: SeedLike = None,
        *,
        sign_family: str = "fourwise",
        combine: str = "mean",
        groups: int = 1,
    ) -> None:
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        if sign_family not in _SIGN_FAMILIES:
            raise ConfigurationError(
                f"unknown sign_family {sign_family!r}; "
                f"expected one of {tuple(_SIGN_FAMILIES)}"
            )
        validate_combine(combine, rows, groups)
        root = as_seed_sequence(seed)
        self.rows = rows
        self.seed_id = derive_seed(root)
        self.seed_entropy = root.entropy
        self.seed_spawn_key = tuple(root.spawn_key)
        self.sign_family = sign_family
        self.combine = combine
        self.groups = groups
        self._signs: SignFamily = _SIGN_FAMILIES[sign_family](rows, root.spawn(1)[0])
        self._counters = np.zeros(rows, dtype=np.float64)
        self._scratch = np.empty(rows, dtype=np.float64)

    # ------------------------------------------------------------------

    @property
    def counters(self) -> np.ndarray:
        """The raw counter vector ``Sₖ`` (read for inspection, not mutation)."""
        return self._counters

    def update(self, keys, weights=None) -> None:
        keys, weights = self._normalize_batch(keys, weights)
        if keys.size == 0:
            return
        signs = self._signs.evaluate_all(keys)  # (rows, n) of ±1
        backend = get_backend()
        if weights is None:
            self._counters += backend.sign_sum(signs)
        else:
            # One matmul into the preallocated buffer — no per-chunk
            # temporary beyond the float view of the signs.
            self._counters += backend.sign_dot(signs, weights, out=self._scratch)

    # ------------------------------------------------------------------

    def row_second_moments(self) -> np.ndarray:
        """Per-row basic self-join estimates ``Sₖ²`` (Prop 8, before combining)."""
        return self._counters**2

    def row_inner_products(self, other: "AgmsSketch") -> np.ndarray:
        """Per-row basic join estimates ``Sₖ·Tₖ`` (Prop 7, before combining)."""
        self.check_compatible(other)
        return self._counters * other._counters

    def second_moment(self) -> float:
        return combine_estimates(self.row_second_moments(), self.combine, self.groups)

    def inner_product(self, other: Sketch) -> float:
        if not isinstance(other, AgmsSketch):
            raise TypeError("inner_product requires another AgmsSketch")
        return combine_estimates(
            self.row_inner_products(other), self.combine, self.groups
        )

    def estimate_frequencies(self, keys) -> np.ndarray:
        """Unbiased point-frequency estimates for a batch of keys.

        Per row, ``ξ(key)·S`` is unbiased for ``f_key`` (cross terms cancel
        in expectation); rows are combined by the configured combiner.
        Variance per row is ``F₂ − f_key²`` — much noisier than F-AGMS
        point queries at equal budget, included for completeness.
        """
        keys = np.asarray(keys, dtype=np.int64)
        signs = self._signs(keys).astype(np.float64)  # (rows, n)
        estimates = signs * self._counters[:, None]
        return np.array(
            [
                combine_estimates(estimates[:, j], self.combine, self.groups)
                for j in range(keys.size)
            ]
        )

    def point_estimate(self, key: int) -> float:
        """Unbiased estimate of a single key's frequency."""
        return float(self.estimate_frequencies(np.asarray([key]))[0])

    # ------------------------------------------------------------------

    def copy_empty(self) -> "AgmsSketch":
        clone = object.__new__(AgmsSketch)
        clone.rows = self.rows
        clone.seed_id = self.seed_id
        clone.seed_entropy = self.seed_entropy
        clone.seed_spawn_key = self.seed_spawn_key
        clone.sign_family = self.sign_family
        clone.combine = self.combine
        clone.groups = self.groups
        clone._signs = self._signs  # immutable family, safe to share
        clone._counters = np.zeros(self.rows, dtype=np.float64)
        clone._scratch = np.empty(self.rows, dtype=np.float64)
        return clone

    def _state(self) -> np.ndarray:
        return self._counters

    def _fused_descriptor(self):
        """This sketch's entry for :func:`repro.kernels.fused.fused_update`."""
        from ..kernels.fused import FusedEntry

        if self.sign_family == "fourwise":
            return FusedEntry(
                kind="agms",
                counters=self._counters,
                rows=self.rows,
                sign_kind="poly",
                sign_coefficients=self._signs._family.coefficients,
                sign_family=self._signs,
                scratch=self._scratch,
            )
        return FusedEntry(
            kind="agms",
            counters=self._counters,
            rows=self.rows,
            sign_kind="eh3",
            sign_family=self._signs,
            scratch=self._scratch,
            key_bound=min(2**31 - 1, 2**self._signs.bits),
        )

    def _family_fingerprint(self) -> tuple:
        return super()._family_fingerprint() + (self.sign_family,)

    def __repr__(self) -> str:
        return (
            f"AgmsSketch(rows={self.rows}, combine={self.combine!r}, "
            f"seed_id={self.seed_id})"
        )
