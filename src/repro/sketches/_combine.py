"""Combining per-row basic estimates into a single sketch estimate.

A sketch holds ``rows`` independent basic estimators.  The classic ways to
combine them (Section IV / refs [1], [2]):

* ``mean`` — average all rows; variance drops by the number of rows (for
  sketches over full streams; Props 11–12 quantify the weaker improvement
  over samples).
* ``median`` — median of the rows; turns Chebyshev bounds into
  exponentially small failure probability, and is the standard combiner for
  F-AGMS rows (ref [3]).
* ``median-of-means`` — partition rows into groups, average within groups,
  take the median of group means; the textbook (ε, δ) estimator.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["combine_estimates", "validate_combine"]

_METHODS = ("mean", "median", "median-of-means")


def validate_combine(method: str, rows: int, groups: int) -> None:
    """Validate a combining configuration at sketch-construction time."""
    if method not in _METHODS:
        raise ConfigurationError(
            f"unknown combine method {method!r}; expected one of {_METHODS}"
        )
    if groups < 1:
        raise ConfigurationError(f"groups must be >= 1, got {groups}")
    if method == "median-of-means":
        if rows % groups != 0:
            raise ConfigurationError(
                f"median-of-means needs rows divisible by groups: "
                f"rows={rows}, groups={groups}"
            )
    elif groups != 1:
        raise ConfigurationError(
            f"groups={groups} only makes sense with combine='median-of-means'"
        )


def combine_estimates(values: np.ndarray, method: str, groups: int = 1) -> float:
    """Collapse per-row estimates into one number.

    *values* is the 1-D array of basic estimates (one per row); *method*
    and *groups* as validated by :func:`validate_combine`.
    """
    if values.ndim != 1 or values.size == 0:
        raise ConfigurationError(
            f"expected a non-empty 1-D estimate array, got shape {values.shape}"
        )
    if method == "mean":
        return float(values.mean())
    if method == "median":
        return float(np.median(values))
    group_means = values.reshape(groups, -1).mean(axis=1)
    return float(np.median(group_means))
