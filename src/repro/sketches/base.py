"""Common sketch interface and the top-level estimation entry points.

Every sketch in the library implements :class:`Sketch`:

* ``update(keys, weights=None)`` — vectorized insertion of a batch of
  stream keys (weights default to +1 per tuple; negative weights implement
  deletions, since all our sketches are linear);
* ``update_frequency_vector(fv)`` — fast path that inserts a whole
  frequency vector at once (equivalent to inserting every tuple, but
  ``O(support)`` instead of ``O(tuples)``);
* ``merge(other)`` — linearity: add a compatible sketch in place;
* ``second_moment()`` — the sketch's estimate of ``Σᵢ fᵢ²`` of whatever
  was inserted;
* ``inner_product(other)`` — the sketch's estimate of ``Σᵢ fᵢ gᵢ`` against
  a compatible sketch of another stream.

Compatibility means: same class, same shape, and the same ``seed`` (hence
identical hash/ξ families) — checked by :meth:`Sketch.check_compatible`.
The free functions :func:`join_size` and :func:`self_join_size` are thin
readable wrappers used throughout examples and experiments.

Note the estimates returned here are estimates over *whatever was
inserted*.  When the inserted stream is a sample, the unbiasing corrections
of the paper (Section V) live in :mod:`repro.core.corrections`, not here —
sketches are agnostic about how their input was produced.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..errors import DomainError, IncompatibleSketchError, MergeError
from ..frequency import FrequencyVector

__all__ = ["Sketch", "join_size", "self_join_size"]


class Sketch(abc.ABC):
    """Abstract base class for linear stream sketches."""

    #: Number of independent basic estimators (rows) in the sketch.
    rows: int
    #: Integer seed identifying the random families (for compatibility).
    seed_id: int

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def update(self, keys, weights=None) -> None:
        """Insert a batch of stream keys.

        Parameters
        ----------
        keys:
            1-D integer array of domain values, one per tuple.
        weights:
            Optional per-tuple weights (default +1 each).  Integer or float;
            negative values delete.
        """

    def update_one(self, key: int, weight: float = 1.0) -> None:
        """Insert a single tuple (convenience wrapper over :meth:`update`)."""
        self.update(np.asarray([key], dtype=np.int64), np.asarray([weight]))

    def update_frequency_vector(self, frequencies: FrequencyVector) -> None:
        """Insert an entire frequency vector in one shot.

        Exactly equivalent to inserting every tuple individually (sketches
        are linear), but costs ``O(support size)``.
        """
        support = np.flatnonzero(frequencies.counts)
        if support.size == 0:
            return
        self.update(support, frequencies.counts[support])

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def second_moment(self) -> float:
        """Estimate ``Σᵢ fᵢ²`` of the inserted stream."""

    @abc.abstractmethod
    def inner_product(self, other: "Sketch") -> float:
        """Estimate ``Σᵢ fᵢ gᵢ`` between this sketch's stream and *other*'s."""

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def copy_empty(self) -> "Sketch":
        """A fresh zeroed sketch sharing this sketch's families and shape."""

    @abc.abstractmethod
    def _state(self) -> np.ndarray:
        """The counter array (mutable reference, internal)."""

    def _adopt_state(self, array: np.ndarray) -> None:
        """Take *array* as the counter storage, discarding current counters.

        The sharded scan workers hand each sketch a zero-initialized view
        into a shared-memory segment so updates land directly in the
        transport buffer — no result pickling.  *array* must match the
        current state's shape and dtype and be C-contiguous (the native
        backend scatters through raw pointers).  Any
        :class:`~repro.kernels.fused.FusedPlan` built before the swap
        still references the old storage and must be rebuilt.
        """
        state = self._state()
        if array.shape != state.shape or array.dtype != state.dtype:
            raise DomainError(
                f"adopted state must be {state.shape} {state.dtype}, got "
                f"{array.shape} {array.dtype}"
            )
        if not array.flags.c_contiguous:
            raise DomainError("adopted state must be C-contiguous")
        self._counters = array

    def _bind_state(self, array: np.ndarray) -> None:
        """Move the current counters into *array* and adopt it as storage."""
        values = self._state().copy()
        self._adopt_state(array)
        self._state()[...] = values

    def counters_snapshot(self) -> np.ndarray:
        """A frozen copy of the counter state.

        The returned array is read-only (``writeable = False``) and
        detached from the sketch's live storage, so it can be published
        to concurrent readers — or handed to a checkpoint writer — and
        stays valid no matter how the sketch is updated afterwards.
        """
        frozen = self._state().copy()
        frozen.flags.writeable = False
        return frozen

    def load_counters(self, array: np.ndarray) -> None:
        """Overwrite the counter state from *array* (shape-validated).

        The public inverse of :meth:`counters_snapshot`: restores a
        sketch from externally-held counters (e.g. a checkpoint) without
        reaching into ``_state()``.  *array* is copied in, so the caller's
        buffer — writable or not — is never aliased.
        """
        state = self._state()
        if tuple(array.shape) != tuple(state.shape):
            raise DomainError(
                f"loaded counters must have shape {state.shape}, got {array.shape}"
            )
        state[...] = np.asarray(array).astype(state.dtype, copy=False)

    def copy(self) -> "Sketch":
        """Deep copy (same families, duplicated counters)."""
        clone = self.copy_empty()
        clone._state()[...] = self._state()
        return clone

    def clear(self) -> None:
        """Reset all counters to zero."""
        self._state()[...] = 0

    def merge(self, other: "Sketch") -> None:
        """Add *other* into this sketch in place (multiset union of streams).

        Raises :class:`~repro.errors.MergeError` unless *other* passes the
        full mergeability validation of :meth:`check_mergeable` — merging
        sketches whose hash families differ would silently corrupt every
        later estimate, so the check is strict.
        """
        self.check_mergeable(other)
        self._state()[...] += other._state()

    def check_mergeable(self, other: "Sketch") -> None:
        """Raise :class:`~repro.errors.MergeError` unless *other* can be merged.

        Validates, in order: the concrete sketch type, the counter-array
        shape, the derived seed id, and the full hash-family fingerprint
        (root seed entropy, spawn key, and any family kind the subclass
        declares via :meth:`_family_fingerprint`).  The fingerprint check
        catches mismatches the cheap ``seed_id`` comparison cannot — e.g.
        two sketches built from the same seed but with different sign
        families occupy identical shapes yet hash keys differently.
        """
        if type(self) is not type(other):
            raise MergeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if self._state().shape != other._state().shape:
            raise MergeError(
                f"sketch shapes differ: {self._state().shape} vs "
                f"{other._state().shape}"
            )
        if self.seed_id != other.seed_id:
            raise MergeError(
                "sketches were built with different seeds (different random "
                "families); merging them would produce garbage counters"
            )
        if self._family_fingerprint() != other._family_fingerprint():
            raise MergeError(
                "sketches share a seed id but not a hash-family construction "
                f"({self._family_fingerprint()} vs {other._family_fingerprint()}); "
                "merging them would produce garbage counters"
            )

    def _family_fingerprint(self) -> tuple:
        """Hashable description of the random-family construction.

        Subclasses extend this with whatever else determines their hash
        families (e.g. the sign-family kind); two sketches are mergeable
        only when their fingerprints compare equal.
        """
        entropy = getattr(self, "seed_entropy", None)
        if isinstance(entropy, list):
            entropy = tuple(entropy)
        return (entropy, tuple(getattr(self, "seed_spawn_key", ())))

    def check_compatible(self, other: "Sketch") -> None:
        """Raise unless *other* shares this sketch's type, shape, and seeds."""
        if type(self) is not type(other):
            raise IncompatibleSketchError(
                f"cannot combine {type(self).__name__} with {type(other).__name__}"
            )
        if self._state().shape != other._state().shape:
            raise IncompatibleSketchError(
                f"sketch shapes differ: {self._state().shape} vs "
                f"{other._state().shape}"
            )
        if self.seed_id != other.seed_id:
            raise IncompatibleSketchError(
                "sketches were built with different seeds (different random "
                "families); estimates across them are meaningless"
            )

    # ------------------------------------------------------------------
    # Shared validation helper
    # ------------------------------------------------------------------

    @staticmethod
    def _normalize_batch(keys, weights) -> tuple[np.ndarray, Optional[np.ndarray]]:
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise DomainError(f"keys must be 1-D, got shape {keys.shape}")
        if keys.size and not np.issubdtype(keys.dtype, np.integer):
            raise DomainError("sketch keys must be integers")
        keys = keys.astype(np.int64, copy=False)
        if weights is None:
            return keys, None
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != keys.shape:
            raise DomainError(
                f"weights shape {weights.shape} does not match keys {keys.shape}"
            )
        return keys, weights


def join_size(sketch_f: Sketch, sketch_g: Sketch) -> float:
    """Estimate ``|F ⋈ G| = Σᵢ fᵢ gᵢ`` from two compatible sketches.

    This is the *plain* sketch estimator (Prop 7 for AGMS).  If the sketched
    streams are samples, apply the scaling correction from
    :mod:`repro.core.corrections` to the returned value.
    """
    return sketch_f.inner_product(sketch_g)


def self_join_size(sketch: Sketch) -> float:
    """Estimate the second frequency moment ``F₂ = Σᵢ fᵢ²`` from a sketch.

    This is the plain sketch estimator (Prop 8 for AGMS); see
    :func:`join_size` about sampled inputs.
    """
    return sketch.second_moment()
