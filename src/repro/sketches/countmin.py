"""Count-Min sketch — comparison baseline for the ablation benches.

Count-Min (Cormode & Muthukrishnan) uses the same ``rows × buckets`` layout
as F-AGMS but *without* the ±1 signs: every tuple adds +1 to one bucket per
row, and estimates take minima instead of medians.  It is included because
the paper's ref [4] (Rusu & Dobra, SIGMOD 2007) compares sketching
techniques and because it makes a useful ablation: it shows what the ±1
families buy.

Properties (for non-negative streams):

* point frequency estimates are upper bounds: ``f̂ᵢ ≥ fᵢ`` always, with
  overestimate at most ``ε·F₁`` w.h.p. for ``buckets = e/ε``;
* the inner-product estimate ``min_row Σ_b S_F·S_G`` likewise upper-bounds
  the true size of join;
* unlike AGMS/F-AGMS it is biased — which is exactly why the paper's
  unbiasedness-based sampling corrections do not compose with it.  The
  class raises on :meth:`second_moment` to make that explicit.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, EstimationError
from ..hashing import BucketHashFamily
from ..kernels import get_backend
from ..rng import SeedLike, as_seed_sequence, derive_seed
from .base import Sketch

__all__ = ["CountMinSketch"]


class CountMinSketch(Sketch):
    """Count-Min sketch with ``rows`` rows of ``buckets`` counters."""

    __slots__ = (
        "rows",
        "buckets",
        "seed_id",
        "seed_entropy",
        "seed_spawn_key",
        "_counters",
        "_bucket_hash",
    )

    def __init__(self, buckets: int, rows: int = 3, seed: SeedLike = None) -> None:
        if buckets < 1:
            raise ConfigurationError(f"buckets must be >= 1, got {buckets}")
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        root = as_seed_sequence(seed)
        self.rows = rows
        self.buckets = buckets
        self.seed_id = derive_seed(root)
        self.seed_entropy = root.entropy
        self.seed_spawn_key = tuple(root.spawn_key)
        self._bucket_hash = BucketHashFamily(buckets, rows, root.spawn(1)[0])
        self._counters = np.zeros((rows, buckets), dtype=np.float64)

    # ------------------------------------------------------------------

    @property
    def counters(self) -> np.ndarray:
        """The ``(rows, buckets)`` counter matrix (inspection only)."""
        return self._counters

    def update(self, keys, weights=None) -> None:
        keys, weights = self._normalize_batch(keys, weights)
        if keys.size == 0:
            return
        indices = self._bucket_hash.evaluate_all(keys)
        get_backend().scatter_add(self._counters, indices, weights)

    # ------------------------------------------------------------------

    def point_estimate(self, key: int) -> float:
        """Upper-bound estimate of the frequency of *key* (min over rows)."""
        keys = np.asarray([key], dtype=np.int64)
        indices = self._bucket_hash.evaluate_all(keys)
        return float(get_backend().gather(self._counters, indices).min())

    def inner_product(self, other: Sketch) -> float:
        """Upper-bound estimate of ``Σᵢ fᵢ gᵢ`` (min over rows)."""
        if not isinstance(other, CountMinSketch):
            raise TypeError("inner_product requires another CountMinSketch")
        self.check_compatible(other)
        return float((self._counters * other._counters).sum(axis=1).min())

    def second_moment(self) -> float:
        """Not supported: the Count-Min F₂ 'estimate' is biased upward.

        Raising keeps callers from silently composing it with the paper's
        unbiasedness-based sampling corrections.
        """
        raise EstimationError(
            "CountMinSketch does not provide an unbiased second-moment "
            "estimate; use AgmsSketch or FagmsSketch"
        )

    # ------------------------------------------------------------------

    def copy_empty(self) -> "CountMinSketch":
        clone = object.__new__(CountMinSketch)
        clone.rows = self.rows
        clone.buckets = self.buckets
        clone.seed_id = self.seed_id
        clone.seed_entropy = self.seed_entropy
        clone.seed_spawn_key = self.seed_spawn_key
        clone._bucket_hash = self._bucket_hash
        clone._counters = np.zeros((self.rows, self.buckets), dtype=np.float64)
        return clone

    def _state(self) -> np.ndarray:
        return self._counters

    def _fused_descriptor(self):
        """This sketch's entry for :func:`repro.kernels.fused.fused_update`."""
        from ..kernels.fused import FusedEntry

        return FusedEntry(
            kind="countmin",
            counters=self._counters,
            rows=self.rows,
            buckets=self.buckets,
            bucket_coefficients=self._bucket_hash._family.coefficients,
        )

    def __repr__(self) -> str:
        return (
            f"CountMinSketch(buckets={self.buckets}, rows={self.rows}, "
            f"seed_id={self.seed_id})"
        )
