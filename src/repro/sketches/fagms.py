"""The Fast-AGMS sketch (Count-Sketch) — refs [3], [4] of the paper.

F-AGMS keeps ``rows × buckets`` counters.  Each row has a 2-universal hash
``h`` spreading keys over buckets and an independent ±1 family ξ; a tuple
with key ``i`` adds ``ξ(i)`` to counter ``[row, h(i)]``.  Per row:

* size of join:   ``Σ_b S_F[row, b] · S_G[row, b]``
* self-join size: ``Σ_b S[row, b]²``

Each row behaves like ``buckets`` averaged AGMS estimators at the cost of a
*single* counter update per tuple — this is why the paper uses F-AGMS with
5,000–10,000 buckets for all experiments ("equivalent to averaging 5,000 or
10,000 basic estimators").  Rows are combined with the median (default).

The paper's Section VII-D documents an F-AGMS quirk this implementation
reproduces: when the sketched multiset grows (e.g. sketching 100% of a
stream instead of a 10% sample), *bucket contention* — many distinct heavy
keys colliding per bucket — can make estimates worse even though more data
was seen.  See ``benchmarks/test_ablation_bucket_contention.py``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..hashing import BucketHashFamily, EH3SignFamily, FourWiseSignFamily, SignFamily
from ..kernels import get_backend
from ..rng import SeedLike, as_seed_sequence, derive_seed
from ._combine import combine_estimates, validate_combine
from .base import Sketch

__all__ = ["FagmsSketch"]

_SIGN_FAMILIES = {"fourwise": FourWiseSignFamily, "eh3": EH3SignFamily}


class FagmsSketch(Sketch):
    """F-AGMS / Count-Sketch with ``rows`` rows of ``buckets`` counters.

    Parameters
    ----------
    buckets:
        Counters per row.  The paper's experiments use 5,000 or 10,000.
    rows:
        Independent rows combined by ``combine`` (median by default, the
        standard F-AGMS combiner).  The paper effectively uses one row.
    seed:
        Seed for both the bucket hashes and ξ families; sketches to be
        compared or merged must share it.
    sign_family:
        ``"fourwise"`` (default) or ``"eh3"`` — see :class:`AgmsSketch`.
    """

    __slots__ = (
        "rows",
        "buckets",
        "seed_id",
        "seed_entropy",
        "seed_spawn_key",
        "sign_family",
        "combine",
        "groups",
        "_counters",
        "_bucket_hash",
        "_signs",
    )

    def __init__(
        self,
        buckets: int,
        rows: int = 1,
        seed: SeedLike = None,
        *,
        sign_family: str = "fourwise",
        combine: str = "median",
        groups: int = 1,
    ) -> None:
        if buckets < 1:
            raise ConfigurationError(f"buckets must be >= 1, got {buckets}")
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        if sign_family not in _SIGN_FAMILIES:
            raise ConfigurationError(
                f"unknown sign_family {sign_family!r}; "
                f"expected one of {tuple(_SIGN_FAMILIES)}"
            )
        validate_combine(combine, rows, groups)
        root = as_seed_sequence(seed)
        children = root.spawn(2)
        self.rows = rows
        self.buckets = buckets
        self.seed_id = derive_seed(root)
        self.seed_entropy = root.entropy
        self.seed_spawn_key = tuple(root.spawn_key)
        self.sign_family = sign_family
        self.combine = combine
        self.groups = groups
        self._bucket_hash = BucketHashFamily(buckets, rows, children[0])
        self._signs: SignFamily = _SIGN_FAMILIES[sign_family](rows, children[1])
        self._counters = np.zeros((rows, buckets), dtype=np.float64)

    # ------------------------------------------------------------------

    @property
    def counters(self) -> np.ndarray:
        """The ``(rows, buckets)`` counter matrix (inspection only)."""
        return self._counters

    def update(self, keys, weights=None) -> None:
        keys, weights = self._normalize_batch(keys, weights)
        if keys.size == 0:
            return
        indices = self._bucket_hash.evaluate_all(keys)
        signs = self._signs.evaluate_all(keys)
        get_backend().signed_scatter_add(self._counters, indices, signs, weights)

    # ------------------------------------------------------------------

    def row_second_moments(self) -> np.ndarray:
        """Per-row self-join estimates ``Σ_b counter²`` (before combining)."""
        return (self._counters**2).sum(axis=1, dtype=np.float64)

    def row_inner_products(self, other: "FagmsSketch") -> np.ndarray:
        """Per-row join estimates ``Σ_b S_F·S_G`` (before combining)."""
        self.check_compatible(other)
        return (self._counters * other._counters).sum(axis=1)

    def second_moment(self) -> float:
        return combine_estimates(self.row_second_moments(), self.combine, self.groups)

    def inner_product(self, other: Sketch) -> float:
        if not isinstance(other, FagmsSketch):
            raise TypeError("inner_product requires another FagmsSketch")
        return combine_estimates(
            self.row_inner_products(other), self.combine, self.groups
        )

    # ------------------------------------------------------------------
    # Point queries (the original Count-Sketch use)
    # ------------------------------------------------------------------

    def estimate_frequencies(self, keys) -> np.ndarray:
        """Unbiased point-frequency estimates for a batch of keys.

        Per row, the estimate of ``f_key`` is ``ξ(key)·counter[h(key)]``;
        rows are combined by the median (the Count-Sketch estimator).  With
        one row this is unbiased but noisy (variance ≈ F₂/buckets); with
        several rows the median gives the classic ``±sqrt(F₂/buckets)``
        guarantee w.h.p.
        """
        keys = np.asarray(keys, dtype=np.int64)
        indices = self._bucket_hash.evaluate_all(keys)
        signs = self._signs.evaluate_all(keys)
        gathered = get_backend().gather(self._counters, indices)
        return np.median(signs * gathered, axis=0)

    def point_estimate(self, key: int) -> float:
        """Unbiased estimate of a single key's frequency (median over rows)."""
        return float(self.estimate_frequencies(np.asarray([key]))[0])

    # ------------------------------------------------------------------

    def copy_empty(self) -> "FagmsSketch":
        clone = object.__new__(FagmsSketch)
        clone.rows = self.rows
        clone.buckets = self.buckets
        clone.seed_id = self.seed_id
        clone.seed_entropy = self.seed_entropy
        clone.seed_spawn_key = self.seed_spawn_key
        clone.sign_family = self.sign_family
        clone.combine = self.combine
        clone.groups = self.groups
        clone._bucket_hash = self._bucket_hash
        clone._signs = self._signs
        clone._counters = np.zeros((self.rows, self.buckets), dtype=np.float64)
        return clone

    def _state(self) -> np.ndarray:
        return self._counters

    def _fused_descriptor(self):
        """This sketch's entry for :func:`repro.kernels.fused.fused_update`."""
        from ..kernels.fused import FusedEntry

        poly = self.sign_family == "fourwise"
        return FusedEntry(
            kind="fagms",
            counters=self._counters,
            rows=self.rows,
            buckets=self.buckets,
            bucket_coefficients=self._bucket_hash._family.coefficients,
            sign_kind="poly" if poly else "eh3",
            sign_coefficients=self._signs._family.coefficients if poly else None,
            sign_family=self._signs,
            key_bound=(
                2**31 - 1 if poly else min(2**31 - 1, 2**self._signs.bits)
            ),
        )

    def _family_fingerprint(self) -> tuple:
        return super()._family_fingerprint() + (self.sign_family,)

    def __repr__(self) -> str:
        return (
            f"FagmsSketch(buckets={self.buckets}, rows={self.rows}, "
            f"combine={self.combine!r}, seed_id={self.seed_id})"
        )
