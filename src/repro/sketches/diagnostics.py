"""Sketch introspection: occupancy, contention, and estimate spread.

Section VII-D attributes F-AGMS's occasional misbehaviour to *bucket
contention* — many heavy keys colliding in a bucket widen the estimate
distribution.  These helpers make that mechanism observable on a live
sketch, so an operator (or the ablation benches) can tell whether a sketch
is sized sanely for its key set:

* :func:`bucket_occupancy` — distinct-key count per bucket for a given key
  universe (needs the keys: the sketch itself stores only sums);
* :func:`contention_report` — summary statistics of the occupancy and the
  expected heavy-pair collision mass;
* :func:`row_spread` — relative spread of the per-row basic estimates, a
  data-free health signal (a wildly disagreeing row set means the bucket
  count is too small for the stream).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .fagms import FagmsSketch

__all__ = ["bucket_occupancy", "ContentionReport", "contention_report", "row_spread"]


def bucket_occupancy(sketch: FagmsSketch, keys, row: int = 0) -> np.ndarray:
    """Distinct-key count per bucket of one row, for the given key set.

    *keys* should be the distinct keys that were (or would be) inserted;
    duplicates are counted once.
    """
    keys = np.unique(np.asarray(keys, dtype=np.int64))
    buckets = sketch._bucket_hash.evaluate_row(row, keys)
    return np.bincount(buckets, minlength=sketch.buckets)


@dataclass(frozen=True)
class ContentionReport:
    """Bucket-contention summary for one sketch row and key universe."""

    buckets: int
    distinct_keys: int
    max_occupancy: int
    mean_occupancy: float
    empty_buckets: int
    collision_pairs: int

    @property
    def load_factor(self) -> float:
        """Distinct keys per bucket (the primary sizing ratio)."""
        return self.distinct_keys / self.buckets

    def __repr__(self) -> str:
        return (
            f"ContentionReport(load={self.load_factor:.2f}, "
            f"max={self.max_occupancy}, empty={self.empty_buckets}, "
            f"collision_pairs={self.collision_pairs})"
        )


def contention_report(sketch: FagmsSketch, keys, row: int = 0) -> ContentionReport:
    """Summarize how contended one row of the sketch is for *keys*.

    ``collision_pairs`` counts unordered key pairs sharing a bucket — the
    number of cross-terms polluting that row's estimates; it grows
    quadratically once the load factor passes 1.
    """
    occupancy = bucket_occupancy(sketch, keys, row)
    distinct = int(occupancy.sum())
    pairs = int((occupancy * (occupancy - 1) // 2).sum())
    return ContentionReport(
        buckets=sketch.buckets,
        distinct_keys=distinct,
        max_occupancy=int(occupancy.max(initial=0)),
        mean_occupancy=float(occupancy.mean()) if occupancy.size else 0.0,
        empty_buckets=int((occupancy == 0).sum()),
        collision_pairs=pairs,
    )


def row_spread(sketch: FagmsSketch) -> float:
    """Relative disagreement of the per-row self-join estimates.

    ``(max − min) / median`` over the row estimates.  Requires at least
    two rows; values well above ~1 indicate the bucket count is too small
    for the sketched stream (heavy contention), values near 0 indicate a
    comfortable configuration.  Data-free: uses only the sketch state.
    """
    if sketch.rows < 2:
        raise ConfigurationError("row_spread needs a sketch with >= 2 rows")
    estimates = sketch.row_second_moments()
    median = float(np.median(estimates))
    if median == 0:
        return 0.0
    return float((estimates.max() - estimates.min()) / median)
