"""The ``observer=`` object threaded through engine, resilience, and parallel.

An :class:`Observer` bundles one process's :class:`~.metrics.MetricsRegistry`
and :class:`~.tracing.Tracer` behind a single handle, because every
instrumented seam (``OnlineStatisticsEngine``, ``run_lockstep_scan``,
``StreamRuntime``, ``run_sharded_sketch``) wants both.  The module-level
:data:`NULL_OBSERVER` is the default everywhere: a shared, stateless
no-op whose instruments discard everything, so the disabled path costs a
couple of attribute lookups per chunk (gated at <= 3% end-to-end by
``benchmarks/test_observability_overhead.py``).

Cross-process flow (mirrors the shard-seed protocol of
:mod:`repro.parallel`):

1. the coordinator's observer opens a root span and captures
   ``observer.trace_context()``;
2. the context travels inside the :class:`~repro.parallel.worker.ShardTask`
   as plain data; the worker builds a private observer with
   :func:`worker_observer`;
3. the worker ships back ``observer.export()`` — an
   :class:`ObserverSnapshot` of plain data — with its shard result;
4. the coordinator calls :meth:`Observer.absorb` once per shard *in shard
   order*, so merged counters and traces are deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
)
from .tracing import NullTracer, Span, SpanContext, Tracer

__all__ = [
    "NULL_OBSERVER",
    "Observer",
    "ObserverSnapshot",
    "as_observer",
    "worker_observer",
]


@dataclass(frozen=True)
class ObserverSnapshot:
    """One process's observations as plain picklable data."""

    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    spans: tuple = ()

    def to_dict(self) -> dict:
        """JSON-friendly form (used by the JSONL exporter)."""
        return {
            "metrics": {
                "counters": [
                    [name, list(labels), value]
                    for (name, labels), value in self.metrics.counters.items()
                ],
                "gauges": [
                    [name, list(labels), value]
                    for (name, labels), value in self.metrics.gauges.items()
                ],
                "histograms": [
                    [name, list(labels), hist]
                    for (name, labels), hist in self.metrics.histograms.items()
                ],
            },
            "spans": list(self.spans),
        }


class Observer:
    """Metrics registry + tracer for one process of one logical run.

    Parameters
    ----------
    clock:
        Injectable monotonic timer shared by the tracer (and available to
        instrumented components via :attr:`clock`).
    process:
        Timeline label (``"main"`` in the coordinator, ``"shard-NNN"`` in
        workers).
    parent:
        Propagated :class:`~.tracing.SpanContext` for worker observers.
    trace_id:
        Deterministic id tying the per-process tracers of a run together.
    """

    #: The null observer overrides this with False.
    enabled: bool = True

    __slots__ = ("metrics", "tracer", "clock")

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        *,
        process: str = "main",
        parent: Optional[SpanContext] = None,
        trace_id: int = 0,
    ) -> None:
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            clock, process=process, parent=parent, trace_id=trace_id
        )

    # ------------------------------------------------------------------
    # Instrument access (delegates)
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        """The counter registered under (*name*, *labels*)."""
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge registered under (*name*, *labels*)."""
        return self.metrics.gauge(name, **labels)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        """The histogram registered under (*name*, *labels*)."""
        return self.metrics.histogram(name, buckets, **labels)

    def span(self, name: str, **args) -> Span:
        """Open a tracing span (context manager)."""
        return self.tracer.span(name, **args)

    # ------------------------------------------------------------------
    # Cross-process protocol
    # ------------------------------------------------------------------

    def trace_context(self) -> SpanContext:
        """Picklable coordinates for a child process's observer."""
        return self.tracer.current_context()

    def export(self) -> ObserverSnapshot:
        """Freeze everything observed so far into plain data."""
        return ObserverSnapshot(
            metrics=self.metrics.snapshot(),
            spans=tuple(self.tracer.export_spans()),
        )

    def absorb(self, snapshot: Optional[ObserverSnapshot]) -> None:
        """Fold a child process's snapshot into this observer.

        ``None`` is accepted and ignored so coordinators can absorb
        optional worker payloads unconditionally.  Call in fixed shard
        order for deterministic aggregation.
        """
        if snapshot is None:
            return
        self.metrics.absorb(snapshot.metrics)
        self.tracer.absorb(snapshot.spans)

    def __repr__(self) -> str:
        return (
            f"Observer(process={self.tracer.process!r}, "
            f"metrics={self.metrics!r}, spans={len(self.tracer.finished)})"
        )


class _NullObserver(Observer):
    """The shared disabled observer (one instance: :data:`NULL_OBSERVER`)."""

    enabled = False

    __slots__ = ()

    def __init__(self) -> None:
        self.clock = time.perf_counter
        self.metrics = NullRegistry()
        self.tracer = NullTracer()

    def export(self) -> ObserverSnapshot:
        """An empty snapshot."""
        return ObserverSnapshot()

    def absorb(self, snapshot: Optional[ObserverSnapshot]) -> None:
        """Discard the snapshot."""


#: The process-wide disabled observer; every ``observer=`` argument
#: defaults to it (via :func:`as_observer`).
NULL_OBSERVER = _NullObserver()


def as_observer(observer: Optional[Observer]) -> Observer:
    """Normalize an optional ``observer=`` argument (``None`` → null)."""
    return NULL_OBSERVER if observer is None else observer


def worker_observer(
    index: int,
    parent: Union[SpanContext, tuple, None] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> Observer:
    """Build the private observer a pool worker uses for one shard.

    *parent* may be a :class:`~.tracing.SpanContext` or its plain-tuple
    pickled form ``(trace_id, span_id, process)`` as shipped in a
    :class:`~repro.parallel.worker.ShardTask`.
    """
    if isinstance(parent, tuple) and parent:
        parent = SpanContext(
            trace_id=int(parent[0]),
            span_id=int(parent[1]),
            process=str(parent[2]) if len(parent) > 2 else "main",
        )
    elif isinstance(parent, tuple):
        parent = None
    trace_id = parent.trace_id if isinstance(parent, SpanContext) else 0
    return Observer(
        clock,
        process=f"shard-{index:03d}",
        parent=parent if isinstance(parent, SpanContext) else None,
        trace_id=trace_id,
    )
