"""Labeled counters, gauges, and fixed-bucket histograms.

The metrics core follows the same discipline as the rest of the library:

* **Deterministic** — no ambient wall-clock or entropy.  Instruments hold
  plain numbers; anything time-shaped enters through the caller (the
  tracing layer owns the injectable clock).
* **Process-safe by construction, not by locking** — each process (the
  coordinator and every pool worker) owns a private
  :class:`MetricsRegistry`; registries never share memory.  A worker
  ships a :meth:`MetricsRegistry.snapshot` (plain picklable data) back
  with its shard result and the coordinator folds the snapshots in shard
  order through :meth:`MetricsSnapshot.merge` — the same fixed-order
  reduction the sketch merge tree uses, so the aggregate is identical no
  matter which process ran which shard.
* **Near-zero when disabled** — :class:`NullRegistry` hands out shared
  no-op instruments, so fully-instrumented call sites cost a method call
  and nothing else (gated by ``benchmarks/test_observability_overhead.py``).

Metric names are lowercase dotted paths (``runtime.tuples.seen``),
validated here at registration and linted statically by REP006
(:mod:`repro.analysis.rules.naming`): names must be literals at call
sites, never f-string-assembled.  Dimensions that vary at runtime belong
in **labels** (``relation="lineitem"``, ``backend="numpy"``), which
become Prometheus labels on export.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "validate_metric_name",
]

#: Lowercase dotted metric/span names: ``segment(.segment)+``.
_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: A label set frozen into a canonical, hashable, picklable key.
LabelKey = tuple[tuple[str, str], ...]


def validate_metric_name(name: str) -> str:
    """Return *name* if it is a valid lowercase dotted metric/span name.

    Raises :class:`~repro.errors.ConfigurationError` otherwise.  The same
    convention is enforced statically by REP006, so a name that passes
    the linter never fails here (and vice versa).
    """
    if not isinstance(name, str) or not _NAME_PATTERN.match(name):
        raise ConfigurationError(
            f"invalid metric/span name {name!r}; expected a lowercase "
            "dotted path like 'runtime.tuples.seen'"
        )
    return name


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (tuples seen, chunks accepted...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only increase; got increment {amount}"
            )
        self.value += amount


class Gauge:
    """A point-in-time value (current shed rate, duty cycle...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: Union[int, float]) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram (latencies, chunk costs).

    ``buckets`` are the inclusive upper bounds of each bucket; an implicit
    ``+inf`` bucket catches the overflow.  Bucket bounds are fixed at
    construction so two histograms of the same metric always merge
    exactly (bucket-wise addition), which is what keeps cross-process
    aggregation deterministic.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram bounds must strictly increase, got {bounds}"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        value = float(value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by :class:`NullRegistry`."""

    __slots__ = ()

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Discard the increment."""


class _NullGauge(Gauge):
    """Shared do-nothing gauge handed out by :class:`NullRegistry`."""

    __slots__ = ()

    def set(self, value: Union[int, float]) -> None:
        """Discard the value."""


class _NullHistogram(Histogram):
    """Shared do-nothing histogram handed out by :class:`NullRegistry`."""

    __slots__ = ()

    def observe(self, value: Union[int, float]) -> None:
        """Discard the observation."""


@dataclass(frozen=True)
class MetricsSnapshot:
    """A registry's state as plain picklable data.

    Keys are ``(name, labels)`` pairs with labels in canonical sorted
    order; values are plain numbers / lists, so snapshots cross process
    boundaries (pickle) and serialize to JSON without special casing.
    """

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold *other* into a new snapshot (``self`` is the left operand).

        Counters and histogram buckets add; gauges are last-writer-wins
        (*other* overrides), which is deterministic because callers merge
        in fixed shard order.  Histograms with mismatched bucket bounds
        raise — they are different metrics wearing the same name.
        """
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = {k: _copy_hist(v) for k, v in self.histograms.items()}
        for key, hist in other.histograms.items():
            mine = histograms.get(key)
            if mine is None:
                histograms[key] = _copy_hist(hist)
                continue
            if tuple(mine["bounds"]) != tuple(hist["bounds"]):
                raise ConfigurationError(
                    f"cannot merge histogram {key!r}: bucket bounds differ "
                    f"({mine['bounds']} vs {hist['bounds']})"
                )
            mine["counts"] = [
                a + b for a, b in zip(mine["counts"], hist["counts"])
            ]
            mine["total"] += hist["total"]
            mine["count"] += hist["count"]
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def counter_value(self, name: str, **labels) -> float:
        """The merged value of one counter (0 when never incremented)."""
        return self.counters.get((name, _label_key(labels)), 0)

    def gauge_value(self, name: str, **labels) -> Optional[float]:
        """The last value of one gauge, or ``None`` when never set."""
        return self.gauges.get((name, _label_key(labels)))


def _copy_hist(hist: dict) -> dict:
    return {
        "bounds": list(hist["bounds"]),
        "counts": list(hist["counts"]),
        "total": hist["total"],
        "count": hist["count"],
    }


class MetricsRegistry:
    """The process-local home of every instrument.

    ``registry.counter("runtime.tuples.seen", relation="lineitem")``
    returns the same :class:`Counter` object on every call with the same
    name and labels, so hot call sites may cache the instrument once and
    skip the lookup entirely.  Instrument kinds are exclusive per name: a
    name registered as a counter cannot come back as a gauge.
    """

    #: Null registries report False so call sites can skip real work.
    enabled: bool = True

    __slots__ = ("_counters", "_gauges", "_histograms", "_kinds")

    def __init__(self) -> None:
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._kinds: dict = {}

    # ------------------------------------------------------------------

    def _check_kind(self, name: str, kind: str) -> None:
        validate_metric_name(name)
        registered = self._kinds.setdefault(name, kind)
        if registered != kind:
            raise ConfigurationError(
                f"metric {name!r} is already registered as a {registered}, "
                f"cannot reuse it as a {kind}"
            )

    def counter(self, name: str, **labels) -> Counter:
        """The counter registered under (*name*, *labels*), creating it once."""
        self._check_kind(name, "counter")
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge registered under (*name*, *labels*), creating it once."""
        self._check_kind(name, "gauge")
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        """The histogram registered under (*name*, *labels*), creating it once.

        *buckets* only applies on first registration; later calls must
        agree (or omit the argument) — silently returning a histogram
        with different bounds would corrupt merges.
        """
        self._check_kind(name, "histogram")
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        elif tuple(float(b) for b in buckets) != instrument.bounds:
            raise ConfigurationError(
                f"histogram {name!r} was registered with bounds "
                f"{instrument.bounds}, got {tuple(buckets)}"
            )
        return instrument

    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the registry into plain picklable data."""
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={
                k: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "count": h.count,
                }
                for k, h in self._histograms.items()
            },
        )

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a foreign snapshot (e.g. a worker's) into this registry.

        Counter and histogram contributions add into the local
        instruments; gauges overwrite.  Called once per shard in fixed
        shard order by the coordinator, so aggregation is deterministic.
        """
        for (name, labels), value in snapshot.counters.items():
            self.counter(name, **dict(labels)).value += value
        for (name, labels), value in snapshot.gauges.items():
            self.gauge(name, **dict(labels)).set(value)
        for (name, labels), hist in snapshot.histograms.items():
            mine = self.histogram(name, hist["bounds"], **dict(labels))
            mine.counts = [a + b for a, b in zip(mine.counts, hist["counts"])]
            mine.total += hist["total"]
            mine.count += hist["count"]

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every lookup returns a shared no-op instrument.

    Instrumented call sites stay branch-free — they call
    ``observer.counter(...).inc()`` unconditionally and the null path
    costs two cheap method calls.  Code that would do real work to
    *compute* a metric should still branch on :attr:`enabled`.
    """

    enabled = False

    __slots__ = ()

    def counter(self, name: str, **labels) -> Counter:
        """The shared no-op counter."""
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> Gauge:
        """The shared no-op gauge."""
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        """The shared no-op histogram."""
        return _NULL_HISTOGRAM

    def snapshot(self) -> MetricsSnapshot:
        """An empty snapshot (the null registry records nothing)."""
        return MetricsSnapshot()

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Discard the snapshot."""
