"""Estimator-quality monitoring against the paper's variance bounds.

The paper's central result is a closed-form variance decomposition for
sketch-over-sample estimators (Props 9–16): for every estimate the system
produces there is a *predicted* error scale.  That makes estimator
quality itself a monitorable signal: when ground truth is available
(synthetic experiment streams, TPC-H generators, shadow recomputation),
the observed squared error should stay within a small multiple of the
closed-form variance — drifting outside it means broken hash families, a
miscounted sampling ledger, or a correction applied twice.

:class:`QualityMonitor` tracks exactly that.  Each :meth:`~QualityMonitor.record`
call feeds one ``(estimate, truth, variance_bound)`` triple; the monitor
updates error gauges/counters on its observer and flags a **breach**
whenever the squared error exceeds ``slack × variance_bound``.  The
default ``slack = 9`` is the Chebyshev 3σ budget: a correct estimator
breaches with probability at most 1/9 per observation, so a breach *rate*
near or above that is a loud alarm (single breaches are expected noise).

:func:`observe_shedding` publishes the load-shedding health gauges (shed
rate, drop fraction, governor duty cycle) from any
:class:`~repro.resilience.adaptive.AdaptiveSheddingSketcher`-shaped
source; :class:`~repro.resilience.runtime.StreamRuntime` calls it per
chunk when an observer is attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from .observer import Observer

__all__ = ["QualityBreach", "QualityMonitor", "observe_shedding"]


@dataclass(frozen=True)
class QualityBreach:
    """One observation whose squared error exceeded its variance budget."""

    metric: str
    estimate: float
    truth: float
    squared_error: float
    variance_bound: float
    slack: float

    @property
    def ratio(self) -> float:
        """Observed squared error over the raw variance bound."""
        if self.variance_bound <= 0:
            return float("inf")
        return self.squared_error / self.variance_bound


class QualityMonitor:
    """Track observed estimator error against closed-form variance bounds.

    Parameters
    ----------
    observer:
        Destination for the quality gauges and counters.
    slack:
        Multiple of the variance bound the squared error may reach before
        an observation counts as a breach (default 9.0 — Chebyshev 3σ).
    """

    __slots__ = ("observer", "slack", "breaches")

    def __init__(self, observer: Observer, slack: float = 9.0) -> None:
        if slack <= 0:
            raise ConfigurationError(f"slack must be > 0, got {slack}")
        self.observer = observer
        self.slack = float(slack)
        self.breaches: list[QualityBreach] = []

    def record(
        self,
        metric: str,
        estimate: float,
        truth: float,
        variance_bound: float,
    ) -> Optional[QualityBreach]:
        """Feed one estimate/truth pair with its predicted variance.

        *metric* labels the estimator being judged (e.g.
        ``"self_join.lineitem"``); it becomes a metric label, not a
        metric name, so it may be assembled at runtime.  Returns the
        :class:`QualityBreach` when the observation breached, else
        ``None``.
        """
        if variance_bound < 0:
            raise ConfigurationError(
                f"variance_bound must be >= 0, got {variance_bound}"
            )
        estimate = float(estimate)
        truth = float(truth)
        variance_bound = float(variance_bound)
        squared_error = (estimate - truth) ** 2
        obs = self.observer
        obs.counter("quality.observations", metric=metric).inc()
        obs.gauge("quality.squared_error", metric=metric).set(squared_error)
        obs.gauge("quality.variance_bound", metric=metric).set(variance_bound)
        if variance_bound > 0:
            obs.gauge("quality.error_ratio", metric=metric).set(
                squared_error / variance_bound
            )
        if squared_error <= self.slack * variance_bound:
            return None
        breach = QualityBreach(
            metric=metric,
            estimate=estimate,
            truth=truth,
            squared_error=squared_error,
            variance_bound=variance_bound,
            slack=self.slack,
        )
        self.breaches.append(breach)
        obs.counter("quality.breaches", metric=metric).inc()
        return breach

    def breach_rate(self, metric: str) -> float:
        """Breaches over observations for one metric label (0 when unseen)."""
        seen = self.observer.metrics.snapshot().counter_value(
            "quality.observations", metric=metric
        )
        if seen == 0:
            return 0.0
        breached = self.observer.metrics.snapshot().counter_value(
            "quality.breaches", metric=metric
        )
        return breached / seen

    def __repr__(self) -> str:
        return f"QualityMonitor(slack={self.slack}, breaches={len(self.breaches)})"


def observe_shedding(
    observer: Observer,
    sketcher,
    governor=None,
    *,
    arrived: int = 0,
    elapsed: float = 0.0,
) -> None:
    """Publish the load-shedding health gauges for one processed chunk.

    *sketcher* is anything with the
    :class:`~repro.resilience.adaptive.AdaptiveSheddingSketcher` surface
    (``rate``/``seen``/``kept``); *governor* anything with the
    :class:`~repro.resilience.governor.LoadGovernor` surface
    (``cost_estimate``/``budget_per_tuple``) — both duck-typed so this
    module never imports :mod:`repro.resilience` (which imports this
    package).  With a governor and the chunk's ``arrived``/``elapsed``
    measurements, also publishes the governor's **duty cycle** — observed
    per-arrived-tuple cost over the configured budget (1.0 = saturated,
    >1.0 = overloaded and shedding harder).
    """
    observer.gauge("resilience.shed.rate").set(sketcher.rate)
    seen = sketcher.seen
    if seen > 0:
        observer.gauge("resilience.shed.drop_fraction").set(
            1.0 - sketcher.kept / seen
        )
    if governor is not None:
        if governor.cost_estimate is not None:
            observer.gauge("resilience.governor.cost_per_kept_tuple").set(
                governor.cost_estimate
            )
        if arrived > 0 and elapsed >= 0:
            observer.gauge("resilience.governor.duty_cycle").set(
                (elapsed / arrived) / governor.budget_per_tuple
            )
