"""Explicit spans with deterministic ids and cross-process propagation.

The tracer is a stack machine: ``with tracer.span("scan.chunk"):`` opens
a span whose parent is whatever span is currently open in this tracer,
stamps begin/end from the injectable monotonic clock, and appends a plain
:class:`SpanRecord` to the finished list on exit.  Nothing global, no
wall time, no uuids — span ids are sequential per tracer, and identity
across processes comes from the ``process`` label plus the propagated
parent coordinates, mirroring how shard seeds travel as plain
``SeedSequence`` coordinates in :mod:`repro.parallel.worker`.

**Propagation.**  The coordinator opens a root span and ships
``tracer.current_context()`` — a picklable ``(trace_id, span_id)``
:class:`SpanContext` — inside each :class:`~repro.parallel.worker.ShardTask`.
The worker builds its own tracer with ``parent=`` that context, so its
spans nest under the coordinator's root when the coordinator later
absorbs the worker's exported records.  Per-process clocks have
different origins; that is fine for the Chrome ``trace_event`` export
(each process renders on its own timeline) and irrelevant for
determinism because tests inject fake clocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional

from ..errors import ConfigurationError
from .metrics import validate_metric_name

__all__ = [
    "NullTracer",
    "Span",
    "SpanContext",
    "SpanRecord",
    "Tracer",
]


@dataclass(frozen=True)
class SpanContext:
    """The picklable coordinates a child process nests its spans under."""

    trace_id: int
    span_id: int
    process: str = "main"


@dataclass(frozen=True)
class SpanRecord:
    """One finished span as plain data (ready to pickle or export)."""

    name: str
    span_id: int
    parent_id: Optional[int]
    process: str
    start: float
    end: float
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed clock time between span entry and exit."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON/pickle-friendly dict form (used by the JSONL exporter)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "process": self.process,
            "start": self.start,
            "end": self.end,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "SpanRecord":
        """Rebuild a record exported by :meth:`to_dict`."""
        return cls(
            name=raw["name"],
            span_id=int(raw["span_id"]),
            parent_id=None if raw.get("parent_id") is None else int(raw["parent_id"]),
            process=str(raw.get("process", "main")),
            start=float(raw["start"]),
            end=float(raw["end"]),
            args=dict(raw.get("args", {})),
        )


class Span:
    """An open span; a context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = self._tracer.clock()
        self._tracer._stack.append(self.span_id)
        return self

    def __exit__(self, *exc_info) -> None:
        end = self._tracer.clock()
        stack = self._tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._tracer.finished.append(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                process=self._tracer.process,
                start=self._start,
                end=end,
                args=self.args,
            )
        )

    def annotate(self, **args) -> None:
        """Attach extra key/value arguments to the span before it closes."""
        self.args.update(args)


class _NullSpan:
    """Reusable do-nothing span (the disabled tracing path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def annotate(self, **args) -> None:
        """Discard the annotations."""


_NULL_SPAN = _NullSpan()


class Tracer:
    """Per-process span recorder with an injectable monotonic clock.

    Parameters
    ----------
    clock:
        Zero-argument monotonic timer (default
        :func:`time.perf_counter`); injectable so tests see exact
        deterministic timestamps.
    process:
        Label identifying this process's timeline (``"main"``,
        ``"shard-003"``); becomes the Chrome-trace process row.
    parent:
        A :class:`SpanContext` propagated from the spawning process; the
        first top-level span opened here nests under it.
    trace_id:
        Deterministic id shared by every tracer of one logical run.
    """

    #: Null tracers report False so call sites can skip real work.
    enabled: bool = True

    __slots__ = ("clock", "process", "trace_id", "finished", "_stack",
                 "_parent", "_next_id")

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        *,
        process: str = "main",
        parent: Optional[SpanContext] = None,
        trace_id: int = 0,
    ) -> None:
        if parent is not None and parent.trace_id != trace_id:
            raise ConfigurationError(
                f"parent context belongs to trace {parent.trace_id}, "
                f"this tracer records trace {trace_id}"
            )
        self.clock = clock
        self.process = str(process)
        self.trace_id = int(trace_id)
        self.finished: list[SpanRecord] = []
        self._stack: list[int] = []
        self._parent = parent
        # Span ids only need to be unique within one process's tracer;
        # cross-process uniqueness comes from the process label.
        self._next_id = 1

    # ------------------------------------------------------------------

    def span(self, name: str, **args) -> Span:
        """Open a span named *name* (lowercase dotted) with optional args."""
        validate_metric_name(name)
        span_id = self._next_id
        self._next_id += 1
        if self._stack:
            parent_id = self._stack[-1]
        elif self._parent is not None:
            parent_id = self._parent.span_id
        else:
            parent_id = None
        return Span(self, name, span_id, parent_id, dict(args))

    def current_context(self) -> SpanContext:
        """The coordinates a child process should nest its spans under."""
        if self._stack:
            return SpanContext(
                trace_id=self.trace_id,
                span_id=self._stack[-1],
                process=self.process,
            )
        if self._parent is not None:
            return self._parent
        raise ConfigurationError(
            "no span is open; open one before capturing a context to ship"
        )

    # ------------------------------------------------------------------

    def export_spans(self) -> list:
        """Finished spans as plain dicts (picklable, JSONL-ready)."""
        return [record.to_dict() for record in self.finished]

    def absorb(self, spans: Iterable) -> None:
        """Append foreign span records (dicts or :class:`SpanRecord`)."""
        for raw in spans:
            record = raw if isinstance(raw, SpanRecord) else SpanRecord.from_dict(raw)
            self.finished.append(record)

    def relabel(self, process: str) -> None:
        """Rewrite the process label of every *finished* span (tests only)."""
        self.finished = [
            replace(record, process=process) for record in self.finished
        ]

    def __repr__(self) -> str:
        return (
            f"Tracer(process={self.process!r}, finished={len(self.finished)}, "
            f"open={len(self._stack)})"
        )


class NullTracer(Tracer):
    """The disabled tracer: hands out one shared no-op span."""

    enabled = False

    __slots__ = ()

    def span(self, name: str, **args) -> _NullSpan:  # type: ignore[override]
        """The shared no-op span."""
        return _NULL_SPAN

    def current_context(self) -> SpanContext:
        """A fixed root context (children of a null tracer stay null)."""
        return SpanContext(trace_id=0, span_id=0, process=self.process)

    def export_spans(self) -> list:
        """Nothing was recorded."""
        return []

    def absorb(self, spans: Iterable) -> None:
        """Discard the records."""
