"""Exporters: Prometheus text format, Chrome ``trace_event`` JSON, JSONL.

All exporters are pure functions over the plain-data snapshot types
(:class:`~.metrics.MetricsSnapshot`, span record dicts), so they can run
in any process at any time without touching live instruments.  Output
ordering is fully deterministic (sorted names, label sets, and process
labels) — two identical runs export byte-identical dumps, which lets
tests compare them with plain string equality.

Formats
-------
* :func:`to_prometheus` — the ``text/plain; version=0.0.4`` exposition
  format: dotted metric names become underscore-joined (``runtime.tuples.seen``
  → ``repro_runtime_tuples_seen_total``), counters gain ``_total``,
  histograms expand to cumulative ``_bucket{le=...}`` series plus
  ``_sum``/``_count``.
* :func:`to_chrome_trace` — a ``{"traceEvents": [...]}`` object loadable
  in ``chrome://tracing`` / Perfetto: one complete (``"ph": "X"``) event
  per span, one process row per tracer (coordinator + every worker),
  with ``process_name`` metadata events labeling the rows.
* :func:`metrics_to_records` / :func:`spans_to_records` +
  :func:`write_jsonl` — flat one-record-per-line JSON for log shippers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .metrics import MetricsSnapshot
from .observer import Observer, ObserverSnapshot
from .tracing import SpanRecord

__all__ = [
    "metrics_to_records",
    "spans_to_records",
    "to_chrome_trace",
    "to_prometheus",
    "write_chrome_trace",
    "write_jsonl",
]


def _prom_name(name: str, namespace: str) -> str:
    return f"{namespace}_{name.replace('.', '_')}" if namespace else name.replace(".", "_")


def _prom_labels(labels: Sequence, extra: Sequence = ()) -> str:
    items = [*labels, *extra]
    if not items:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in items)
    return "{" + body + "}"


def _prom_number(value: Union[int, float]) -> str:
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def to_prometheus(
    snapshot: Union[MetricsSnapshot, ObserverSnapshot, Observer],
    namespace: str = "repro",
) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format.

    Accepts a live :class:`~.observer.Observer` (snapshotted on the fly),
    an :class:`~.observer.ObserverSnapshot`, or a bare
    :class:`~.metrics.MetricsSnapshot`.  Output is deterministically
    sorted by metric name and label set.
    """
    metrics = _as_metrics(snapshot)
    lines: list[str] = []
    counters: dict = {}
    for (name, labels), value in metrics.counters.items():
        counters.setdefault(name, []).append((labels, value))
    for name in sorted(counters):
        prom = _prom_name(name, namespace) + "_total"
        lines.append(f"# TYPE {prom} counter")
        for labels, value in sorted(counters[name]):
            lines.append(f"{prom}{_prom_labels(labels)} {_prom_number(value)}")
    gauges: dict = {}
    for (name, labels), value in metrics.gauges.items():
        gauges.setdefault(name, []).append((labels, value))
    for name in sorted(gauges):
        prom = _prom_name(name, namespace)
        lines.append(f"# TYPE {prom} gauge")
        for labels, value in sorted(gauges[name]):
            lines.append(f"{prom}{_prom_labels(labels)} {_prom_number(value)}")
    histograms: dict = {}
    for (name, labels), hist in metrics.histograms.items():
        histograms.setdefault(name, []).append((labels, hist))
    for name in sorted(histograms):
        prom = _prom_name(name, namespace)
        lines.append(f"# TYPE {prom} histogram")
        for labels, hist in sorted(histograms[name], key=lambda item: item[0]):
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["counts"]):
                cumulative += count
                lines.append(
                    f"{prom}_bucket"
                    f"{_prom_labels(labels, [('le', _prom_number(bound))])} "
                    f"{cumulative}"
                )
            cumulative += hist["counts"][-1]
            lines.append(
                f"{prom}_bucket{_prom_labels(labels, [('le', '+Inf')])} "
                f"{cumulative}"
            )
            lines.append(
                f"{prom}_sum{_prom_labels(labels)} {_prom_number(hist['total'])}"
            )
            lines.append(f"{prom}_count{_prom_labels(labels)} {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _as_metrics(snapshot) -> MetricsSnapshot:
    if isinstance(snapshot, Observer):
        return snapshot.metrics.snapshot()
    if isinstance(snapshot, ObserverSnapshot):
        return snapshot.metrics
    return snapshot


def _as_span_dicts(spans) -> list:
    if isinstance(spans, Observer):
        spans = spans.tracer.export_spans()
    elif isinstance(spans, ObserverSnapshot):
        spans = spans.spans
    out = []
    for span in spans:
        out.append(span.to_dict() if isinstance(span, SpanRecord) else dict(span))
    return out


def to_chrome_trace(
    spans: Union[Observer, ObserverSnapshot, Iterable],
) -> dict:
    """Render spans as a Chrome ``trace_event`` JSON object.

    Every distinct ``process`` label becomes one process row (pid), with
    ``"main"`` pinned to pid 1 and the rest sorted; timestamps are the
    spans' monotonic clock readings scaled to microseconds.  The result
    serializes with :func:`json.dumps` as-is (see
    :func:`write_chrome_trace`).
    """
    records = _as_span_dicts(spans)
    processes = sorted({record["process"] for record in records})
    if "main" in processes:
        processes.remove("main")
        processes.insert(0, "main")
    pids = {process: index + 1 for index, process in enumerate(processes)}
    events = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pids[process],
            "tid": 0,
            "args": {"name": process},
        }
        for process in processes
    ]
    for record in records:
        args = dict(record.get("args", {}))
        args["span_id"] = record["span_id"]
        if record.get("parent_id") is not None:
            args["parent_id"] = record["parent_id"]
        events.append(
            {
                "ph": "X",
                "name": record["name"],
                "pid": pids[record["process"]],
                "tid": 0,
                "ts": record["start"] * 1e6,
                "dur": (record["end"] - record["start"]) * 1e6,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path,
    spans: Union[Observer, ObserverSnapshot, Iterable],
) -> Path:
    """Write :func:`to_chrome_trace` output to *path*; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(spans), indent=2) + "\n")
    return path


def metrics_to_records(
    snapshot: Union[MetricsSnapshot, ObserverSnapshot, Observer],
    namespace: str = "repro",
) -> list:
    """Flatten a metrics snapshot into JSONL-ready dict records."""
    metrics = _as_metrics(snapshot)
    records = []
    for (name, labels), value in sorted(metrics.counters.items()):
        records.append(
            {"kind": "counter", "namespace": namespace, "name": name,
             "labels": dict(labels), "value": value}
        )
    for (name, labels), value in sorted(metrics.gauges.items()):
        records.append(
            {"kind": "gauge", "namespace": namespace, "name": name,
             "labels": dict(labels), "value": value}
        )
    for (name, labels), hist in sorted(metrics.histograms.items()):
        records.append(
            {"kind": "histogram", "namespace": namespace, "name": name,
             "labels": dict(labels), "bounds": list(hist["bounds"]),
             "counts": list(hist["counts"]), "sum": hist["total"],
             "count": hist["count"]}
        )
    return records


def spans_to_records(
    spans: Union[Observer, ObserverSnapshot, Iterable],
) -> list:
    """Flatten spans into JSONL-ready dict records (one per span)."""
    return [{"kind": "span", **record} for record in _as_span_dicts(spans)]


def write_jsonl(path, records: Iterable, append: bool = False) -> Path:
    """Write dict *records* one-JSON-object-per-line to *path*.

    With ``append=True`` records are appended, which is how a long-running
    process emits periodic metric dumps into one sink file.
    """
    path = Path(path)
    mode = "a" if append else "w"
    with path.open(mode) as sink:
        for record in records:
            sink.write(json.dumps(record, sort_keys=True) + "\n")
    return path
