"""Profiling hooks on the kernel seam: timings, rows, bytes, throughput.

:class:`ProfilingKernelBackend` is a transparent decorator over any
:class:`~repro.kernels.backend.KernelBackend`: every primitive delegates
verbatim to the wrapped backend — counters stay **bit-identical**, the
wrapper never touches the arrays — while the seam records, per wrapped
backend name:

* ``kernels.ops`` — calls per primitive (labels: ``op``, ``backend``);
* ``kernels.rows`` — tuple-slots processed (``rows × n`` per call);
* ``kernels.bytes`` — bytes of index/sign/weight traffic through the seam;
* ``kernels.op.seconds`` — a latency histogram per primitive;
* ``kernels.throughput.tuples_per_sec`` — a gauge with the cumulative
  observed update throughput (accumulation primitives only).

:func:`profile_kernels` is the ergonomic entry point::

    obs = Observer()
    with profile_kernels(obs):
        sketch.update(keys)          # any sketch, any backend
    print(to_prometheus(obs))

It wraps whatever backend is active, splices the wrapper into the seam
via :func:`repro.kernels.set_backend` (instances are accepted and never
registered, so ``available_backends()`` is unchanged), and restores the
original backend on exit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional

import numpy as np

from ..kernels.backend import KernelBackend, get_backend, set_backend
from .observer import Observer

__all__ = ["ProfilingKernelBackend", "profile_kernels"]

#: Histogram bounds for single kernel-primitive calls (fine-grained).
_OP_SECONDS_BUCKETS = (1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


class ProfilingKernelBackend(KernelBackend):
    """A :class:`KernelBackend` decorator that meters every primitive.

    Parameters
    ----------
    inner:
        The real backend doing the work; results pass through untouched.
    observer:
        Destination for the metrics.
    clock:
        Injectable monotonic timer (defaults to the observer's clock).
    """

    def __init__(
        self,
        inner: KernelBackend,
        observer: Observer,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.inner = inner
        self.observer = observer
        self.clock = observer.clock if clock is None else clock
        self.name = f"profiled:{inner.name}"
        self._update_rows = 0
        self._update_seconds = 0.0

    # ------------------------------------------------------------------

    def _record(self, op: str, rows: int, nbytes: int, elapsed: float,
                accumulation: bool) -> None:
        backend = self.inner.name
        obs = self.observer
        obs.counter("kernels.ops", op=op, backend=backend).inc()
        obs.counter("kernels.rows", op=op, backend=backend).inc(rows)
        obs.counter("kernels.bytes", op=op, backend=backend).inc(nbytes)
        obs.histogram(
            "kernels.op.seconds", _OP_SECONDS_BUCKETS, op=op, backend=backend
        ).observe(elapsed)
        if accumulation:
            self._update_rows += rows
            self._update_seconds += elapsed
            if self._update_seconds > 0:
                obs.gauge(
                    "kernels.throughput.tuples_per_sec", backend=backend
                ).set(self._update_rows / self._update_seconds)

    @staticmethod
    def _traffic(*arrays) -> tuple[int, int]:
        """(tuple-slots, bytes) moved through the seam by one call."""
        slots = 0
        nbytes = 0
        for array in arrays:
            if array is None:
                continue
            array = np.asarray(array)
            slots = max(slots, array.size)
            nbytes += array.nbytes
        return slots, nbytes

    # ------------------------------------------------------------------
    # Accumulation primitives
    # ------------------------------------------------------------------

    def scatter_add(self, counters, indices, weights=None) -> None:
        """Delegate to the wrapped backend, metering the call."""
        started = self.clock()
        self.inner.scatter_add(counters, indices, weights)
        elapsed = self.clock() - started
        slots, nbytes = self._traffic(indices, weights)
        self._record("scatter_add", slots, nbytes, elapsed, True)

    def signed_scatter_add(self, counters, indices, signs, weights=None) -> None:
        """Delegate to the wrapped backend, metering the call."""
        started = self.clock()
        self.inner.signed_scatter_add(counters, indices, signs, weights)
        elapsed = self.clock() - started
        slots, nbytes = self._traffic(indices, signs, weights)
        self._record("signed_scatter_add", slots, nbytes, elapsed, True)

    def gather(self, counters, indices):
        """Delegate to the wrapped backend, metering the call."""
        started = self.clock()
        out = self.inner.gather(counters, indices)
        elapsed = self.clock() - started
        slots, nbytes = self._traffic(indices)
        self._record("gather", slots, nbytes, elapsed, False)
        return out

    def sign_sum(self, signs):
        """Delegate to the wrapped backend, metering the call."""
        started = self.clock()
        out = self.inner.sign_sum(signs)
        elapsed = self.clock() - started
        slots, nbytes = self._traffic(signs)
        self._record("sign_sum", slots, nbytes, elapsed, True)
        return out

    def sign_dot(self, signs, weights, out=None):
        """Delegate to the wrapped backend, metering the call."""
        started = self.clock()
        result = self.inner.sign_dot(signs, weights, out)
        elapsed = self.clock() - started
        slots, nbytes = self._traffic(signs, weights)
        self._record("sign_dot", slots, nbytes, elapsed, True)
        return result

    # ------------------------------------------------------------------
    # Fused multi-sketch entry point
    # ------------------------------------------------------------------

    @property
    def fused_accepts_int32(self) -> bool:
        """Mirror the wrapped backend's key-dtype capability.

        :func:`repro.kernels.fused.fused_update` consults this flag on
        the *active* backend; the profiler must forward the inner
        backend's answer or profiling would silently widen the keys and
        change what the wrapped backend executes.
        """
        return getattr(self.inner, "fused_accepts_int32", False)

    def fused_update(self, plan, keys, weights=None) -> None:
        """Delegate the whole fused batch, metering it as one seam call.

        ``kernels.rows`` counts the tuple-slots the fused pass covers —
        ``Σ entry.rows × n`` over the plan — so throughput numbers stay
        comparable with the separate path, where the same stream would
        cross the seam once per sketch.
        """
        started = self.clock()
        self.inner.fused_update(plan, keys, weights)
        elapsed = self.clock() - started
        n = int(np.asarray(keys).size)
        slots = sum(entry.rows for entry in plan.entries) * n
        _, nbytes = self._traffic(keys, weights)
        self._record("fused_update", slots, nbytes, elapsed, True)

    # ------------------------------------------------------------------
    # Hashing primitives
    # ------------------------------------------------------------------

    def polynomial_mod_p(self, coefficients, keys):
        """Delegate to the wrapped backend, metering the call."""
        started = self.clock()
        out = self.inner.polynomial_mod_p(coefficients, keys)
        elapsed = self.clock() - started
        slots, nbytes = self._traffic(keys)
        self._record("polynomial_mod_p", slots, nbytes, elapsed, False)
        return out

    def bucket_indices(self, coefficients, keys, buckets):
        """Delegate to the wrapped backend, metering the call."""
        started = self.clock()
        out = self.inner.bucket_indices(coefficients, keys, buckets)
        elapsed = self.clock() - started
        slots, nbytes = self._traffic(keys)
        self._record("bucket_indices", slots, nbytes, elapsed, False)
        return out

    def parity_signs(self, coefficients, keys):
        """Delegate to the wrapped backend, metering the call."""
        started = self.clock()
        out = self.inner.parity_signs(coefficients, keys)
        elapsed = self.clock() - started
        slots, nbytes = self._traffic(keys)
        self._record("parity_signs", slots, nbytes, elapsed, False)
        return out

    def __repr__(self) -> str:
        return f"ProfilingKernelBackend({self.inner!r})"


@contextmanager
def profile_kernels(
    observer: Observer,
    clock: Optional[Callable[[], float]] = None,
) -> Iterator[ProfilingKernelBackend]:
    """Meter every kernel call in the body through *observer*.

    Wraps the currently active backend; restores it on exit.  Counters
    produced inside the body are bit-identical to an unprofiled run (the
    wrapper only measures, never transforms).
    """
    inner = get_backend()
    if isinstance(inner, ProfilingKernelBackend):
        inner = inner.inner
    wrapper = ProfilingKernelBackend(inner, observer, clock)
    set_backend(wrapper)
    try:
        yield wrapper
    finally:
        set_backend(inner)
