"""Metrics, tracing, and profiling spanning every layer of the system.

The reproduction's runtime layers — the online-aggregation engine
(:mod:`repro.engine`), the fault-tolerant streaming runtime
(:mod:`repro.resilience`), the sharded multiprocess coordinator
(:mod:`repro.parallel`), and the kernel seam (:mod:`repro.kernels`) —
all accept an optional ``observer=`` handle defined here.  One
:class:`Observer` per process bundles:

1. **Metrics** (:mod:`.metrics`) — labeled counters, gauges, and
   fixed-bucket histograms in a :class:`MetricsRegistry`, with a plain
   picklable snapshot/merge protocol so per-shard worker registries
   aggregate deterministically in shard order.
2. **Tracing** (:mod:`.tracing`) — explicit ``span("scan.chunk")``
   context managers with deterministic sequential span ids, an
   injectable monotonic clock, and :class:`SpanContext` propagation
   across process boundaries (shipped as plain data inside
   :class:`~repro.parallel.worker.ShardTask`).
3. **Profiling** (:mod:`.profiling`) — a transparent
   :class:`ProfilingKernelBackend` decorator metering every kernel
   primitive (timings, rows, bytes, throughput) without perturbing
   bit-identity.
4. **Quality** (:mod:`.quality`) — :class:`QualityMonitor` comparing
   observed squared error against the Props 9–16 variance bounds, plus
   shed-rate / governor duty-cycle gauges.
5. **Exporters** (:mod:`.export`) — Prometheus text format, Chrome
   ``trace_event`` JSON (one merged timeline across coordinator and
   workers), and JSONL sinks.

Everything is REP001-compliant: timestamps come from injectable
monotonic clocks, ids are sequential — no wall time, pids, or uuids.
The default :data:`NULL_OBSERVER` makes the disabled path near-free
(gated by ``benchmarks/test_observability_overhead.py``).  See
``docs/OBSERVABILITY.md`` for the metric catalog and span taxonomy.
"""

from .export import (
    metrics_to_records,
    spans_to_records,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    validate_metric_name,
)
from .observer import (
    NULL_OBSERVER,
    Observer,
    ObserverSnapshot,
    as_observer,
    worker_observer,
)
from .profiling import ProfilingKernelBackend, profile_kernels
from .quality import QualityBreach, QualityMonitor, observe_shedding
from .tracing import NullTracer, Span, SpanContext, SpanRecord, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_OBSERVER",
    "NullRegistry",
    "NullTracer",
    "Observer",
    "ObserverSnapshot",
    "ProfilingKernelBackend",
    "QualityBreach",
    "QualityMonitor",
    "Span",
    "SpanContext",
    "SpanRecord",
    "Tracer",
    "as_observer",
    "metrics_to_records",
    "observe_shedding",
    "profile_kernels",
    "spans_to_records",
    "to_chrome_trace",
    "to_prometheus",
    "validate_metric_name",
    "worker_observer",
    "write_chrome_trace",
    "write_jsonl",
]
