"""In-memory streaming relations.

A :class:`Relation` is the materialized form of a single-attribute data
stream: an array of integer keys over a finite domain.  It is deliberately
simple — the paper's setting is one join attribute per relation — but it
carries everything the rest of the library needs:

* the tuple-domain view (:attr:`Relation.keys`) consumed by streaming
  samplers and sketch ``update`` paths;
* the frequency-domain view (:meth:`Relation.frequency_vector`) consumed by
  the variance formulas and the fast Monte-Carlo paths;
* random-order scans (:meth:`Relation.shuffled`, :func:`iter_chunks`) which
  are the substrate of online aggregation (Section VI-C): a prefix of a
  random-order scan is exactly a without-replacement sample.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..errors import ConfigurationError, DomainError
from ..frequency import FrequencyVector
from ..rng import SeedLike, as_generator

__all__ = ["Relation", "iter_chunks"]


class Relation:
    """A single-attribute relation over the integer domain ``[0, domain_size)``.

    Parameters
    ----------
    keys:
        1-D integer array; one entry per tuple (the value of the join
        attribute).  Order matters: it is the stream arrival order.
    domain_size:
        Size of the attribute domain.  Defaults to ``max(keys) + 1``.
    name:
        Optional label used in reports (e.g. ``"lineitem"``).
    """

    __slots__ = ("_keys", "_domain_size", "name", "_frequency_cache")

    def __init__(
        self,
        keys,
        domain_size: Optional[int] = None,
        *,
        name: str = "",
        copy: bool = True,
    ) -> None:
        array = np.asarray(keys)
        if array.ndim != 1:
            raise DomainError(f"relation keys must be 1-D, got shape {array.shape}")
        if array.size and not np.issubdtype(array.dtype, np.integer):
            raise DomainError("relation keys must be integers")
        array = array.astype(np.int64, copy=copy)
        if array.size:
            lo, hi = int(array.min()), int(array.max())
            if lo < 0:
                raise DomainError(f"relation keys must be non-negative, saw {lo}")
            if domain_size is None:
                domain_size = hi + 1
            elif hi >= domain_size:
                raise DomainError(
                    f"key {hi} outside declared domain [0, {domain_size})"
                )
        elif domain_size is None:
            domain_size = 0
        if domain_size < 0:
            raise ConfigurationError(f"domain_size must be >= 0, got {domain_size}")
        array.setflags(write=False)
        self._keys = array
        self._domain_size = int(domain_size)
        self.name = name
        self._frequency_cache: Optional[FrequencyVector] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_frequency_vector(
        cls,
        frequencies: FrequencyVector,
        *,
        name: str = "",
        shuffle: bool = False,
        seed: SeedLike = None,
    ) -> "Relation":
        """Materialize a relation with exactly the given frequencies.

        With ``shuffle=False`` tuples arrive sorted by key; with
        ``shuffle=True`` arrival order is a uniform random permutation
        (the precondition for prefix-scan = WOR-sample in Section VI-C).
        """
        keys = frequencies.to_items()
        if shuffle:
            as_generator(seed).shuffle(keys)
        relation = cls(keys, frequencies.domain_size, name=name, copy=False)
        relation._frequency_cache = frequencies
        return relation

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def keys(self) -> np.ndarray:
        """Read-only ``int64`` array of tuple keys in arrival order."""
        return self._keys

    @property
    def domain_size(self) -> int:
        """Size of the attribute domain ``|I|``."""
        return self._domain_size

    def __len__(self) -> int:
        return self._keys.size

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Relation({label and label + ', '}tuples={len(self)}, "
            f"domain_size={self._domain_size})"
        )

    def frequency_vector(self) -> FrequencyVector:
        """The exact frequency vector of the relation (cached)."""
        if self._frequency_cache is None:
            self._frequency_cache = FrequencyVector.from_items(
                self._keys, self._domain_size
            )
        return self._frequency_cache

    # Convenience ground-truth accessors ------------------------------

    def self_join_size(self) -> int:
        """Exact ``F₂ = Σ fᵢ²`` of this relation."""
        return self.frequency_vector().self_join_size()

    def join_size(self, other: "Relation") -> int:
        """Exact ``|self ⋈ other| = Σ fᵢ gᵢ``."""
        if self._domain_size != other._domain_size:
            raise DomainError(
                "join requires matching domains: "
                f"{self._domain_size} vs {other._domain_size}"
            )
        return self.frequency_vector().join_size(other.frequency_vector())

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------

    def shuffled(self, seed: SeedLike = None) -> "Relation":
        """A copy of this relation with tuples in uniform random order."""
        keys = self._keys.copy()
        as_generator(seed).shuffle(keys)
        relation = Relation(keys, self._domain_size, name=self.name, copy=False)
        relation._frequency_cache = self._frequency_cache
        return relation

    def prefix(self, count: int) -> "Relation":
        """The first *count* tuples in arrival order (a WOR sample when the
        arrival order is a uniform random permutation)."""
        if not 0 <= count <= len(self):
            raise ConfigurationError(
                f"prefix length {count} out of range [0, {len(self)}]"
            )
        return Relation(self._keys[:count], self._domain_size, name=self.name)

    def chunks(self, chunk_size: int) -> Iterator[np.ndarray]:
        """Iterate over the keys in contiguous chunks of *chunk_size*."""
        return iter_chunks(self._keys, chunk_size)


def iter_chunks(keys: np.ndarray, chunk_size: int) -> Iterator[np.ndarray]:
    """Yield contiguous slices of *keys* with at most *chunk_size* entries."""
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, keys.size, chunk_size):
        yield keys[start : start + chunk_size]
