"""Distribution-drift generators for monitoring scenarios.

The windowed-monitoring extension (``repro.core.windows``) and the drift
example need streams whose key distribution *changes*; these generators
produce the standard shapes:

* :func:`shifted_zipf_relation` — the same Zipf profile translated within
  the key space (a "key-space rotation": same traffic volume and shape,
  different identities — the classic cache-busting / re-sharding event);
* :func:`mixture_relation` — an interpolation between two distributions
  (gradual drift: a fraction ``weight`` of tuples come from the new
  distribution);
* :func:`drifting_stream` — a multi-phase concatenation with per-phase
  specs, for end-to-end monitor tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, as_generator
from .base import Relation
from .synthetic import ZipfDistribution

__all__ = ["shifted_zipf_relation", "mixture_relation", "drifting_stream"]


def shifted_zipf_relation(
    n_tuples: int,
    domain_size: int,
    skew: float,
    *,
    shift: int,
    seed: SeedLike = None,
    name: str = "",
) -> Relation:
    """A Zipf relation whose rank→value mapping is rotated by *shift*.

    Rank ``r`` maps to value ``(r + shift) mod domain_size``, so two
    relations with different shifts have identical frequency *profiles*
    but (for ``shift`` larger than the heavy-hitter span) nearly disjoint
    heavy keys — maximal drift at constant volume.
    """
    if not 0 <= shift < domain_size:
        raise ConfigurationError(
            f"shift must be in [0, {domain_size}), got {shift}"
        )
    rng = as_generator(seed)
    distribution = ZipfDistribution(domain_size, skew, shuffle_values=False)
    ranks = distribution.sample(n_tuples, rng)
    keys = (ranks + np.int64(shift)) % np.int64(domain_size)
    return Relation(keys, domain_size, name=name, copy=False)


def mixture_relation(
    n_tuples: int,
    old: ZipfDistribution,
    new: ZipfDistribution,
    weight: float,
    *,
    seed: SeedLike = None,
    name: str = "",
) -> Relation:
    """Tuples drawn from ``(1−weight)·old + weight·new``.

    Both distributions must share a domain.  ``weight = 0`` is pure old
    traffic, ``weight = 1`` pure new — sweeping it simulates gradual
    drift.
    """
    if not 0 <= weight <= 1:
        raise ConfigurationError(f"weight must be in [0, 1], got {weight}")
    if old.domain_size != new.domain_size:
        raise ConfigurationError(
            "mixture components must share a domain: "
            f"{old.domain_size} vs {new.domain_size}"
        )
    rng = as_generator(seed)
    from_new = int(rng.binomial(n_tuples, weight))
    keys = np.concatenate(
        [
            old.sample(n_tuples - from_new, rng),
            new.sample(from_new, rng),
        ]
    )
    rng.shuffle(keys)
    return Relation(keys, old.domain_size, name=name, copy=False)


def drifting_stream(
    phases: Sequence[tuple[int, ZipfDistribution]],
    *,
    seed: SeedLike = None,
    name: str = "",
) -> Relation:
    """Concatenate phases of ``(n_tuples, distribution)`` into one stream.

    Phase boundaries are where a windowed monitor should flag drift; all
    distributions must share a domain.
    """
    if not phases:
        raise ConfigurationError("at least one phase is required")
    domain = phases[0][1].domain_size
    for _, distribution in phases:
        if distribution.domain_size != domain:
            raise ConfigurationError("all phases must share a domain")
    rng = as_generator(seed)
    chunks = []
    for n_tuples, distribution in phases:
        if n_tuples < 0:
            raise ConfigurationError(f"phase length must be >= 0, got {n_tuples}")
        chunks.append(distribution.sample(n_tuples, rng))
    keys = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    return Relation(keys, domain, name=name, copy=False)
