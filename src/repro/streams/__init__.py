"""Data-stream substrate: relations, synthetic generators, TPC-H dbgen-lite.

The paper's experiments (Section VII) run over two kinds of data:

* synthetic single-attribute streams drawn from Zipfian distributions with
  skew ``z ∈ [0, 5]`` over a domain of 10⁶ values (10⁷–10⁸ tuples), and
* the TPC-H scale-1 dataset (relations ``lineitem`` and ``orders`` joined on
  the order key).

This subpackage provides both: :mod:`~repro.streams.synthetic` generates
Zipf/uniform relations at any scale, and :mod:`~repro.streams.tpch` is a
self-contained ``dbgen``-lite that reproduces the structural properties of
the TPC-H join columns (see DESIGN.md §3 for the substitution rationale).
:class:`~repro.streams.base.Relation` is the in-memory representation shared
by samplers, sketches, and the online-aggregation engine.
"""

from .arrival import (
    ServiceModel,
    SimulationResult,
    poisson_arrivals,
    simulate_backlog,
    sustainable_rate,
)
from .base import Relation, iter_chunks
from .drift import drifting_stream, mixture_relation, shifted_zipf_relation
from .io import (
    read_stream,
    stream_domain_size,
    stream_length,
    stream_to_relation,
    write_stream,
)
from .synthetic import (
    ZipfDistribution,
    make_join_pair,
    uniform_relation,
    zipf_frequency_vector,
    zipf_relation,
)
from .tpch import TpchTables, generate_tpch

__all__ = [
    "Relation",
    "iter_chunks",
    "ZipfDistribution",
    "zipf_relation",
    "zipf_frequency_vector",
    "uniform_relation",
    "make_join_pair",
    "TpchTables",
    "generate_tpch",
    "write_stream",
    "read_stream",
    "stream_length",
    "stream_domain_size",
    "stream_to_relation",
    "poisson_arrivals",
    "ServiceModel",
    "SimulationResult",
    "simulate_backlog",
    "sustainable_rate",
    "shifted_zipf_relation",
    "mixture_relation",
    "drifting_stream",
]
