"""Synthetic TPC-H generator ("dbgen-lite") for the join-column workload.

The paper's without-replacement experiments (Section VII-C, Figs 7–8) run on
TPC-H scale 1: the size of join ``lineitem ⋈ orders`` on the order key, and
the second frequency moment of ``lineitem.l_orderkey``.  We cannot ship the
TPC-H ``dbgen`` tool, so this module generates data with the same structural
properties of the *join columns*, which is all those experiments exercise:

* **orders**: ``o_orderkey`` is unique per order, and sparse within its
  domain — real dbgen populates 8 keys out of every 32 consecutive values;
  we reproduce that bit pattern exactly.
* **lineitem**: each order has between 1 and 7 line items (uniformly, as in
  dbgen), so ``l_orderkey`` frequencies are in ``{1, …, 7}`` with mean 4.

Consequences that the experiments rely on and that this generator preserves:

* ``|lineitem ⋈ orders| = |lineitem|`` exactly (foreign-key join: every
  lineitem matches exactly one order),
* ``F₂(l_orderkey) = Σ Lᵢ²`` where ``Lᵢ ~ U{1..7}`` — a near-uniform,
  low-skew frequency profile, which is why the paper's Figs 7–8 behave like
  the low-skew synthetic cases.

At TPC-H scale factor ``sf`` real dbgen creates ``1,500,000 · sf`` orders;
``orders_per_sf`` rescales that so laptop-sized experiments stay fast while
keeping every structural property intact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, as_generator
from .base import Relation

__all__ = ["TpchTables", "generate_tpch"]

#: Orders generated per unit of scale factor by the real dbgen.
DBGEN_ORDERS_PER_SF = 1_500_000

#: dbgen populates 8 order keys out of every 32 consecutive key values:
#: within each block of 32, keys 0–7 exist and 8–31 are skipped.
_KEYS_PER_BLOCK = 8
_BLOCK_SPAN = 32

#: Line items per order are uniform on {1, ..., 7} in dbgen.
MAX_LINES_PER_ORDER = 7


@dataclass(frozen=True)
class TpchTables:
    """The join-column projection of the two TPC-H relations.

    Attributes
    ----------
    orders:
        Relation of ``o_orderkey`` values (each key exactly once).
    lineitem:
        Relation of ``l_orderkey`` values (each order key repeated once per
        line item, 1–7 times).
    scale_factor:
        The nominal TPC-H scale factor requested.
    """

    orders: Relation
    lineitem: Relation
    scale_factor: float

    @property
    def n_orders(self) -> int:
        """Number of orders (= number of distinct order keys)."""
        return len(self.orders)

    @property
    def n_lineitems(self) -> int:
        """Number of lineitem tuples."""
        return len(self.lineitem)

    def exact_join_size(self) -> int:
        """``|lineitem ⋈ orders|`` — equals ``n_lineitems`` by construction."""
        return self.lineitem.join_size(self.orders)

    def exact_lineitem_f2(self) -> int:
        """``F₂`` of ``l_orderkey`` — ground truth for Fig 8."""
        return self.lineitem.self_join_size()


def _sparse_orderkeys(n_orders: int) -> np.ndarray:
    """The first *n_orders* order keys with dbgen's sparse bit pattern."""
    blocks, remainder = divmod(n_orders, _KEYS_PER_BLOCK)
    base = np.arange(blocks + (1 if remainder else 0), dtype=np.int64) * _BLOCK_SPAN
    keys = (base[:, None] + np.arange(_KEYS_PER_BLOCK, dtype=np.int64)).ravel()
    return keys[:n_orders]


def generate_tpch(
    scale_factor: float = 0.01,
    *,
    orders_per_sf: int = DBGEN_ORDERS_PER_SF,
    seed: SeedLike = None,
    shuffle: bool = True,
) -> TpchTables:
    """Generate the join-column projection of TPC-H ``orders``/``lineitem``.

    Parameters
    ----------
    scale_factor:
        Nominal TPC-H scale factor.  ``scale_factor=1`` with the default
        ``orders_per_sf`` matches real dbgen row counts (1.5M orders, ~6M
        lineitems) — large; the experiment defaults use a smaller scale.
    orders_per_sf:
        Orders per unit scale factor; lower it to shrink the dataset while
        keeping all structural properties.
    seed:
        Drives the per-order line counts and the tuple shuffles.
    shuffle:
        Randomize tuple order (required for WOR prefix scans, Section VI-C).

    Returns
    -------
    TpchTables
        Both relations over a shared order-key domain.
    """
    if scale_factor <= 0:
        raise ConfigurationError(f"scale_factor must be > 0, got {scale_factor}")
    if orders_per_sf < 1:
        raise ConfigurationError(f"orders_per_sf must be >= 1, got {orders_per_sf}")
    n_orders = max(1, int(round(scale_factor * orders_per_sf)))
    rng = as_generator(seed)

    orderkeys = _sparse_orderkeys(n_orders)
    domain_size = int(orderkeys[-1]) + 1

    lines_per_order = rng.integers(
        1, MAX_LINES_PER_ORDER + 1, size=n_orders, dtype=np.int64
    )
    lineitem_keys = np.repeat(orderkeys, lines_per_order)

    orders_view = orderkeys
    if shuffle:
        orders_view = orderkeys.copy()
        rng.shuffle(orders_view)
        rng.shuffle(lineitem_keys)

    orders = Relation(orders_view, domain_size, name="orders", copy=False)
    lineitem = Relation(lineitem_keys, domain_size, name="lineitem", copy=False)
    return TpchTables(orders=orders, lineitem=lineitem, scale_factor=scale_factor)
