"""Arrival-process simulation: when is a stream "too fast to sketch"?

The paper's motivation (Sections I, VI-A) is operational: sketch updates
take time, streams arrive at given rates, and when the arrival rate
exceeds the service rate the system must shed load or drop tuples
uncontrollably.  We cannot ship the "networking equipment with billions of
tuples per second"; this module simulates the queueing behaviour so the
claim becomes measurable:

* :func:`poisson_arrivals` — a Poisson arrival process at a target rate;
* :class:`ServiceModel` — per-tuple costs: every arrival pays the filter
  cost (the skip-ahead shedder's amortized per-tuple work), kept tuples
  additionally pay the sketch-update cost;
* :func:`simulate_backlog` — single-server queue with a finite buffer:
  tuples that arrive to a full buffer are *lost* (uncontrolled drops, the
  failure mode shedding exists to prevent);
* :func:`sustainable_rate` — the analytic capacity ``1/(t_filter +
  p·t_sketch)``, the rate below which the queue is stable.

The point the simulation makes (``benchmarks/test_sustainability.py``):
with shedding at probability ``p``, the sustainable rate grows ≈ ``1/p``
once the sketch cost dominates — and unlike uncontrolled drops, what the
shedder removes is a *Bernoulli sample*, so estimates stay unbiased with
known error (the whole point of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, as_generator

__all__ = [
    "poisson_arrivals",
    "ServiceModel",
    "SimulationResult",
    "simulate_backlog",
    "sustainable_rate",
]


def poisson_arrivals(
    rate: float, duration: float, seed: SeedLike = None
) -> np.ndarray:
    """Arrival timestamps of a Poisson process on ``[0, duration)``.

    *rate* is in tuples per unit time.  Returns a sorted float64 array.
    """
    if rate <= 0:
        raise ConfigurationError(f"rate must be > 0, got {rate}")
    if duration <= 0:
        raise ConfigurationError(f"duration must be > 0, got {duration}")
    rng = as_generator(seed)
    count = rng.poisson(rate * duration)
    return np.sort(rng.uniform(0.0, duration, size=count))


@dataclass(frozen=True)
class ServiceModel:
    """Per-tuple service costs of the shedder + sketch pipeline.

    ``filter_cost`` is paid by *every* arriving tuple (amortized skip-ahead
    bookkeeping — small); ``sketch_cost`` is paid only by kept tuples
    (hashing + counter update — the dominant term).  Units are arbitrary
    but must match the arrival timestamps.
    """

    filter_cost: float
    sketch_cost: float

    def __post_init__(self) -> None:
        if self.filter_cost < 0 or self.sketch_cost <= 0:
            raise ConfigurationError(
                "filter_cost must be >= 0 and sketch_cost > 0"
            )


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one queue simulation."""

    arrivals: int
    sketched: int
    shed: int
    lost: int
    max_backlog: int
    busy_time: float
    duration: float

    @property
    def loss_fraction(self) -> float:
        """Uncontrolled drops as a fraction of arrivals."""
        return self.lost / self.arrivals if self.arrivals else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of time the server was busy."""
        return self.busy_time / self.duration if self.duration else 0.0


def sustainable_rate(model: ServiceModel, keep_probability: float) -> float:
    """Analytic stable-queue capacity: ``1 / (t_filter + p·t_sketch)``."""
    if not 0 < keep_probability <= 1:
        raise ConfigurationError(
            f"keep probability must be in (0, 1], got {keep_probability}"
        )
    return 1.0 / (model.filter_cost + keep_probability * model.sketch_cost)


def simulate_backlog(
    arrivals: np.ndarray,
    model: ServiceModel,
    keep_probability: float,
    *,
    buffer_capacity: int = 1024,
    seed: SeedLike = None,
) -> SimulationResult:
    """Single-server FIFO queue with a finite buffer and Bernoulli shedding.

    Every arriving tuple that finds the buffer full is **lost** (never
    enters the pipeline).  Buffered tuples pay the filter cost; those the
    shedder keeps also pay the sketch cost.  Returns counts, the peak
    backlog, and server busy time.
    """
    if not 0 < keep_probability <= 1:
        raise ConfigurationError(
            f"keep probability must be in (0, 1], got {keep_probability}"
        )
    if buffer_capacity < 1:
        raise ConfigurationError(
            f"buffer_capacity must be >= 1, got {buffer_capacity}"
        )
    arrivals = np.asarray(arrivals, dtype=np.float64)
    if arrivals.size and np.any(np.diff(arrivals) < 0):
        raise ConfigurationError("arrival times must be sorted")
    rng = as_generator(seed)
    kept_mask = rng.random(arrivals.size) < keep_probability
    service_times = np.where(
        kept_mask, model.filter_cost + model.sketch_cost, model.filter_cost
    )

    # Event-driven pass: server_free marks when the server finishes its
    # current backlog.  The backlog (tuples admitted but not yet finished)
    # is tracked by comparing each arrival against recorded finish times.
    finish_times = np.empty(arrivals.size, dtype=np.float64)
    admitted = np.zeros(arrivals.size, dtype=bool)
    server_free = 0.0
    admitted_count = 0
    lost = 0
    max_backlog = 0
    busy_time = 0.0
    head = 0  # index of the oldest admitted-but-unfinished tuple
    admitted_finish: list[float] = []
    for index in range(arrivals.size):
        now = arrivals[index]
        # Retire finished tuples from the backlog window.
        while head < len(admitted_finish) and admitted_finish[head] <= now:
            head += 1
        backlog = len(admitted_finish) - head
        if backlog >= buffer_capacity:
            lost += 1
            continue
        start = max(now, server_free)
        server_free = start + service_times[index]
        busy_time += service_times[index]
        admitted_finish.append(server_free)
        finish_times[admitted_count] = server_free
        admitted[index] = True
        admitted_count += 1
        max_backlog = max(max_backlog, backlog + 1)

    sketched = int((kept_mask & admitted).sum())
    shed = admitted_count - sketched
    duration = float(
        max(arrivals[-1] if arrivals.size else 0.0, server_free)
    )
    return SimulationResult(
        arrivals=int(arrivals.size),
        sketched=sketched,
        shed=shed,
        lost=lost,
        max_backlog=max_backlog,
        busy_time=float(busy_time),
        duration=duration,
    )
