"""File-backed streams: spill relations to disk, re-stream them in chunks.

Streaming systems rarely hold their input in memory; this module provides
the minimal disk substrate the examples and larger-than-memory experiments
need:

* :func:`write_stream` — append key chunks to a binary stream file;
* :func:`read_stream` — iterate a stream file in bounded-memory chunks
  (the shape every consumer in this library accepts);
* :func:`iter_chunks` — the reusable chunker behind :func:`read_stream`,
  with an explicit cursor (``start``/``limit``) so dataplane sources can
  resume or re-chunk a file without re-reading from offset 0;
* :func:`stream_to_relation` — materialize a (small enough) stream file.

Format: a tiny fixed header (magic, version, domain size) followed by raw
little-endian ``int64`` keys.  The format is append-friendly: concatenating
the key sections of two files over the same domain is a valid stream.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

import numpy as np

from ..errors import ConfigurationError, DomainError
from .base import Relation

__all__ = [
    "write_stream",
    "read_stream",
    "iter_chunks",
    "stream_to_relation",
    "stream_length",
]

_MAGIC = b"RPRS"
_VERSION = 1
_HEADER = struct.Struct("<4sIQ")  # magic, version, domain_size

PathLike = Union[str, Path]


def write_stream(
    path: PathLike,
    chunks: Iterable[np.ndarray],
    domain_size: int,
    *,
    append: bool = False,
) -> int:
    """Write key chunks to a stream file; returns the tuples written.

    With ``append=True`` the file must already exist with a matching
    domain; new keys are appended after the existing ones.
    """
    if domain_size < 1:
        raise ConfigurationError(f"domain_size must be >= 1, got {domain_size}")
    path = Path(path)
    if append:
        existing = _read_header(path)
        if existing != domain_size:
            raise DomainError(
                f"cannot append domain {domain_size} keys to a stream over "
                f"domain {existing}"
            )
        handle = path.open("ab")
    else:
        handle = path.open("wb")
        handle.write(_HEADER.pack(_MAGIC, _VERSION, domain_size))
    written = 0
    with handle:
        for chunk in chunks:
            keys = np.ascontiguousarray(chunk, dtype="<i8")
            if keys.ndim != 1:
                raise DomainError(f"chunks must be 1-D, got shape {keys.shape}")
            if keys.size:
                lo, hi = int(keys.min()), int(keys.max())
                if lo < 0 or hi >= domain_size:
                    raise DomainError(
                        f"key out of domain [0, {domain_size}): "
                        f"range [{lo}, {hi}]"
                    )
            handle.write(keys.tobytes())
            written += keys.size
    return written


def _read_header(path: Path) -> int:
    with path.open("rb") as handle:
        raw = handle.read(_HEADER.size)
    if len(raw) != _HEADER.size:
        raise ConfigurationError(f"{path} is not a stream file (truncated header)")
    magic, version, domain_size = _HEADER.unpack(raw)
    if magic != _MAGIC:
        raise ConfigurationError(f"{path} is not a stream file (bad magic)")
    if version != _VERSION:
        raise ConfigurationError(
            f"unsupported stream file version {version} in {path}"
        )
    return int(domain_size)


def stream_length(path: PathLike) -> int:
    """Number of tuples stored in a stream file (O(1), from the file size)."""
    path = Path(path)
    _read_header(path)
    payload = path.stat().st_size - _HEADER.size
    if payload % 8:
        raise ConfigurationError(f"{path} has a truncated key section")
    return payload // 8


def _validate_chunk_size(chunk_size: int) -> None:
    """Reject non-positive chunk sizes with an explicit error."""
    if chunk_size <= 0:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")


def iter_chunks(
    path: PathLike,
    chunk_size: int = 65_536,
    *,
    start: int = 0,
    limit: Optional[int] = None,
) -> Iterator[np.ndarray]:
    """Iterate a window of a stream file's keys in bounded-memory chunks.

    The reusable chunker behind :func:`read_stream`: *start* skips the
    first *start* tuples with an ``O(1)`` seek (no re-read of the prefix)
    and *limit*, when given, caps the total tuples yielded — together
    they let a source re-chunk any slice of a file, e.g. to resume a
    recovered scan from its checkpointed cursor or to fan a file out to
    range-partitioned readers.
    """
    _validate_chunk_size(chunk_size)
    if start < 0:
        raise ConfigurationError(f"start must be >= 0, got {start}")
    if limit is not None and limit < 0:
        raise ConfigurationError(f"limit must be >= 0, got {limit}")
    path = Path(path)
    _read_header(path)
    remaining = limit
    with path.open("rb") as handle:
        handle.seek(_HEADER.size + 8 * start)
        while remaining is None or remaining > 0:
            request = chunk_size if remaining is None else min(chunk_size, remaining)
            raw = handle.read(8 * request)
            if not raw:
                return
            if len(raw) % 8:
                raise ConfigurationError(f"{path} has a truncated key section")
            keys = np.frombuffer(raw, dtype="<i8").astype(np.int64)
            if remaining is not None:
                remaining -= keys.size
            yield keys


def read_stream(
    path: PathLike, chunk_size: int = 65_536, *, start: int = 0
) -> Iterator[np.ndarray]:
    """Iterate a stream file's keys in chunks of at most *chunk_size*.

    The first yielded object is preceded by header validation; use
    :func:`stream_domain_size` to learn the domain before consuming.

    *start* skips the first *start* tuples (an ``O(1)`` seek) — the hook
    that lets a recovered run resume a file-backed scan from its
    checkpointed stream cursor instead of re-reading the prefix.
    Delegates to :func:`iter_chunks`, which additionally supports a
    ``limit``.
    """
    return iter_chunks(path, chunk_size, start=start)


def stream_domain_size(path: PathLike) -> int:
    """The domain size recorded in a stream file's header."""
    return _read_header(Path(path))


def stream_to_relation(
    path: PathLike, *, name: str = "", max_tuples: Optional[int] = None
) -> Relation:
    """Materialize a stream file as an in-memory :class:`Relation`.

    Refuses files longer than *max_tuples* when given — a guard for
    accidentally materializing larger-than-memory streams.
    """
    path = Path(path)
    domain_size = _read_header(path)
    length = stream_length(path)
    if max_tuples is not None and length > max_tuples:
        raise ConfigurationError(
            f"stream holds {length} tuples, above the max_tuples={max_tuples} "
            "guard; consume it with read_stream() instead"
        )
    chunks = list(read_stream(path))
    keys = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    )
    return Relation(keys, domain_size, name=name, copy=False)


__all__.append("stream_domain_size")
