"""Synthetic Zipfian data generators.

The paper's synthetic experiments (Section VII) use streams "generated from
a Zipfian distribution with the coefficient ranging between 0 (uniform) and
5 (skewed)" over a domain of 10⁶ values.  This module reproduces that
workload generator at any scale:

* :class:`ZipfDistribution` — the distribution object: probabilities,
  random tuple draws, random or deterministic ("expected") frequency
  vectors;
* :func:`zipf_relation` / :func:`uniform_relation` — materialized relations
  for end-to-end runs;
* :func:`zipf_frequency_vector` — deterministic frequency vectors used by
  the analytic variance figures (Figs 1–2), where no randomness in the data
  is wanted.

A note on value/rank assignment: a plain Zipf generator puts the heaviest
frequency on value 0, the next on value 1, and so on.  Real data has no such
correlation between a value's magnitude and its frequency, and hash-based
sketches do not care, but to keep the generator honest ``shuffle_values=True``
(default) applies a random permutation of the domain to decorrelate them.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..frequency import FrequencyVector
from ..rng import SeedLike, as_generator
from .base import Relation

__all__ = [
    "ZipfDistribution",
    "zipf_relation",
    "zipf_frequency_vector",
    "uniform_relation",
]


class ZipfDistribution:
    """Zipfian distribution over ``[0, domain_size)`` with skew ``z >= 0``.

    ``P(rank r) ∝ 1 / (r + 1)^z`` for ranks ``r = 0 … domain_size − 1``.
    ``z = 0`` is the uniform distribution; larger ``z`` concentrates mass on
    a few heavy hitters (the paper sweeps ``z`` up to 5).

    Parameters
    ----------
    domain_size:
        Number of distinct values.
    skew:
        Zipf coefficient ``z``.
    shuffle_values:
        Apply a random permutation mapping ranks to domain values so value
        identity is independent of frequency rank.
    seed:
        Seed for the value permutation only (draws take their own RNG).
    """

    __slots__ = ("domain_size", "skew", "_probabilities", "_permutation")

    def __init__(
        self,
        domain_size: int,
        skew: float,
        *,
        shuffle_values: bool = True,
        seed: SeedLike = None,
    ) -> None:
        if domain_size < 1:
            raise ConfigurationError(f"domain_size must be >= 1, got {domain_size}")
        if skew < 0:
            raise ConfigurationError(f"Zipf skew must be >= 0, got {skew}")
        self.domain_size = int(domain_size)
        self.skew = float(skew)
        ranks = np.arange(1, domain_size + 1, dtype=np.float64)
        weights = ranks ** (-self.skew)
        self._probabilities = weights / weights.sum()
        if shuffle_values:
            self._permutation = as_generator(seed).permutation(domain_size)
        else:
            self._permutation = None

    # ------------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Probability of each domain *value* (after any permutation)."""
        if self._permutation is None:
            return self._probabilities.copy()
        out = np.empty_like(self._probabilities)
        out[self._permutation] = self._probabilities
        return out

    def sample(self, n_tuples: int, seed: SeedLike = None) -> np.ndarray:
        """Draw *n_tuples* i.i.d. keys; returns an ``int64`` array.

        Implemented as a multinomial draw over ranks followed by expansion
        and shuffling — equivalent in distribution to ``n_tuples``
        independent categorical draws but far faster for large streams.
        """
        if n_tuples < 0:
            raise ConfigurationError(f"n_tuples must be >= 0, got {n_tuples}")
        rng = as_generator(seed)
        counts = rng.multinomial(n_tuples, self._probabilities)
        ranks = np.repeat(np.arange(self.domain_size, dtype=np.int64), counts)
        rng.shuffle(ranks)
        return self._ranks_to_values(ranks)

    def frequency_vector(
        self, n_tuples: int, seed: SeedLike = None
    ) -> FrequencyVector:
        """A random frequency vector of an *n_tuples*-tuple i.i.d. stream."""
        rng = as_generator(seed)
        counts = rng.multinomial(n_tuples, self._probabilities)
        return FrequencyVector(self._permute_counts(counts), copy=False)

    def expected_frequency_vector(self, n_tuples: int) -> FrequencyVector:
        """Deterministic frequencies: ``n·pᵢ`` rounded, preserving the total.

        Used for the analytic variance figures (Figs 1–2) where the paper
        evaluates formulas on a fixed Zipf frequency profile.  Largest-
        remainder rounding keeps ``Σ fᵢ = n_tuples`` exactly.
        """
        if n_tuples < 0:
            raise ConfigurationError(f"n_tuples must be >= 0, got {n_tuples}")
        exact = self._probabilities * n_tuples
        floors = np.floor(exact).astype(np.int64)
        deficit = int(n_tuples - floors.sum())
        if deficit > 0:
            remainders = exact - floors
            top = np.argsort(remainders)[::-1][:deficit]
            floors[top] += 1
        return FrequencyVector(self._permute_counts(floors), copy=False)

    # ------------------------------------------------------------------

    def _ranks_to_values(self, ranks: np.ndarray) -> np.ndarray:
        if self._permutation is None:
            return ranks
        return self._permutation[ranks]

    def _permute_counts(self, counts: np.ndarray) -> np.ndarray:
        if self._permutation is None:
            return counts.astype(np.int64, copy=False)
        out = np.zeros(self.domain_size, dtype=np.int64)
        out[self._permutation] = counts
        return out

    def __repr__(self) -> str:
        return f"ZipfDistribution(domain_size={self.domain_size}, skew={self.skew})"


def zipf_relation(
    n_tuples: int,
    domain_size: int,
    skew: float,
    *,
    seed: SeedLike = None,
    shuffle_values: bool = True,
    name: str = "",
) -> Relation:
    """Generate a Zipfian relation (the paper's synthetic workload).

    A single *seed* drives both the value permutation and the draws, so the
    call is fully reproducible.
    """
    rng = as_generator(seed)
    distribution = ZipfDistribution(
        domain_size, skew, shuffle_values=shuffle_values, seed=rng
    )
    keys = distribution.sample(n_tuples, rng)
    return Relation(keys, domain_size, name=name, copy=False)


def zipf_frequency_vector(
    n_tuples: int,
    domain_size: int,
    skew: float,
    *,
    seed: SeedLike = None,
    expected: bool = False,
    shuffle_values: bool = True,
) -> FrequencyVector:
    """Zipf frequency vector, random (default) or deterministic-expected.

    ``shuffle_values=False`` keeps the rank→value identity mapping — two
    vectors drawn this way have their heavy hitters on the *same* values,
    which is the paper's size-of-join setup (independently drawn streams
    from the same Zipf distribution).  The deterministic (``expected``)
    variant never permutes values: the variance formulas are symmetric in
    the domain, so permutation is irrelevant there.
    """
    if expected:
        distribution = ZipfDistribution(domain_size, skew, shuffle_values=False)
        return distribution.expected_frequency_vector(n_tuples)
    rng = as_generator(seed)
    distribution = ZipfDistribution(
        domain_size, skew, shuffle_values=shuffle_values, seed=rng
    )
    return distribution.frequency_vector(n_tuples, rng)


def uniform_relation(
    n_tuples: int,
    domain_size: int,
    *,
    seed: SeedLike = None,
    name: str = "",
) -> Relation:
    """Uniform relation — the ``skew = 0`` corner of the Zipf sweep."""
    rng = as_generator(seed)
    keys = rng.integers(0, domain_size, size=n_tuples, dtype=np.int64)
    return Relation(keys, domain_size, name=name, copy=False)


def make_join_pair(
    n_tuples: int,
    domain_size: int,
    skew: float,
    *,
    seed: SeedLike = None,
    name_f: str = "F",
    name_g: str = "G",
) -> tuple[Relation, Relation]:
    """Two *independently generated* Zipf relations over a shared domain.

    Matches the paper's size-of-join setup: "the tuples in the two relations
    are generated completely independent" — including independent value
    permutations, so heavy hitters of F and G land on different values.
    """
    rng = as_generator(seed)
    f = zipf_relation(
        n_tuples, domain_size, skew, seed=rng, shuffle_values=True, name=name_f
    )
    g = zipf_relation(
        n_tuples, domain_size, skew, seed=rng, shuffle_values=True, name=name_g
    )
    return f, g


__all__.append("make_join_pair")
