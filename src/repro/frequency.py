"""Frequency-domain representation of streaming relations.

The analysis in the paper (Sections II–V) is carried out entirely in the
*frequency domain*: a single-attribute relation ``F`` over an integer domain
``I = [0, domain_size)`` is identified with its frequency vector ``f`` where
``f_i`` counts the tuples with attribute value ``i``.  Every aggregate the
paper studies is a polynomial in the entries of one or two frequency
vectors:

* size of join        ``|F ⋈ G| = Σᵢ fᵢ gᵢ``                 (Eq. 1)
* self-join size      ``F₂(F)  = Σᵢ fᵢ²``
* the variance formulas (Props 3–16) are combinations of *power sums*
  ``Σᵢ fᵢᵃ`` and *cross power sums* ``Σᵢ fᵢᵃ gᵢᵇ``.

:class:`FrequencyVector` wraps a dense ``numpy`` integer array and provides
those quantities exactly (as Python ints, so no overflow for the large
moments that appear with skewed data).  It is the lingua franca between the
stream generators, the samplers, the sketches, and the variance calculators.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .errors import DomainError

__all__ = ["FrequencyVector", "cross_power_sum"]


def _as_int(value) -> int:
    """Convert a numpy scalar/array-sum to an exact Python int."""
    return int(value)


class FrequencyVector:
    """Exact frequency vector of a relation over ``[0, domain_size)``.

    Instances are immutable by convention: all arithmetic helpers return new
    objects or plain numbers and the underlying array should not be modified
    (it is exposed read-only through :attr:`counts`).

    Parameters
    ----------
    counts:
        Non-negative integer array of length ``domain_size``; ``counts[i]``
        is the multiplicity of domain value ``i``.
    copy:
        Copy the input array (default) so later caller-side mutation cannot
        corrupt the vector.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts, *, copy: bool = True) -> None:
        array = np.asarray(counts)
        if array.ndim != 1:
            raise DomainError(f"frequency vector must be 1-D, got shape {array.shape}")
        if not np.issubdtype(array.dtype, np.integer):
            if not np.all(array == np.floor(array)):
                raise DomainError("frequency counts must be integers")
            array = array.astype(np.int64)
        elif copy:
            array = array.copy()
        if array.size and int(array.min()) < 0:
            raise DomainError("frequency counts must be non-negative")
        array = array.astype(np.int64, copy=False)
        array.setflags(write=False)
        self._counts = array

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_items(cls, items: Iterable[int], domain_size: int) -> "FrequencyVector":
        """Build the frequency vector of a stream of keys.

        Raises :class:`DomainError` if any key falls outside
        ``[0, domain_size)``.
        """
        keys = np.asarray(list(items) if not isinstance(items, np.ndarray) else items)
        if keys.size == 0:
            return cls(np.zeros(domain_size, dtype=np.int64), copy=False)
        if not np.issubdtype(keys.dtype, np.integer):
            raise DomainError("stream keys must be integers")
        lo, hi = int(keys.min()), int(keys.max())
        if lo < 0 or hi >= domain_size:
            raise DomainError(
                f"stream key out of domain [0, {domain_size}): saw range [{lo}, {hi}]"
            )
        counts = np.bincount(keys, minlength=domain_size).astype(np.int64)
        return cls(counts, copy=False)

    @classmethod
    def zeros(cls, domain_size: int) -> "FrequencyVector":
        """The empty relation over ``[0, domain_size)``."""
        return cls(np.zeros(domain_size, dtype=np.int64), copy=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def counts(self) -> np.ndarray:
        """The underlying (read-only) ``int64`` array of multiplicities."""
        return self._counts

    @property
    def domain_size(self) -> int:
        """Size of the value domain ``|I|``."""
        return self._counts.size

    @property
    def total(self) -> int:
        """Number of tuples in the relation, ``|F| = Σᵢ fᵢ`` (a.k.a. F₁)."""
        return _as_int(self._counts.sum(dtype=object))

    @property
    def support_size(self) -> int:
        """Number of distinct values present, ``F₀``."""
        return int(np.count_nonzero(self._counts))

    def __len__(self) -> int:
        return self._counts.size

    def __getitem__(self, i: int) -> int:
        return int(self._counts[i])

    def __iter__(self) -> Iterator[int]:
        return iter(int(c) for c in self._counts)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FrequencyVector):
            return NotImplemented
        return self._counts.size == other._counts.size and bool(
            np.array_equal(self._counts, other._counts)
        )

    def __hash__(self) -> int:
        return hash((self._counts.size, self._counts.tobytes()))

    def __repr__(self) -> str:
        return (
            f"FrequencyVector(domain_size={self.domain_size}, total={self.total}, "
            f"support={self.support_size})"
        )

    # ------------------------------------------------------------------
    # Power sums / frequency moments
    # ------------------------------------------------------------------

    def power_sum(self, order: int) -> int:
        """Exact power sum ``Σᵢ fᵢ^order`` as a Python int.

        ``power_sum(0)`` counts *all* domain points (including absent ones)
        only when every count is positive; following the streaming
        literature we define it as the support size ``F₀`` instead.
        """
        if order < 0:
            raise ValueError(f"power-sum order must be non-negative, got {order}")
        if order == 0:
            return self.support_size
        if order == 1:
            return self.total
        # Work on the support only and in Python-int space for exactness:
        # with skewed data f_i^4 overflows int64 easily.
        support = self._counts[self._counts > 0]
        if order <= 3 and support.size and int(support.max()) < 2 ** (63 // order) - 1:
            return _as_int((support.astype(np.int64) ** order).sum(dtype=object))
        return sum(int(c) ** order for c in support)

    @property
    def f1(self) -> int:
        """First frequency moment ``Σ fᵢ`` (stream length)."""
        return self.power_sum(1)

    @property
    def f2(self) -> int:
        """Second frequency moment ``Σ fᵢ²`` (self-join size)."""
        return self.power_sum(2)

    @property
    def f3(self) -> int:
        """Third frequency moment ``Σ fᵢ³``."""
        return self.power_sum(3)

    @property
    def f4(self) -> int:
        """Fourth frequency moment ``Σ fᵢ⁴``."""
        return self.power_sum(4)

    def self_join_size(self) -> int:
        """Exact self-join size ``|F ⋈ F| = F₂`` (ground truth for F₂)."""
        return self.f2

    # ------------------------------------------------------------------
    # Cross moments with another vector
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "FrequencyVector") -> None:
        if self.domain_size != other.domain_size:
            raise DomainError(
                "frequency vectors defined over different domains: "
                f"{self.domain_size} vs {other.domain_size}"
            )

    def join_size(self, other: "FrequencyVector") -> int:
        """Exact size of join ``Σᵢ fᵢ gᵢ`` (ground truth for ``|F ⋈ G|``)."""
        return self.cross_power_sum(other, 1, 1)

    def cross_power_sum(self, other: "FrequencyVector", a: int, b: int) -> int:
        """Exact ``Σᵢ fᵢᵃ gᵢᵇ`` as a Python int."""
        self._check_compatible(other)
        return cross_power_sum(self._counts, other._counts, a, b)

    # ------------------------------------------------------------------
    # Derived vectors
    # ------------------------------------------------------------------

    def scaled(self, factor: int) -> "FrequencyVector":
        """Frequency vector with every count multiplied by ``factor >= 0``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return FrequencyVector(self._counts * np.int64(factor), copy=False)

    def __add__(self, other: "FrequencyVector") -> "FrequencyVector":
        """Union (multiset sum) of two relations over the same domain."""
        if not isinstance(other, FrequencyVector):
            return NotImplemented
        self._check_compatible(other)
        return FrequencyVector(self._counts + other._counts, copy=False)

    def probabilities(self) -> np.ndarray:
        """Relative frequencies ``fᵢ / |F|`` as float64 (density view, §V)."""
        total = self.total
        if total == 0:
            raise DomainError("empty relation has no probability normalization")
        return self._counts / float(total)

    def to_items(self) -> np.ndarray:
        """Expand back to a sorted array of keys (one per tuple).

        Memory is proportional to the number of tuples; intended for tests
        and small relations.
        """
        return np.repeat(np.arange(self.domain_size, dtype=np.int64), self._counts)


def cross_power_sum(f: np.ndarray, g: np.ndarray, a: int, b: int) -> int:
    """Exact ``Σᵢ fᵢᵃ gᵢᵇ`` over two equal-length integer arrays.

    Computed on the intersection support only (terms with ``fᵢ = 0`` or
    ``gᵢ = 0`` vanish for ``a, b >= 1``) and in Python-int space when there
    is any risk of ``int64`` overflow.
    """
    if a < 0 or b < 0:
        raise ValueError("cross power-sum orders must be non-negative")
    if a == 0 and b == 0:
        return int(f.size)
    if a == 0:
        return cross_power_sum(g, f, b, 0)
    if b == 0:
        support = f[f > 0]
        return sum(int(c) ** a for c in support) if a > 2 else _as_int(
            (support.astype(object) ** a).sum(dtype=object)
        )
    mask = (f > 0) & (g > 0)
    fs = f[mask]
    gs = g[mask]
    if fs.size == 0:
        return 0
    # Safe fast path: all factors small enough that the product fits int64.
    max_bits = a * int(fs.max()).bit_length() + b * int(gs.max()).bit_length()
    if max_bits < 62:
        return _as_int((fs**a * gs**b).sum(dtype=object))
    return sum(int(x) ** a * int(y) ** b for x, y in zip(fs.tolist(), gs.tolist()))
