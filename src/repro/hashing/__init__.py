"""Pseudo-random hash and ±1 ("ξ") families used by sketches.

This subpackage is the substrate the paper's reference [17] (Rusu & Dobra,
*Pseudo-random number generation for sketch-based estimations*, TODS 2007)
covers: the families of random variables sketches are built from.

Two kinds of objects live here:

* **value hashes** mapping keys to integers — :class:`PolynomialHashFamily`
  (k-wise independent, polynomials over a Mersenne prime) and
  :class:`BucketHashFamily` (maps keys to sketch buckets);
* **sign families** mapping keys to ±1 — :class:`FourWiseSignFamily`
  (degree-3 polynomial construction, the classic AGMS choice) and
  :class:`EH3SignFamily` (the EH3 generator: exactly 3-wise independent,
  extremely fast, and the scheme recommended by [17] for practice).

All families are vectorized over numpy arrays of keys and evaluate one or
more independent *rows* at once, since sketches always need many independent
copies of the basic estimator.
"""

from .families import (
    MERSENNE_P31,
    MERSENNE_P61,
    BucketHashFamily,
    PolynomialHashFamily,
)
from .signs import EH3SignFamily, FourWiseSignFamily, SignFamily
from .tabulation import TabulationHashFamily, TabulationSignFamily

__all__ = [
    "MERSENNE_P31",
    "MERSENNE_P61",
    "PolynomialHashFamily",
    "BucketHashFamily",
    "SignFamily",
    "FourWiseSignFamily",
    "EH3SignFamily",
    "TabulationHashFamily",
    "TabulationSignFamily",
]
