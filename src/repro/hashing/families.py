"""k-wise independent polynomial hash families over a Mersenne prime.

The classic construction: pick a prime ``p`` and random coefficients
``a₀ … a_{k-1}`` with ``a_{k-1} ≠ 0``; then

    h(x) = (a_{k-1} x^{k-1} + … + a₁ x + a₀) mod p

is a k-wise independent family over ``[0, p)``.  We use the Mersenne prime
``p = 2³¹ − 1`` so that a product of two residues fits comfortably in
``uint64`` and the whole evaluation (Horner's rule) vectorizes over numpy
arrays without resorting to 128-bit arithmetic.

Keys must therefore lie in ``[0, 2³¹ − 1)`` — far larger than any domain the
paper's experiments use (``|I| = 10⁶``).  ``MERSENNE_P61`` is exported for
callers that need a larger key space and accept scalar (object-dtype)
arithmetic.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, DomainError
from ..kernels import get_backend
from ..rng import SeedLike, as_generator

__all__ = ["MERSENNE_P31", "MERSENNE_P61", "PolynomialHashFamily", "BucketHashFamily"]

MERSENNE_P31 = 2**31 - 1
MERSENNE_P61 = 2**61 - 1

_P = np.uint64(MERSENNE_P31)
_SHIFT31 = np.uint64(31)


def _fold31(acc: np.ndarray, scratch: np.ndarray) -> None:
    """One lazy Mersenne fold in place: ``acc ← (acc & p) + (acc >> 31)``.

    The fold preserves the residue class mod ``p = 2³¹ − 1`` (because
    ``2³¹ ≡ 1``) while shrinking the value, and costs three cheap
    vectorized integer ops instead of a 64-bit division.
    """
    np.right_shift(acc, _SHIFT31, out=scratch)
    acc &= _P
    acc += scratch


def _reduce31(acc: np.ndarray, scratch: np.ndarray, bound: int) -> None:
    """Exact residue mod ``p`` in place, given ``acc ≤ bound``.

    Folds only while the worst-case bound demands it, then applies the
    unsigned-underflow trick ``min(acc, acc − p)`` — valid once
    ``acc < 2p`` — as the final conditional subtract (for ``acc < p``
    the subtraction wraps to a huge value, so the minimum picks ``acc``
    unchanged).
    """
    while bound > 2 * MERSENNE_P31 - 1:
        _fold31(acc, scratch)
        bound = (2**31 - 1) + bound // 2**31
    np.subtract(acc, _P, out=scratch)
    np.minimum(acc, scratch, out=acc)


def _horner_all(coefficients: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Evaluate every row's polynomial mod ``p`` in one vectorized pass.

    Lazily-reduced Horner: between iterations the accumulator is only
    *folded* (congruent mod ``p``, not canonical), and a Python-side
    worst-case bound proves each ``acc·x + c`` stays below ``2⁶⁴``; a
    second fold is inserted on the rare iterations where one would not
    suffice (degree ≥ 4).  The final :func:`_reduce31` restores the
    canonical residue, so the output is bit-identical to the per-row
    exact-reduction path of :meth:`PolynomialHashFamily.evaluate_row`.
    """
    rows, k = coefficients.shape
    acc = np.empty((rows, x.size), dtype=np.uint64)
    acc[...] = coefficients[:, :1]
    if x.size == 0 or k == 1:
        return acc
    scratch = np.empty_like(acc)
    bound = MERSENNE_P31 - 1  # worst case: acc <= bound, tracked exactly
    for j in range(1, k):
        value_bound = (bound + 1) * (MERSENNE_P31 - 1)
        assert value_bound < 2**64  # loop invariant keeps the product safe
        acc *= x
        acc += coefficients[:, j : j + 1]
        _fold31(acc, scratch)
        bound = (2**31 - 1) + value_bound // 2**31
        if j < k - 1 and (bound + 1) * (MERSENNE_P31 - 1) >= 2**64:
            _fold31(acc, scratch)
            bound = (2**31 - 1) + bound // 2**31
    _reduce31(acc, scratch, bound)
    return acc


def _bucket_reduce(values: np.ndarray, buckets: int) -> np.ndarray:
    """``mod buckets`` over canonical hash values, mutating in place.

    Avoids the slow unsigned 64-bit division — an in-place mask plus a
    free ``view(int64)`` reinterpretation when ``buckets`` is a power of
    two (residues are < 2³¹ so the bit pattern is unchanged), 32-bit
    division otherwise (hash values and bucket counts both fit in int32
    by construction).  Shared by :func:`_bucket_all` and the numpy
    backend's fused update so the two stay bit-identical.
    """
    if buckets & (buckets - 1) == 0:
        values &= np.uint64(buckets - 1)
        return values.view(np.int64)
    reduced = values.astype(np.int32) % np.int32(buckets)
    return reduced.astype(np.int64)


def _bucket_all(coefficients: np.ndarray, x: np.ndarray, buckets: int) -> np.ndarray:
    """Vectorized bucket reduction of every row's hash: ``(rows, n) int64``."""
    return _bucket_reduce(_horner_all(coefficients, x), buckets)


def _poly_rows_reference(coefficients: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Per-row exact-reduction Horner — the pre-kernel reference path.

    Semantically identical to :func:`_horner_all` (the equivalence tests
    pin them to each other bit for bit); kept as the behavioural
    baseline the ``"reference"`` kernel backend dispatches to.
    """
    rows, k = coefficients.shape
    out = np.empty((rows, x.size), dtype=np.uint64)
    for row in range(rows):
        acc = np.full(x.shape, coefficients[row, 0], dtype=np.uint64)
        for j in range(1, k):
            acc = (acc * x + coefficients[row, j]) % _P
        out[row] = acc
    return out


def _as_uint64(keys: np.ndarray) -> np.ndarray:
    """Reinterpret validated non-negative keys as uint64 without a copy.

    Values have already been range-checked, so for 64-bit inputs the bit
    pattern is the value and a ``view`` is exact; narrower dtypes pay
    the widening copy.
    """
    if keys.dtype == np.uint64:
        return keys
    if keys.dtype == np.int64:
        return keys.view(np.uint64)
    return keys.astype(np.uint64)


def _check_keys(keys: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise DomainError(f"keys must be a 1-D array, got shape {keys.shape}")
    if keys.size == 0:
        return keys.astype(np.uint64)
    if not np.issubdtype(keys.dtype, np.integer):
        raise DomainError("hash keys must be integers")
    lo = int(keys.min())
    hi = int(keys.max())
    if lo < 0 or hi >= MERSENNE_P31:
        raise DomainError(
            f"hash keys must lie in [0, {MERSENNE_P31}), saw range [{lo}, {hi}]"
        )
    return _as_uint64(keys)


class PolynomialHashFamily:
    """``rows`` independent k-wise hash functions ``h: [0, p) → [0, p)``.

    Parameters
    ----------
    k:
        Independence level; the polynomial has degree ``k - 1``.  ``k = 2``
        gives the universal family used for bucket selection, ``k = 4`` the
        family AGMS sketches need.
    rows:
        Number of independent functions drawn from the family.  Evaluation
        returns one output row per function.
    seed:
        Seed for drawing the coefficients (see :mod:`repro.rng`).
    """

    __slots__ = ("k", "rows", "_coefficients")

    def __init__(self, k: int, rows: int, seed: SeedLike = None) -> None:
        if k < 1:
            raise ConfigurationError(f"independence level k must be >= 1, got {k}")
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        rng = as_generator(seed)
        coefficients = rng.integers(0, MERSENNE_P31, size=(rows, k), dtype=np.uint64)
        if k > 1:
            # Leading coefficient must be non-zero for full degree.
            lead = coefficients[:, 0]
            zero = lead == 0
            while np.any(zero):
                lead[zero] = rng.integers(0, MERSENNE_P31, size=int(zero.sum()), dtype=np.uint64)
                zero = lead == 0
        self.k = k
        self.rows = rows
        self._coefficients = coefficients

    @property
    def coefficients(self) -> np.ndarray:
        """The ``(rows, k)`` coefficient matrix (read-mostly, for tests)."""
        return self._coefficients

    def __call__(self, keys) -> np.ndarray:
        """Evaluate every row on *keys*; returns ``(rows, len(keys)) uint64``.

        Values are uniform over ``[0, p)`` and k-wise independent across
        distinct keys within each row; rows are mutually independent.
        """
        return self.evaluate_all(keys)

    def evaluate_all(self, keys) -> np.ndarray:
        """Row-batched evaluation: ``(rows, len(keys)) uint64`` in one pass.

        Bit-identical to stacking :meth:`evaluate_row` over every row,
        but dispatched through the active kernel backend: the default
        numpy backend runs a single vectorized lazily-reduced Horner
        pass over the whole ``(rows, n)`` matrix — no Python-level row
        loop and no 64-bit divisions (see :func:`_horner_all`) — and a
        compiled backend fuses the loop entirely.
        """
        return get_backend().polynomial_mod_p(self._coefficients, _check_keys(keys))

    def evaluate_row(self, row: int, keys) -> np.ndarray:
        """Evaluate a single row on *keys*; returns ``(len(keys),) uint64``."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        return self._evaluate_row(row, _check_keys(keys))

    def _evaluate_row(self, row: int, x: np.ndarray) -> np.ndarray:
        # Horner's rule mod p.  All residues are < 2³¹ so every product of
        # two residues fits in uint64 before reduction.
        acc = np.full(x.shape, self._coefficients[row, 0], dtype=np.uint64)
        for j in range(1, self.k):
            acc = (acc * x + self._coefficients[row, j]) % _P
        return acc


class BucketHashFamily:
    """``rows`` independent 2-universal functions ``h: keys → [0, buckets)``.

    This is the bucket-selection hash of F-AGMS / Count-Sketch: within each
    row, keys are spread over ``buckets`` cells.  Built on a pairwise
    (``k = 2``) polynomial family followed by a ``mod buckets`` reduction;
    the composition remains 2-universal up to the usual ``O(buckets / p)``
    deviation from uniformity, negligible for ``buckets ≪ 2³¹``.
    """

    __slots__ = ("buckets", "rows", "_family")

    def __init__(self, buckets: int, rows: int, seed: SeedLike = None) -> None:
        if buckets < 1:
            raise ConfigurationError(f"buckets must be >= 1, got {buckets}")
        if buckets > MERSENNE_P31 // 4:
            raise ConfigurationError(
                f"buckets={buckets} too close to the hash prime; "
                "uniformity would degrade"
            )
        self.buckets = buckets
        self.rows = rows
        self._family = PolynomialHashFamily(2, rows, seed)

    def __call__(self, keys) -> np.ndarray:
        """Bucket index per row: ``(rows, len(keys))`` in ``[0, buckets)``."""
        return self.evaluate_all(keys)

    def evaluate_all(self, keys) -> np.ndarray:
        """Row-batched bucket indices: ``(rows, len(keys)) int64`` in one pass.

        Bit-identical to stacking :meth:`evaluate_row`; dispatched
        through the active kernel backend so the polynomial pass and the
        ``mod buckets`` reduction run fused (see :func:`_bucket_all` for
        the numpy path).
        """
        return get_backend().bucket_indices(
            self._family.coefficients, _check_keys(keys), self.buckets
        )

    def evaluate_row(self, row: int, keys) -> np.ndarray:
        """Bucket index of a single row: ``(len(keys),)`` in ``[0, buckets)``."""
        values = self._family.evaluate_row(row, keys)
        return (values % np.uint64(self.buckets)).astype(np.int64)
