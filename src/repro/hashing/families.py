"""k-wise independent polynomial hash families over a Mersenne prime.

The classic construction: pick a prime ``p`` and random coefficients
``a₀ … a_{k-1}`` with ``a_{k-1} ≠ 0``; then

    h(x) = (a_{k-1} x^{k-1} + … + a₁ x + a₀) mod p

is a k-wise independent family over ``[0, p)``.  We use the Mersenne prime
``p = 2³¹ − 1`` so that a product of two residues fits comfortably in
``uint64`` and the whole evaluation (Horner's rule) vectorizes over numpy
arrays without resorting to 128-bit arithmetic.

Keys must therefore lie in ``[0, 2³¹ − 1)`` — far larger than any domain the
paper's experiments use (``|I| = 10⁶``).  ``MERSENNE_P61`` is exported for
callers that need a larger key space and accept scalar (object-dtype)
arithmetic.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, DomainError
from ..rng import SeedLike, as_generator

__all__ = ["MERSENNE_P31", "MERSENNE_P61", "PolynomialHashFamily", "BucketHashFamily"]

MERSENNE_P31 = 2**31 - 1
MERSENNE_P61 = 2**61 - 1

_P = np.uint64(MERSENNE_P31)


def _check_keys(keys: np.ndarray) -> np.ndarray:
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise DomainError(f"keys must be a 1-D array, got shape {keys.shape}")
    if keys.size == 0:
        return keys.astype(np.uint64)
    if not np.issubdtype(keys.dtype, np.integer):
        raise DomainError("hash keys must be integers")
    lo = int(keys.min())
    hi = int(keys.max())
    if lo < 0 or hi >= MERSENNE_P31:
        raise DomainError(
            f"hash keys must lie in [0, {MERSENNE_P31}), saw range [{lo}, {hi}]"
        )
    return keys.astype(np.uint64)


class PolynomialHashFamily:
    """``rows`` independent k-wise hash functions ``h: [0, p) → [0, p)``.

    Parameters
    ----------
    k:
        Independence level; the polynomial has degree ``k - 1``.  ``k = 2``
        gives the universal family used for bucket selection, ``k = 4`` the
        family AGMS sketches need.
    rows:
        Number of independent functions drawn from the family.  Evaluation
        returns one output row per function.
    seed:
        Seed for drawing the coefficients (see :mod:`repro.rng`).
    """

    __slots__ = ("k", "rows", "_coefficients")

    def __init__(self, k: int, rows: int, seed: SeedLike = None) -> None:
        if k < 1:
            raise ConfigurationError(f"independence level k must be >= 1, got {k}")
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        rng = as_generator(seed)
        coefficients = rng.integers(0, MERSENNE_P31, size=(rows, k), dtype=np.uint64)
        if k > 1:
            # Leading coefficient must be non-zero for full degree.
            lead = coefficients[:, 0]
            zero = lead == 0
            while np.any(zero):
                lead[zero] = rng.integers(0, MERSENNE_P31, size=int(zero.sum()), dtype=np.uint64)
                zero = lead == 0
        self.k = k
        self.rows = rows
        self._coefficients = coefficients

    @property
    def coefficients(self) -> np.ndarray:
        """The ``(rows, k)`` coefficient matrix (read-mostly, for tests)."""
        return self._coefficients

    def __call__(self, keys) -> np.ndarray:
        """Evaluate every row on *keys*; returns ``(rows, len(keys)) uint64``.

        Values are uniform over ``[0, p)`` and k-wise independent across
        distinct keys within each row; rows are mutually independent.
        """
        x = _check_keys(keys)
        out = np.empty((self.rows, x.size), dtype=np.uint64)
        for r in range(self.rows):
            out[r] = self._evaluate_row(r, x)
        return out

    def evaluate_row(self, row: int, keys) -> np.ndarray:
        """Evaluate a single row on *keys*; returns ``(len(keys),) uint64``."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        return self._evaluate_row(row, _check_keys(keys))

    def _evaluate_row(self, row: int, x: np.ndarray) -> np.ndarray:
        # Horner's rule mod p.  All residues are < 2³¹ so every product of
        # two residues fits in uint64 before reduction.
        acc = np.full(x.shape, self._coefficients[row, 0], dtype=np.uint64)
        for j in range(1, self.k):
            acc = (acc * x + self._coefficients[row, j]) % _P
        return acc


class BucketHashFamily:
    """``rows`` independent 2-universal functions ``h: keys → [0, buckets)``.

    This is the bucket-selection hash of F-AGMS / Count-Sketch: within each
    row, keys are spread over ``buckets`` cells.  Built on a pairwise
    (``k = 2``) polynomial family followed by a ``mod buckets`` reduction;
    the composition remains 2-universal up to the usual ``O(buckets / p)``
    deviation from uniformity, negligible for ``buckets ≪ 2³¹``.
    """

    __slots__ = ("buckets", "rows", "_family")

    def __init__(self, buckets: int, rows: int, seed: SeedLike = None) -> None:
        if buckets < 1:
            raise ConfigurationError(f"buckets must be >= 1, got {buckets}")
        if buckets > MERSENNE_P31 // 4:
            raise ConfigurationError(
                f"buckets={buckets} too close to the hash prime; "
                "uniformity would degrade"
            )
        self.buckets = buckets
        self.rows = rows
        self._family = PolynomialHashFamily(2, rows, seed)

    def __call__(self, keys) -> np.ndarray:
        """Bucket index per row: ``(rows, len(keys))`` in ``[0, buckets)``."""
        values = self._family(keys)
        return (values % np.uint64(self.buckets)).astype(np.int64)

    def evaluate_row(self, row: int, keys) -> np.ndarray:
        """Bucket index of a single row: ``(len(keys),)`` in ``[0, buckets)``."""
        values = self._family.evaluate_row(row, keys)
        return (values % np.uint64(self.buckets)).astype(np.int64)
