"""Families of ±1 random variables ("ξ families") for AGMS-style sketches.

An AGMS sketch needs, for each basic estimator, a function ``ξ: I → {−1,+1}``
such that the values at any four distinct domain points are independent
(4-wise independence).  That property is exactly what makes the size-of-join
estimator unbiased and gives the variance of Props 7–8.

Two constructions are provided:

:class:`FourWiseSignFamily`
    The classic construction: a degree-3 polynomial over the Mersenne prime
    ``2³¹ − 1``; the sign is the parity bit of the hash value.  The parity
    of a uniform value on ``[0, p)`` with odd ``p`` is biased by ``1/p ≈
    4.7·10⁻¹⁰`` — utterly negligible, and this is the standard practical
    implementation of 4-wise ξ.

:class:`EH3SignFamily`
    The EH3 scheme (Feigenbaum et al.; analyzed for sketching by Rusu &
    Dobra, TODS 2007 — the paper's reference [17]): for a random seed
    ``(s₀, S)``, ``ξ(i) = (−1)^{s₀ ⊕ (S·i) ⊕ h(i)}`` where ``S·i`` is the
    GF(2) inner product of the seed and key bit vectors and ``h(i)`` XORs
    the ANDs of adjacent key-bit pairs.  EH3 is *exactly* 3-wise
    independent, is much faster than polynomial evaluation, and in practice
    behaves at least as well as 4-wise schemes for sketch estimation.

Both expose the same interface: calling the family with an array of keys
returns an ``int8`` matrix of shape ``(rows, len(keys))`` with entries ±1.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, DomainError
from ..kernels import get_backend
from ..rng import SeedLike, as_generator
from .families import MERSENNE_P31, PolynomialHashFamily, _as_uint64, _check_keys

__all__ = ["SignFamily", "FourWiseSignFamily", "EH3SignFamily"]


def _parity_signs(values: np.ndarray) -> np.ndarray:
    """Map hash values to ±1 via the parity bit: ``2·(v & 1) − 1`` as int8."""
    return ((values & np.uint64(1)).astype(np.int8) << 1) - np.int8(1)


class SignFamily:
    """Abstract interface of a ±1 family.

    Subclasses implement :meth:`evaluate_all` (row-batched, the path the
    sketch kernels use) and :meth:`evaluate_row`; calling the family is
    an alias for :meth:`evaluate_all`.  The shared :attr:`rows`
    attribute is the number of independent ξ functions.
    """

    rows: int

    def __call__(self, keys) -> np.ndarray:
        """ξ values for every row: ``(rows, len(keys)) int8`` of ±1."""
        return self.evaluate_all(keys)

    def evaluate_all(self, keys) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def evaluate_row(self, row: int, keys) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")


class FourWiseSignFamily(SignFamily):
    """4-wise independent ±1 family via degree-3 polynomials mod ``2³¹ − 1``."""

    __slots__ = ("rows", "_family")

    def __init__(self, rows: int, seed: SeedLike = None) -> None:
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        self.rows = rows
        self._family = PolynomialHashFamily(4, rows, seed)

    def evaluate_all(self, keys) -> np.ndarray:
        """ξ values for every row: ``(rows, len(keys)) int8`` of ±1.

        One polynomial pass over all rows, dispatched through the
        active kernel backend so the Horner loop and the parity map run
        fused (bit-identical to stacking :meth:`evaluate_row`).
        """
        return get_backend().parity_signs(
            self._family.coefficients, _check_keys(keys)
        )

    def evaluate_row(self, row: int, keys) -> np.ndarray:
        """ξ values of one row: ``(len(keys),) int8`` of ±1."""
        self._check_row(row)
        return _parity_signs(self._family.evaluate_row(row, keys))


class EH3SignFamily(SignFamily):
    """Exactly 3-wise independent ±1 family (EH3 generator).

    Keys must fit in ``bits`` bits (default 31, matching the polynomial
    families' key space).  The per-row seed is one bit ``s₀`` plus a
    ``bits``-wide vector ``S``.
    """

    __slots__ = ("rows", "bits", "_s0", "_seeds")

    def __init__(self, rows: int, seed: SeedLike = None, *, bits: int = 31) -> None:
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        if not 1 <= bits <= 63:
            raise ConfigurationError(f"bits must be in [1, 63], got {bits}")
        rng = as_generator(seed)
        self.rows = rows
        self.bits = bits
        self._s0 = rng.integers(0, 2, size=rows, dtype=np.uint64)
        self._seeds = rng.integers(0, 2**bits, size=rows, dtype=np.uint64)

    def _check_keys(self, keys) -> np.ndarray:
        x = np.asarray(keys)
        if x.ndim != 1:
            raise DomainError(f"keys must be a 1-D array, got shape {x.shape}")
        if x.size == 0:
            return x.astype(np.uint64)
        if not np.issubdtype(x.dtype, np.integer):
            raise DomainError("EH3 keys must be integers")
        lo, hi = int(x.min()), int(x.max())
        if lo < 0 or hi >= 2**self.bits:
            raise DomainError(
                f"EH3 keys must lie in [0, 2^{self.bits}), saw range [{lo}, {hi}]"
            )
        return _as_uint64(x)

    @staticmethod
    def _nonlinear_parity(x: np.ndarray) -> np.ndarray:
        """Parity of ``⊕ₖ (bit₂ₖ(x) ∧ bit₂ₖ₊₁(x))`` — the EH3 h(i) term."""
        even_bits = x & np.uint64(0x5555555555555555)
        odd_bits = (x >> np.uint64(1)) & np.uint64(0x5555555555555555)
        pairs = even_bits & odd_bits
        return np.bitwise_count(pairs).astype(np.uint64) & np.uint64(1)

    def evaluate_all(self, keys) -> np.ndarray:
        """ξ values for every row: ``(rows, len(keys)) int8`` of ±1.

        One broadcast bit-trick pass over all rows (bit-identical to
        stacking :meth:`evaluate_row`): the GF(2) inner products of all
        row seeds against all keys are popcounted as a ``(rows, n)``
        matrix, and the shared nonlinear term is computed once.
        """
        x = self._check_keys(keys)
        nonlinear = self._nonlinear_parity(x)
        linear = np.bitwise_count(
            x[None, :] & self._seeds[:, None]
        ).astype(np.uint64) & np.uint64(1)
        bit = self._s0[:, None] ^ linear ^ nonlinear[None, :]
        return (bit.astype(np.int8) << 1) - np.int8(1)

    def evaluate_row(self, row: int, keys) -> np.ndarray:
        """ξ values of one row: ``(len(keys),) int8`` of ±1."""
        self._check_row(row)
        x = self._check_keys(keys)
        return self._row_signs(row, x, self._nonlinear_parity(x))

    def _row_signs(self, row: int, x: np.ndarray, nonlinear: np.ndarray) -> np.ndarray:
        linear = np.bitwise_count(x & self._seeds[row]).astype(np.uint64) & np.uint64(1)
        bit = self._s0[row] ^ linear ^ nonlinear
        return (bit.astype(np.int8) << 1) - np.int8(1)


def _unused_prime_guard() -> int:  # pragma: no cover - documentation aid
    """Anchor the key-space contract shared with :mod:`.families`."""
    return MERSENNE_P31
