"""Tabulation hashing — a third ±1/value family for the ablation suite.

Simple tabulation (Zobrist hashing): split the key into ``c`` characters
of ``bits_per_char`` bits, look each up in its own table of random words,
XOR the results.  Pătraşcu & Thorup showed that despite being only 3-wise
independent, simple tabulation behaves like a fully random function for
many algorithms — the same empirical story as EH3 for sketches.

Included as substrate completeness (the paper's ref [17] studies the
generator choice): :class:`TabulationSignFamily` plugs into nothing by
default but mirrors the :class:`~repro.hashing.signs.SignFamily` interface
so it can be dropped into a custom sketch or compared in benches.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, DomainError
from ..rng import SeedLike, as_generator
from .signs import SignFamily

__all__ = ["TabulationHashFamily", "TabulationSignFamily"]


class TabulationHashFamily:
    """``rows`` simple-tabulation hash functions ``h: [0, 2^key_bits) → uint64``."""

    __slots__ = ("rows", "key_bits", "bits_per_char", "_tables")

    def __init__(
        self,
        rows: int,
        seed: SeedLike = None,
        *,
        key_bits: int = 32,
        bits_per_char: int = 8,
    ) -> None:
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        if not 1 <= bits_per_char <= 16:
            raise ConfigurationError(
                f"bits_per_char must be in [1, 16], got {bits_per_char}"
            )
        if key_bits < 1 or key_bits % bits_per_char:
            raise ConfigurationError(
                f"key_bits ({key_bits}) must be a positive multiple of "
                f"bits_per_char ({bits_per_char})"
            )
        rng = as_generator(seed)
        self.rows = rows
        self.key_bits = key_bits
        self.bits_per_char = bits_per_char
        characters = key_bits // bits_per_char
        self._tables = rng.integers(
            0,
            2**63,
            size=(rows, characters, 2**bits_per_char),
            dtype=np.uint64,
        )

    @property
    def characters(self) -> int:
        """Number of key characters (table lookups per hash)."""
        return self._tables.shape[1]

    def _check_keys(self, keys) -> np.ndarray:
        x = np.asarray(keys)
        if x.ndim != 1:
            raise DomainError(f"keys must be 1-D, got shape {x.shape}")
        if x.size == 0:
            return x.astype(np.uint64)
        if not np.issubdtype(x.dtype, np.integer):
            raise DomainError("tabulation keys must be integers")
        lo, hi = int(x.min()), int(x.max())
        if lo < 0 or hi >= 2**self.key_bits:
            raise DomainError(
                f"tabulation keys must lie in [0, 2^{self.key_bits}), "
                f"saw range [{lo}, {hi}]"
            )
        return x.astype(np.uint64)

    def evaluate_row(self, row: int, keys) -> np.ndarray:
        """Hash one row; returns ``(len(keys),) uint64``."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        x = self._check_keys(keys)
        mask = np.uint64(2**self.bits_per_char - 1)
        shift = np.uint64(self.bits_per_char)
        out = np.zeros(x.shape, dtype=np.uint64)
        work = x.copy()
        for character in range(self.characters):
            out ^= self._tables[row, character][work & mask]
            work >>= shift
        return out

    def __call__(self, keys) -> np.ndarray:
        """Hash every row; returns ``(rows, len(keys)) uint64``."""
        return self.evaluate_all(keys)

    def evaluate_all(self, keys) -> np.ndarray:
        """Row-batched hashing: ``(rows, len(keys)) uint64`` in one pass.

        Bit-identical to stacking :meth:`evaluate_row`; each character's
        lookup gathers from every row's table at once via advanced
        indexing instead of looping rows in Python.
        """
        x = self._check_keys(keys)
        mask = np.uint64(2**self.bits_per_char - 1)
        shift = np.uint64(self.bits_per_char)
        out = np.zeros((self.rows, x.size), dtype=np.uint64)
        work = x.copy()
        row_index = np.arange(self.rows)[:, None]
        for character in range(self.characters):
            out ^= self._tables[row_index, character, (work & mask)[None, :]]
            work >>= shift
        return out


class TabulationSignFamily(SignFamily):
    """±1 family from simple tabulation (3-wise independent)."""

    __slots__ = ("rows", "_family")

    def __init__(
        self,
        rows: int,
        seed: SeedLike = None,
        *,
        key_bits: int = 32,
        bits_per_char: int = 8,
    ) -> None:
        self.rows = rows
        self._family = TabulationHashFamily(
            rows, seed, key_bits=key_bits, bits_per_char=bits_per_char
        )

    def evaluate_all(self, keys) -> np.ndarray:
        """ξ values for every row: ``(rows, len(keys)) int8`` of ±1."""
        values = self._family.evaluate_all(keys)
        return ((values & np.uint64(1)).astype(np.int8) << 1) - np.int8(1)

    def evaluate_row(self, row: int, keys) -> np.ndarray:
        """ξ values of one row: ``(len(keys),) int8`` of ±1."""
        self._check_row(row)
        values = self._family.evaluate_row(row, keys)
        return ((values & np.uint64(1)).astype(np.int8) << 1) - np.int8(1)
