"""Named stream registry: ingest runtimes paired with published snapshots.

A :class:`SketchRegistry` owns one
:class:`~repro.engine.statistics.OnlineStatisticsEngine` per *named
stream* (each engine holds a single relation named after the stream).
All engines share one seed, so every stream's sketch view is compatible
with every other's — joins and set expressions across streams are
meaningful.

The concurrency contract:

* **Ingest** (:meth:`SketchRegistry.ingest`, or the background threads
  started by :meth:`start_ingest`) takes the stream's lock, consumes the
  chunk, and — when the rotation policy says so — publishes a fresh
  :class:`~repro.engine.snapshot.EngineSnapshot`.
* **Queries** never take the ingest lock: they read the stream's
  ``latest`` snapshot reference (a single attribute read — atomic under
  the GIL) and evaluate entirely against its frozen counters.  A query
  can therefore never block ingestion, never observe a torn update, and
  two reads inside one query see one consistent state.

Rotation is **atomic replacement**: the snapshot is fully built before
the reference is swapped, and generations are strictly monotone, so
concurrent readers observe a prefix-consistent, monotone sequence of
states (asserted by ``tests/serving/test_concurrent_consistency.py``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

import numpy as np

from ..engine.snapshot import (
    EngineSnapshot,
    join_size_between,
    join_variance_between,
)
from ..engine.statistics import OnlineStatisticsEngine
from ..errors import ConfigurationError
from ..observability.observer import Observer, as_observer
from ..rng import SeedLike, as_seed_sequence
from ..variance.bounds import ConfidenceInterval, chebyshev_interval, clt_interval
from .expressions import evaluate_expression

__all__ = ["QueryResult", "RotationPolicy", "SketchRegistry", "StreamMeta"]


@dataclass(frozen=True)
class RotationPolicy:
    """When ingestion publishes a fresh snapshot.

    ``every_chunks`` rotates after that many consumed chunks;
    ``min_interval`` additionally holds a rotation back until that many
    seconds have passed since the last one (0 disables the hold-back).
    A chunk that arrives while the interval gate is closed defers the
    rotation to the next eligible chunk — readers keep the old snapshot,
    never a partial one.
    """

    every_chunks: int = 1
    min_interval: float = 0.0

    def __post_init__(self) -> None:
        if self.every_chunks < 1:
            raise ConfigurationError(
                f"every_chunks must be >= 1, got {self.every_chunks}"
            )
        if self.min_interval < 0:
            raise ConfigurationError(
                f"min_interval must be >= 0, got {self.min_interval}"
            )


@dataclass(frozen=True)
class StreamMeta:
    """Snapshot provenance attached to every query answer."""

    name: str
    generation: int
    scanned: int
    total: int
    fraction: float
    staleness_seconds: float


@dataclass(frozen=True)
class QueryResult:
    """One served estimate with its interval and provenance."""

    op: str
    estimate: float
    interval: ConfidenceInterval
    variance_bound: float
    streams: tuple[StreamMeta, ...]


@dataclass
class _Stream:
    """One named stream: its private engine and the published snapshot."""

    name: str
    engine: OnlineStatisticsEngine
    policy: RotationPolicy
    lock: threading.Lock = field(default_factory=threading.Lock)
    latest: Optional[EngineSnapshot] = None
    chunks_since_rotation: int = 0
    rotated_at: float = 0.0
    ingest_thread: Optional[threading.Thread] = None


class SketchRegistry:
    """Registry of named streams served concurrently with ingestion.

    Parameters
    ----------
    buckets, rows, seed:
        Shape and seed of every stream's F-AGMS sketch.  One seed for
        the whole registry — cross-stream joins and set expressions
        require shared hash families.
    policy:
        Default :class:`RotationPolicy` (per-stream override in
        :meth:`register_stream`).
    clock:
        Injectable monotonic timer for rotation intervals and staleness.
    observer:
        Receives ``serving.*`` counters/histograms/spans for rotations
        and queries, with per-stream labels.
    """

    def __init__(
        self,
        buckets: int = 4096,
        rows: int = 1,
        seed: SeedLike = None,
        *,
        policy: Optional[RotationPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        observer: Optional[Observer] = None,
    ) -> None:
        self._buckets = buckets
        self._rows = rows
        # Every stream's engine must derive IDENTICAL hash families, or
        # cross-stream joins/expressions are meaningless.  SeedSequence
        # spawning is stateful, so the root sequence cannot be shared —
        # instead its entropy is captured once and an equivalent fresh
        # sequence is rebuilt per stream.
        root = as_seed_sequence(seed)
        self._entropy = root.entropy
        self._spawn_key = root.spawn_key
        self._policy = policy or RotationPolicy()
        self._clock = clock
        self._observer = as_observer(observer)
        self._streams: dict[str, _Stream] = {}
        self._registry_lock = threading.Lock()

    @property
    def observer(self) -> Observer:
        """The attached observer."""
        return self._observer

    @property
    def streams(self) -> tuple[str, ...]:
        """Registered stream names."""
        return tuple(self._streams)

    # ------------------------------------------------------------------
    # Registration and ingest
    # ------------------------------------------------------------------

    def register_stream(
        self,
        name: str,
        total_tuples: int,
        *,
        policy: Optional[RotationPolicy] = None,
    ) -> None:
        """Register a named stream (its declared cardinality is required).

        An empty initial snapshot (generation 0) is published at once, so
        the stream is queryable — returning zero-scanned metadata, and
        estimate errors where the paper's corrections need data — from
        the moment it exists.
        """
        with self._registry_lock:
            if name in self._streams:
                raise ConfigurationError(f"stream {name!r} already registered")
            engine = OnlineStatisticsEngine(
                self._buckets,
                self._rows,
                np.random.SeedSequence(
                    self._entropy, spawn_key=self._spawn_key
                ),
                observer=None,
            )
            engine.register(name, total_tuples)
            stream = _Stream(
                name=name,
                engine=engine,
                policy=policy or self._policy,
                rotated_at=self._clock(),
            )
            stream.latest = engine.snapshot()
            self._streams[name] = stream

    def _stream(self, name: str) -> _Stream:
        try:
            return self._streams[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown stream {name!r}; registered: {self.streams}"
            ) from None

    def ingest(self, name: str, keys) -> None:
        """Consume one chunk into a stream, rotating per its policy."""
        stream = self._stream(name)
        with stream.lock:
            stream.engine.consume(name, keys)
            stream.chunks_since_rotation += 1
            self._observer.counter("serving.ingest.chunks", stream=name).inc()
            if self._rotation_due(stream):
                self._rotate(stream)

    def _rotation_due(self, stream: _Stream) -> bool:
        if stream.chunks_since_rotation < stream.policy.every_chunks:
            return False
        if stream.policy.min_interval > 0.0:
            elapsed = self._clock() - stream.rotated_at
            if elapsed < stream.policy.min_interval:
                return False
        return True

    def _rotate(self, stream: _Stream) -> None:
        started = self._clock()
        snapshot = stream.engine.snapshot()
        stream.latest = snapshot  # atomic reference swap — the publication
        stream.chunks_since_rotation = 0
        stream.rotated_at = started
        self._observer.counter("serving.rotations", stream=stream.name).inc()
        self._observer.histogram("serving.rotation.seconds").observe(
            self._clock() - started
        )
        self._observer.gauge(
            "serving.snapshot.generation", stream=stream.name
        ).set(snapshot.generation)

    def rotate(self, name: str) -> EngineSnapshot:
        """Force an immediate rotation (policy gates bypassed)."""
        stream = self._stream(name)
        with stream.lock:
            self._rotate(stream)
            return stream.latest

    def start_ingest(
        self, name: str, chunks: Iterable, *, final_rotate: bool = True
    ) -> threading.Thread:
        """Drain *chunks* into the stream on a daemon thread.

        Returns the started thread (join it to wait for completion).
        With ``final_rotate`` a rotation is forced after the last chunk,
        so the published snapshot catches up with everything ingested.
        """
        stream = self._stream(name)
        if stream.ingest_thread is not None and stream.ingest_thread.is_alive():
            raise ConfigurationError(f"stream {name!r} is already ingesting")

        def _drain() -> None:
            for chunk in chunks:
                self.ingest(name, chunk)
            if final_rotate:
                self.rotate(name)

        thread = threading.Thread(
            target=_drain, name=f"serving-ingest-{name}", daemon=True
        )
        stream.ingest_thread = thread
        thread.start()
        return thread

    def wait_ingest(self, name: Optional[str] = None, timeout: Optional[float] = None) -> None:
        """Join one stream's (or every stream's) background ingest thread."""
        names = [name] if name is not None else list(self._streams)
        for each in names:
            thread = self._stream(each).ingest_thread
            if thread is not None:
                thread.join(timeout)

    # ------------------------------------------------------------------
    # Queries (lock-free: evaluate against the published snapshot)
    # ------------------------------------------------------------------

    def snapshot(self, name: str) -> EngineSnapshot:
        """The stream's latest published snapshot (never blocks ingest)."""
        return self._stream(name).latest

    def _meta(self, stream: _Stream, snapshot: EngineSnapshot) -> StreamMeta:
        relation = snapshot.relation(stream.name)
        return StreamMeta(
            name=stream.name,
            generation=snapshot.generation,
            scanned=relation.scanned,
            total=relation.total_tuples,
            fraction=relation.fraction,
            staleness_seconds=max(0.0, self._clock() - stream.rotated_at),
        )

    def _observe_query(self, op: str, started: float) -> None:
        self._observer.counter("serving.queries", op=op).inc()
        self._observer.histogram("serving.query.seconds", op=op).observe(
            self._clock() - started
        )

    @staticmethod
    def _interval(
        estimate: float, variance: float, confidence: float, method: str
    ) -> ConfidenceInterval:
        if method == "clt":
            return clt_interval(estimate, variance, confidence)
        if method == "chebyshev":
            return chebyshev_interval(estimate, variance, confidence)
        raise ConfigurationError(
            f"unknown interval method {method!r}; expected 'chebyshev' or 'clt'"
        )

    def point_query(
        self,
        name: str,
        key: int,
        confidence: float = 0.95,
        *,
        method: str = "chebyshev",
    ) -> QueryResult:
        """Serve a point-frequency estimate from the latest snapshot."""
        started = self._clock()
        stream = self._stream(name)
        snapshot = stream.latest
        estimate = snapshot.point_frequency(name, key)
        variance = snapshot.point_frequency_variance_bound(name, key)
        result = QueryResult(
            op="point",
            estimate=estimate,
            interval=self._interval(estimate, variance, confidence, method),
            variance_bound=variance,
            streams=(self._meta(stream, snapshot),),
        )
        self._observe_query("point", started)
        return result

    def self_join_query(
        self,
        name: str,
        confidence: float = 0.95,
        *,
        method: str = "chebyshev",
    ) -> QueryResult:
        """Serve a self-join (``F₂``) estimate from the latest snapshot."""
        started = self._clock()
        stream = self._stream(name)
        snapshot = stream.latest
        estimate = snapshot.self_join_size(name)
        variance = snapshot.self_join_variance_bound(name)
        result = QueryResult(
            op="self_join",
            estimate=estimate,
            interval=self._interval(estimate, variance, confidence, method),
            variance_bound=variance,
            streams=(self._meta(stream, snapshot),),
        )
        self._observe_query("self_join", started)
        return result

    def join_query(
        self,
        left: str,
        right: str,
        confidence: float = 0.95,
        *,
        method: str = "chebyshev",
    ) -> QueryResult:
        """Serve a cross-stream join-size estimate (latest snapshots)."""
        started = self._clock()
        stream_l = self._stream(left)
        stream_r = self._stream(right)
        snap_l = stream_l.latest
        snap_r = stream_r.latest
        estimate = join_size_between(snap_l, left, snap_r, right)
        variance = join_variance_between(snap_l, left, snap_r, right)
        result = QueryResult(
            op="join",
            estimate=estimate,
            interval=self._interval(estimate, variance, confidence, method),
            variance_bound=variance,
            streams=(
                self._meta(stream_l, snap_l),
                self._meta(stream_r, snap_r),
            ),
        )
        self._observe_query("join", started)
        return result

    def expression_query(
        self,
        op: str,
        names: Iterable[str],
        confidence: float = 0.95,
        *,
        method: str = "chebyshev",
    ) -> QueryResult:
        """Serve a set-expression estimate over several streams.

        Supported ops: ``union`` (bag ``F₂`` of the merged streams),
        ``intersection`` (join mass), ``set_union`` (distinct union of
        indicator streams) — see :mod:`repro.serving.expressions`.
        """
        started = self._clock()
        pairs = []
        metas = []
        for name in names:
            stream = self._stream(name)
            snapshot = stream.latest
            pairs.append((snapshot, name))
            metas.append(self._meta(stream, snapshot))
        evaluated = evaluate_expression(op, pairs)
        interval = self._interval(
            evaluated.estimate, evaluated.variance_bound, confidence, method
        )
        result = QueryResult(
            op=op,
            estimate=evaluated.estimate,
            interval=interval,
            variance_bound=evaluated.variance_bound,
            streams=tuple(metas),
        )
        self._observe_query(op, started)
        return result

