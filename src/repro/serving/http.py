"""Stdlib-asyncio HTTP/JSON front end for a :class:`SketchRegistry`.

A deliberately small HTTP/1.1 server on ``asyncio`` streams — no
framework, no new dependencies.  Connections are persistent by default
(HTTP/1.1 keep-alive): a dashboard polling every few milliseconds costs
one accepted socket and one long-lived reader task, not a TCP handshake
and task spawn per query — which is what keeps the serving tax on the
ingest thread inside the benchmark gate.  A request carrying
``Connection: close`` (or a client hanging up) ends the connection.

Routes
------

========  =============================  =======================================
method    path                           query / body
========  =============================  =======================================
GET       ``/healthz``                   —
GET       ``/v1/streams``                —
GET       ``/v1/query/point``            ``stream=``, ``key=`` [``confidence=``,
                                         ``method=``]
GET       ``/v1/query/self_join``        ``stream=`` [``confidence=``, ``method=``]
GET       ``/v1/query/join``             ``left=``, ``right=`` [...]
POST      ``/v1/query/expression``       JSON ``{"op": ..., "streams": [...]}``
========  =============================  =======================================

Every query answer carries the estimate, its confidence interval, the
variance bound behind it, and per-stream snapshot provenance
(generation, scanned/total, staleness).  The tenant is the ``X-Tenant``
header (``"anonymous"`` when absent); shed queries get ``429`` with a
``Retry-After`` header.  Estimate evaluation runs inline in the event
loop — it is pure in-memory numpy over frozen snapshot counters, never
a blocking wait (enforced for this package by analysis rule REP012).

:func:`serve_in_thread` runs the server on a daemon thread with its own
event loop and returns a handle exposing the bound URL and a ``stop()``
— the pattern the tests, the demo, and the benchmark all use.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from ..errors import ConfigurationError, EstimationError, ReproError
from ..observability.observer import Observer, as_observer
from ..variance.bounds import ConfidenceInterval
from .admission import AdmissionController
from .registry import QueryResult, SketchRegistry

__all__ = ["ServerHandle", "serve_in_thread"]

_MAX_HEADER_BYTES = 16384
_MAX_BODY_BYTES = 65536


# ----------------------------------------------------------------------
# JSON shaping
# ----------------------------------------------------------------------


def _interval_json(interval: ConfidenceInterval) -> dict:
    return {
        "low": interval.low,
        "high": interval.high,
        "confidence": interval.confidence,
        "method": interval.method,
    }


def _result_json(result: QueryResult, tenant: str) -> dict:
    return {
        "op": result.op,
        "estimate": result.estimate,
        "interval": _interval_json(result.interval),
        "variance_bound": result.variance_bound,
        "streams": {
            meta.name: {
                "generation": meta.generation,
                "scanned": meta.scanned,
                "total": meta.total,
                "fraction": meta.fraction,
                "staleness_seconds": meta.staleness_seconds,
            }
            for meta in result.streams
        },
        "tenant": tenant,
    }


class _HttpError(Exception):
    """A handled request failure carrying its HTTP status."""

    def __init__(self, status: int, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _QueryServer:
    """Request router bound to one registry + admission controller."""

    def __init__(
        self,
        registry: SketchRegistry,
        admission: Optional[AdmissionController],
        observer: Observer,
    ) -> None:
        self.registry = registry
        self.admission = admission
        self.observer = observer

    # -- parameter helpers ------------------------------------------------

    @staticmethod
    def _one(params: dict, name: str) -> str:
        values = params.get(name)
        if not values:
            raise _HttpError(400, f"missing query parameter {name!r}")
        return values[0]

    @staticmethod
    def _interval_args(params: dict) -> tuple[float, str]:
        try:
            confidence = float(params.get("confidence", ["0.95"])[0])
        except ValueError:
            raise _HttpError(400, "confidence must be a number") from None
        method = params.get("method", ["chebyshev"])[0]
        return confidence, method

    # -- route handlers (synchronous: pure in-memory evaluation) ----------

    def handle(self, method: str, path: str, params: dict, body: bytes, tenant: str) -> dict:
        if path == "/healthz":
            return {"status": "ok", "streams": list(self.registry.streams)}
        if path == "/v1/streams":
            return self._streams()
        if path.startswith("/v1/query/"):
            return self._query(method, path, params, body, tenant)
        raise _HttpError(404, f"no route for {path}")

    def _streams(self) -> dict:
        out = {}
        for name in self.registry.streams:
            snapshot = self.registry.snapshot(name)
            relation = snapshot.relation(name)
            out[name] = {
                "generation": snapshot.generation,
                "scanned": relation.scanned,
                "total": relation.total_tuples,
                "fraction": relation.fraction,
            }
        return {"streams": out}

    def _query(self, method: str, path: str, params: dict, body: bytes, tenant: str) -> dict:
        if self.admission is not None:
            decision = self.admission.admit(tenant)
            if not decision.admitted:
                raise _HttpError(
                    429,
                    f"query shed ({decision.reason})",
                    retry_after=decision.retry_after,
                )
        kind = path[len("/v1/query/") :]
        confidence, interval_method = self._interval_args(params)
        started = self.observer.clock()
        try:
            if kind == "point":
                try:
                    key = int(self._one(params, "key"))
                except ValueError:
                    raise _HttpError(400, "key must be an integer") from None
                result = self.registry.point_query(
                    self._one(params, "stream"),
                    key,
                    confidence,
                    method=interval_method,
                )
            elif kind == "self_join":
                result = self.registry.self_join_query(
                    self._one(params, "stream"),
                    confidence,
                    method=interval_method,
                )
            elif kind == "join":
                result = self.registry.join_query(
                    self._one(params, "left"),
                    self._one(params, "right"),
                    confidence,
                    method=interval_method,
                )
            elif kind == "expression":
                if method != "POST":
                    raise _HttpError(405, "expression queries are POST")
                result = self._expression(body, confidence, interval_method)
            else:
                raise _HttpError(404, f"unknown query kind {kind!r}")
        except _HttpError:
            raise
        except (ConfigurationError, EstimationError) as exc:
            raise _HttpError(400, str(exc)) from None
        except ReproError as exc:
            raise _HttpError(500, str(exc)) from None
        finally:
            if self.admission is not None:
                self.admission.observe(self.observer.clock() - started)
        return _result_json(result, tenant)

    def _expression(
        self, body: bytes, confidence: float, interval_method: str
    ) -> QueryResult:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _HttpError(400, "expression body must be JSON") from None
        op = payload.get("op")
        streams = payload.get("streams")
        if not isinstance(op, str) or not isinstance(streams, list):
            raise _HttpError(
                400, 'expression body needs {"op": str, "streams": [names]}'
            )
        return self.registry.expression_query(
            op, streams, confidence, method=interval_method
        )

    # -- connection handling ----------------------------------------------

    async def serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve requests on one connection until it closes.

        HTTP/1.1 keep-alive: the loop reads request after request off
        the same socket, ending on EOF, garbage framing, or an explicit
        ``Connection: close``.  Per-request metrics land inside the
        loop so a long-lived dashboard connection still counts every
        query it makes.
        """
        try:
            keep_alive = True
            while keep_alive:
                try:
                    method, target, headers, body = await self._read_request(
                        reader
                    )
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.LimitOverrunError,
                    asyncio.CancelledError,
                ):
                    # Client went away, sent garbage framing, or the
                    # server is shutting down while this keep-alive
                    # connection sat idle between requests.
                    break
                keep_alive = headers.get("connection", "").lower() != "close"
                status = 500
                parts = urlsplit(target)
                params = parse_qs(parts.query)
                tenant = headers.get("x-tenant", "anonymous")
                op = parts.path
                started = self.observer.clock()
                try:
                    with self.observer.span(
                        "serving.request", path=parts.path, tenant=tenant
                    ):
                        try:
                            payload = self.handle(
                                method, parts.path, params, body, tenant
                            )
                            status = 200
                            self._respond(
                                writer, 200, payload, keep_alive=keep_alive
                            )
                        except _HttpError as exc:
                            status = exc.status
                            extra = (
                                {"Retry-After": f"{exc.retry_after:.3f}"}
                                if exc.status == 429
                                else None
                            )
                            self._respond(
                                writer,
                                exc.status,
                                {"error": exc.message},
                                extra_headers=extra,
                                keep_alive=keep_alive,
                            )
                    await writer.drain()
                except (ConnectionError, asyncio.CancelledError):
                    break
                finally:
                    self.observer.counter(
                        "serving.requests", tenant=tenant, status=str(status)
                    ).inc()
                    self.observer.histogram(
                        "serving.request.seconds", path=op
                    ).observe(self.observer.clock() - started)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, bytes]:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > _MAX_HEADER_BYTES:
            raise asyncio.LimitOverrunError("header too large", len(head))
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise asyncio.IncompleteReadError(head, None) from None
        headers = {}
        for line in header_lines:
            if ":" in line:
                key, value = line.split(":", 1)
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise asyncio.LimitOverrunError("body too large", length)
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        extra_headers: Optional[dict] = None,
        keep_alive: bool = False,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for key, value in (extra_headers or {}).items():
            lines.append(f"{key}: {value}")
        writer.write("\r\n".join(lines).encode("latin-1") + b"\r\n\r\n" + body)


# ----------------------------------------------------------------------
# Threaded front end
# ----------------------------------------------------------------------


class ServerHandle:
    """A running query server: its bound address and a ``stop()``."""

    def __init__(self, host: str, port: int, loop, thread) -> None:
        self.host = host
        self.port = port
        self._loop = loop
        self._thread = thread

    @property
    def url(self) -> str:
        """Base URL of the server (no trailing slash)."""
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the event loop and join the server thread."""
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(
    registry: SketchRegistry,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    admission: Optional[AdmissionController] = None,
    observer: Optional[Observer] = None,
) -> ServerHandle:
    """Start the query server on a daemon thread; returns its handle.

    ``port=0`` binds an ephemeral port (read it off the handle).  The
    registry keeps ingesting on its own threads; the server only ever
    reads published snapshots, so starting or stopping it never perturbs
    ingestion.  *observer* defaults to the registry's.
    """
    obs = registry.observer if observer is None else as_observer(observer)
    server = _QueryServer(registry, admission, obs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    bound: dict = {}

    async def _start() -> None:
        listener = await asyncio.start_server(
            server.serve_connection, host, port
        )
        bound["port"] = listener.sockets[0].getsockname()[1]
        started.set()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(_start())
        try:
            loop.run_forever()
        finally:
            # Let cancelled handlers unwind before dropping the loop.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(target=_run, name="serving-http", daemon=True)
    thread.start()
    if not started.wait(10.0):
        raise ConfigurationError(f"query server failed to bind {host}:{port}")
    return ServerHandle(host, bound["port"], loop, thread)
