"""Concurrent multi-tenant sketch query serving (ROADMAP item 1).

The paper's estimators become a *service*: ingestion keeps consuming
stream chunks while any number of clients query the latest published
snapshot — point frequencies, self-joins, joins, and set expressions
over named streams (per "A Framework for Estimating Stream Expression
Cardinalities", arXiv 1510.01455) — each answer carrying the paper's
variance-derived confidence interval plus snapshot generation and
staleness metadata.

Layers (bottom up):

* :mod:`~repro.serving.expressions` — row-level set-expression
  estimators (union / intersection / distinct union) composed from
  snapshot sketch views, with conservative composed variance bounds;
* :mod:`~repro.serving.registry` — :class:`SketchRegistry`, named
  streams as (ingest engine, latest snapshot) pairs with atomic
  snapshot rotation; ingestion runs on threads, queries never block it;
* :mod:`~repro.serving.admission` — per-tenant token-bucket quotas and
  :class:`~repro.resilience.governor.LoadGovernor`-driven overload
  shedding with ``Retry-After`` hints;
* :mod:`~repro.serving.http` — a stdlib-``asyncio`` HTTP/JSON front end
  (:func:`serve_in_thread` runs it on a background thread).

Everything threads ``observer=`` for ``serving.*`` metrics and spans;
see ``docs/SERVING.md`` for the architecture tour.
"""

from .admission import AdmissionController, AdmissionDecision, TenantPolicy
from .expressions import (
    EXPRESSION_OPS,
    ExpressionEstimate,
    evaluate_expression,
)
from .registry import QueryResult, RotationPolicy, SketchRegistry, StreamMeta
from .http import ServerHandle, serve_in_thread

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "EXPRESSION_OPS",
    "ExpressionEstimate",
    "QueryResult",
    "RotationPolicy",
    "ServerHandle",
    "SketchRegistry",
    "StreamMeta",
    "TenantPolicy",
    "evaluate_expression",
    "serve_in_thread",
]
