"""Per-tenant admission control for the serving layer.

Two gates, applied in order:

1. **Quota** — each tenant owns a token bucket (``qps`` refill, ``burst``
   capacity).  A query with no token is shed with a ``Retry-After`` hint
   of exactly when the next token arrives.  Deterministic given the
   injected clock, so tests drive it with a fake timer.
2. **Overload** — a shared :class:`~repro.resilience.governor.LoadGovernor`
   watches the measured per-query cost against a latency budget, exactly
   as the ingest path uses it against a per-tuple budget.  When the
   governor proposes a keep-probability below 1, admitted queries are
   *thinned deterministically*: query ``k`` of the overload episode is
   admitted iff ``admitted + 1 ≤ p·arrived`` — the same no-RNG thinning a
   Bernoulli(``p``) filter achieves in expectation, but reproducible.

Shedding is visible to the observer (``serving.admission`` counters with
``tenant=``/``reason=`` labels) and to the client (HTTP 429 plus
``Retry-After`` seconds, served by :mod:`repro.serving.http`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ConfigurationError
from ..observability.observer import Observer, as_observer
from ..resilience.governor import LoadGovernor

__all__ = ["AdmissionController", "AdmissionDecision", "TenantPolicy"]


@dataclass(frozen=True)
class TenantPolicy:
    """Quota of one tenant: sustained ``qps`` with ``burst`` headroom."""

    qps: float
    burst: float = 1.0

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ConfigurationError(f"qps must be > 0, got {self.qps}")
        if self.burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {self.burst}")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``reason`` is ``"ok"`` for admitted queries, ``"quota"`` for a
    per-tenant token-bucket shed, ``"overload"`` for a governor shed;
    ``retry_after`` is the seconds the client should wait (0 when
    admitted).
    """

    admitted: bool
    retry_after: float = 0.0
    reason: str = "ok"


class _TokenBucket:
    """Classic token bucket with an injectable monotonic clock."""

    __slots__ = ("qps", "burst", "tokens", "stamp")

    def __init__(self, policy: TenantPolicy, now: float) -> None:
        self.qps = policy.qps
        self.burst = policy.burst
        self.tokens = policy.burst
        self.stamp = now

    def take(self, now: float) -> float:
        """Consume one token; returns 0, or seconds until one exists."""
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.qps)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.qps


class AdmissionController:
    """Quota + overload gate shared by every serving endpoint.

    Parameters
    ----------
    policies:
        Per-tenant :class:`TenantPolicy` map.  ``default_policy`` covers
        tenants not listed; with neither, unknown tenants are admitted
        freely (quota gate off for them).
    governor:
        Optional :class:`~repro.resilience.governor.LoadGovernor` whose
        budget is interpreted as seconds per query.  Feed it measured
        query latencies via :meth:`observe`; when it proposes shedding,
        admitted traffic is thinned deterministically.
    clock:
        Injectable monotonic timer (quota refill and ``Retry-After``
        arithmetic run on it).
    observer:
        Receives ``serving.admission`` counters labelled by tenant and
        reason.
    """

    def __init__(
        self,
        policies: Optional[dict] = None,
        *,
        default_policy: Optional[TenantPolicy] = None,
        governor: Optional[LoadGovernor] = None,
        clock: Callable[[], float] = time.monotonic,
        observer: Optional[Observer] = None,
    ) -> None:
        self._policies = dict(policies or {})
        self._default = default_policy
        self._governor = governor
        self._clock = clock
        self._observer = as_observer(observer)
        self._lock = threading.Lock()
        self._buckets: dict[str, _TokenBucket] = {}
        self._keep_probability = 1.0
        self._arrived = 0
        self._admitted = 0

    @property
    def keep_probability(self) -> float:
        """Current overload keep-probability (1.0 when healthy)."""
        return self._keep_probability

    def _bucket(self, tenant: str, now: float) -> Optional[_TokenBucket]:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            policy = self._policies.get(tenant, self._default)
            if policy is None:
                return None
            bucket = self._buckets[tenant] = _TokenBucket(policy, now)
        return bucket

    def admit(self, tenant: str) -> AdmissionDecision:
        """Decide one query; thread-safe."""
        with self._lock:
            now = self._clock()
            bucket = self._bucket(tenant, now)
            if bucket is not None:
                wait = bucket.take(now)
                if wait > 0.0:
                    decision = AdmissionDecision(False, wait, "quota")
                    self._count(tenant, decision.reason)
                    return decision
            p = self._keep_probability
            self._arrived += 1
            if p < 1.0 and self._admitted + 1 > p * self._arrived:
                retry = (1.0 - p) / (p * bucket.qps) if bucket else 1.0 - p
                decision = AdmissionDecision(False, retry, "overload")
                self._count(tenant, decision.reason)
                return decision
            self._admitted += 1
            self._count(tenant, "ok")
            return AdmissionDecision(True)

    def observe(self, elapsed: float) -> None:
        """Fold one served query's latency into the overload model."""
        if self._governor is None:
            return
        with self._lock:
            proposed = self._governor.propose(self._keep_probability, 1, elapsed)
            if proposed is not None:
                self._keep_probability = proposed
                # Fresh thinning episode at the new rate.
                self._arrived = 0
                self._admitted = 0
                self._observer.gauge("serving.admission.keep_probability").set(
                    proposed
                )

    def _count(self, tenant: str, reason: str) -> None:
        self._observer.counter(
            "serving.admission", tenant=tenant, reason=reason
        ).inc()
