"""Set-expression estimators over named stream snapshots.

"A Framework for Estimating Stream Expression Cardinalities"
(arXiv 1510.01455) shows that sketch summaries of individual streams
compose over set expressions.  Our sketches are linear, so the bag-union
of streams is exactly the sum of their sketches (the monoid merge), and
every expression below reduces to second moments and inner products of
the per-stream sketch views a snapshot already holds:

``union`` (bag semantics, any number of streams)
    ``F₂(A ⊎ B ⊎ …) = Σᵢ F₂(i) + 2 Σ_{i<j} J(i, j)`` — expanding the
    square of the summed frequency vectors.

``intersection`` (join mass, two streams)
    ``⟨f, g⟩ = Σ_v f(v)·g(v)`` — the join size; for indicator (0/1)
    streams this is exactly ``|A ∩ B|``.

``set_union`` (distinct semantics, two streams)
    ``|A ∪ B| = F₂(A) + F₂(B) − ⟨f, g⟩`` for indicator streams, by
    inclusion–exclusion (``F₂ = cardinality`` when frequencies are 0/1).

Composition happens **per sketch row** with the WOR unbiasing applied
per term *before* rows are combined (the corrections are affine with
positive scale, so they commute with the median within each term; doing
it row-level keeps the estimator identical to sketching the merged
stream directly — tested against a literal monoid merge in
``tests/serving/test_expressions.py``).

Variance bounds compose by Cauchy–Schwarz: for any dependence structure,
``Var(Σ Xᵢ) ≤ (Σ σᵢ)²``, so each term contributes the square root of its
prefix variance bound (scaled by its coefficient) and the sum of
standard deviations is squared.  Conservative, never anti-conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..sampling.unbiasing import join_scale, self_join_correction
from ..sketches._combine import combine_estimates
from ..variance.runtime import prefix_join_variance, prefix_self_join_variance

__all__ = ["EXPRESSION_OPS", "ExpressionEstimate", "evaluate_expression"]

#: Supported expression operators and their arity constraints.
EXPRESSION_OPS = {
    "union": (2, None),
    "intersection": (2, 2),
    "set_union": (2, 2),
}


@dataclass(frozen=True)
class ExpressionEstimate:
    """Result of a set-expression evaluation over stream snapshots."""

    op: str
    estimate: float
    variance_bound: float


def _corrected_rows_f2(snapshot, name: str) -> np.ndarray:
    """Per-row unbiased ``F₂`` estimates for one stream's frozen prefix."""
    relation = snapshot.relation(name)
    correction = self_join_correction(relation.info())
    rows = snapshot.sketch_view(name).row_second_moments()
    return (
        float(correction.scale) * rows
        - float(correction.random_coefficient) * relation.scanned
        - float(correction.constant)
    )


def _corrected_rows_join(snap_a, name_a: str, snap_b, name_b: str) -> np.ndarray:
    """Per-row unbiased join estimates between two frozen prefixes."""
    scale = float(
        join_scale(snap_a.relation(name_a).info(), snap_b.relation(name_b).info())
    )
    rows = snap_a.sketch_view(name_a).row_inner_products(
        snap_b.sketch_view(name_b)
    )
    return scale * rows


def _term_sigma_f2(snapshot, name: str) -> float:
    relation = snapshot.relation(name)
    estimate = float(
        combine_estimates(
            _corrected_rows_f2(snapshot, name),
            snapshot.template_header.get("combine", "median"),
            snapshot.template_header.get("groups", 1),
        )
    )
    variance = prefix_self_join_variance(
        estimate,
        scanned=relation.scanned,
        total=relation.total_tuples,
        averaged=snapshot.averaged_estimators,
    )
    return variance**0.5


def _term_sigma_join(snap_a, name_a: str, snap_b, name_b: str) -> float:
    rel_a = snap_a.relation(name_a)
    rel_b = snap_b.relation(name_b)
    estimate = float(
        combine_estimates(
            _corrected_rows_join(snap_a, name_a, snap_b, name_b),
            snap_a.template_header.get("combine", "median"),
            snap_a.template_header.get("groups", 1),
        )
    )
    f2_a = float(
        combine_estimates(
            _corrected_rows_f2(snap_a, name_a),
            snap_a.template_header.get("combine", "median"),
            snap_a.template_header.get("groups", 1),
        )
    )
    f2_b = float(
        combine_estimates(
            _corrected_rows_f2(snap_b, name_b),
            snap_b.template_header.get("combine", "median"),
            snap_b.template_header.get("groups", 1),
        )
    )
    variance = prefix_join_variance(
        estimate,
        f2_a,
        f2_b,
        scanned_f=rel_a.scanned,
        total_f=rel_a.total_tuples,
        scanned_g=rel_b.scanned,
        total_g=rel_b.total_tuples,
        averaged=min(snap_a.averaged_estimators, snap_b.averaged_estimators),
    )
    return variance**0.5


def _check_streams(op: str, streams) -> list:
    streams = list(streams)
    if op not in EXPRESSION_OPS:
        raise ConfigurationError(
            f"unknown expression op {op!r}; supported: {sorted(EXPRESSION_OPS)}"
        )
    low, high = EXPRESSION_OPS[op]
    if len(streams) < low or (high is not None and len(streams) > high):
        span = f"exactly {low}" if high == low else f"at least {low}"
        raise ConfigurationError(
            f"op {op!r} takes {span} streams, got {len(streams)}"
        )
    names = [name for _, name in streams]
    if len(set(names)) != len(names):
        raise ConfigurationError(
            f"expression streams must be distinct, got {names}"
        )
    for snapshot, name in streams:
        if snapshot.relation(name).scanned < 2:
            raise ConfigurationError(
                f"stream {name!r} needs at least 2 scanned tuples for an "
                "expression estimate"
            )
    return streams


def evaluate_expression(op: str, streams) -> ExpressionEstimate:
    """Evaluate a set expression over ``(snapshot, relation_name)`` pairs.

    *streams* is a sequence of pairs — each an
    :class:`~repro.engine.snapshot.EngineSnapshot` and the name of the
    relation inside it (a :class:`~repro.serving.registry.SketchRegistry`
    stream's snapshot holds one relation named after the stream).  All
    snapshots must come from engines sharing one seed, so their sketch
    views are mutually compatible; incompatible views raise.

    Returns the estimate with a conservative composed variance bound —
    see the module docstring for the estimator algebra.
    """
    streams = _check_streams(op, streams)
    header = streams[0][0].template_header
    combine = header.get("combine", "median")
    groups = header.get("groups", 1)

    if op == "intersection":
        (snap_a, name_a), (snap_b, name_b) = streams
        rows = _corrected_rows_join(snap_a, name_a, snap_b, name_b)
        estimate = float(combine_estimates(rows, combine, groups))
        sigma = _term_sigma_join(snap_a, name_a, snap_b, name_b)
        return ExpressionEstimate(op, estimate, sigma * sigma)

    if op == "set_union":
        (snap_a, name_a), (snap_b, name_b) = streams
        rows = (
            _corrected_rows_f2(snap_a, name_a)
            + _corrected_rows_f2(snap_b, name_b)
            - _corrected_rows_join(snap_a, name_a, snap_b, name_b)
        )
        estimate = float(combine_estimates(rows, combine, groups))
        sigma = (
            _term_sigma_f2(snap_a, name_a)
            + _term_sigma_f2(snap_b, name_b)
            + _term_sigma_join(snap_a, name_a, snap_b, name_b)
        )
        return ExpressionEstimate(op, estimate, sigma * sigma)

    # union (bag semantics): F2 of the monoid-merged stream.
    rows = np.zeros(
        streams[0][0].sketch_view(streams[0][1]).rows, dtype=np.float64
    )
    sigma = 0.0
    for snapshot, name in streams:
        rows += _corrected_rows_f2(snapshot, name)
        sigma += _term_sigma_f2(snapshot, name)
    for i, (snap_a, name_a) in enumerate(streams):
        for snap_b, name_b in streams[i + 1 :]:
            rows += 2.0 * _corrected_rows_join(snap_a, name_a, snap_b, name_b)
            sigma += 2.0 * _term_sigma_join(snap_a, name_a, snap_b, name_b)
    estimate = float(combine_estimates(rows, combine, groups))
    return ExpressionEstimate(op, estimate, sigma * sigma)
