"""Feedback governor: retune the shedding rate to meet a processing budget.

The paper's planner (:mod:`repro.core.planning`) picks one keep-probability
up front from a profiled workload.  Production streams do not cooperate —
arrival rate and per-tuple cost both drift — so this module closes the
loop: after every chunk the governor compares the observed processing cost
against a configured budget and proposes a new Bernoulli rate for the
*next* chunk.  Rate changes flow into the
:class:`~repro.resilience.adaptive.AdaptiveSheddingSketcher`, whose
piecewise-rate correction keeps estimates unbiased and whose widened
variance bound keeps the reported confidence intervals valid while the
system degrades gracefully under overload.

The control law is deliberately simple and deterministic (given its
inputs): per-kept-tuple cost is tracked with an exponentially-weighted
moving average, the proposed rate is the one that would make the *arrived*
per-tuple cost meet the budget with some headroom, and a deadband plus a
growth cap keep the rate from thrashing chunk to chunk.  All timing enters
through the caller, so tests drive the governor with a synthetic cost
model and real deployments pass wall-clock measurements.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from .clock import DEFAULT_CLOCK, Clock, Ewma

__all__ = ["LoadGovernor"]


class LoadGovernor:
    """Adaptive controller for the Bernoulli keep-probability.

    Parameters
    ----------
    budget_per_tuple:
        Seconds the pipeline may spend per *arriving* tuple — the
        sustainable ingest cost.  A stream arriving at ``r`` tuples/second
        is sustainable while the per-arrived-tuple processing cost stays
        below ``1/r``.
    p_min, p_max:
        Clamp range for proposed rates.  ``p_min`` bounds how aggressively
        the governor may shed (and therefore how wide the confidence
        bounds can get).
    headroom:
        Fraction of the budget to actually target (default 0.9), leaving
        slack for cost jitter.
    smoothing:
        EWMA weight of the newest per-kept-tuple cost observation.
    growth_limit:
        Maximum multiplicative rate *increase* per proposal (recovery
        after a burst is gradual; decreases are uncapped so overload is
        shed immediately).
    deadband:
        Minimum relative change worth acting on; smaller proposals are
        suppressed to avoid segment churn.
    clock:
        Shared :data:`~repro.resilience.clock.Clock` for callers that
        time chunks through the governor (:meth:`measure`); injectable
        for deterministic tests, defaults to the library-wide
        :data:`~repro.resilience.clock.DEFAULT_CLOCK`.
    """

    __slots__ = (
        "budget_per_tuple",
        "p_min",
        "p_max",
        "headroom",
        "growth_limit",
        "deadband",
        "clock",
        "_cost",
    )

    def __init__(
        self,
        budget_per_tuple: float,
        *,
        p_min: float = 1e-4,
        p_max: float = 1.0,
        headroom: float = 0.9,
        smoothing: float = 0.5,
        growth_limit: float = 2.0,
        deadband: float = 0.1,
        clock: Clock = DEFAULT_CLOCK,
    ) -> None:
        if budget_per_tuple <= 0:
            raise ConfigurationError(
                f"budget_per_tuple must be > 0, got {budget_per_tuple}"
            )
        if not 0 < p_min <= p_max <= 1:
            raise ConfigurationError(
                f"need 0 < p_min <= p_max <= 1, got p_min={p_min}, p_max={p_max}"
            )
        if not 0 < headroom <= 1:
            raise ConfigurationError(f"headroom must be in (0, 1], got {headroom}")
        if not 0 < smoothing <= 1:
            raise ConfigurationError(f"smoothing must be in (0, 1], got {smoothing}")
        if growth_limit < 1:
            raise ConfigurationError(
                f"growth_limit must be >= 1, got {growth_limit}"
            )
        if deadband < 0:
            raise ConfigurationError(f"deadband must be >= 0, got {deadband}")
        self.budget_per_tuple = float(budget_per_tuple)
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.headroom = float(headroom)
        self.growth_limit = float(growth_limit)
        self.deadband = float(deadband)
        self.clock = clock
        self._cost = Ewma(smoothing)

    # ------------------------------------------------------------------

    @property
    def smoothing(self) -> float:
        """EWMA weight of the newest per-kept-tuple cost observation."""
        return self._cost.smoothing

    @property
    def cost_estimate(self) -> Optional[float]:
        """Current EWMA estimate of the per-kept-tuple cost (seconds)."""
        return self._cost.value

    def observe(self, kept: int, elapsed: float) -> None:
        """Fold one chunk's measured processing cost into the cost model.

        Chunks with no kept tuples carry no per-tuple signal and are
        skipped.
        """
        if elapsed < 0:
            raise ConfigurationError(f"elapsed must be >= 0, got {elapsed}")
        if kept < 1:
            return
        self._cost.update(elapsed / kept)

    def propose(self, current_p: float, kept: int, elapsed: float) -> Optional[float]:
        """Observe one chunk and propose the next keep-probability.

        Returns the new rate, or ``None`` when the current one should be
        kept (no cost signal yet, or the change falls inside the
        deadband).  The proposal targets ``headroom · budget`` per
        *arriving* tuple: since per-arrived cost scales as ``p · c`` with
        ``c`` the per-kept cost, the target rate is
        ``headroom · budget / c``, clamped and growth-capped.
        """
        if not 0 < current_p <= 1:
            raise ConfigurationError(
                f"current_p must be in (0, 1], got {current_p}"
            )
        self.observe(kept, elapsed)
        cost = self._cost.value
        if cost is None or cost <= 0:
            return None
        target = self.headroom * self.budget_per_tuple / cost
        target = min(target, current_p * self.growth_limit, self.p_max)
        target = max(target, self.p_min)
        if abs(target - current_p) <= self.deadband * current_p:
            return None
        return target

    # ------------------------------------------------------------------

    def state(self) -> dict:
        """JSON-serializable controller state (the learned cost model)."""
        return {"cost": self._cost.value}

    def restore(self, state: dict) -> None:
        """Restore the learned cost model from a :meth:`state` snapshot."""
        self._cost.restore({"value": state.get("cost")})

    def __repr__(self) -> str:
        cost = self._cost.value
        return (
            f"LoadGovernor(budget_per_tuple={self.budget_per_tuple:.3g}, "
            f"cost_estimate={cost if cost is None else round(cost, 9)})"
        )
