"""Fault-tolerant streaming runtime: envelopes, checkpoints, recovery.

:class:`StreamRuntime` wraps an
:class:`~repro.resilience.adaptive.AdaptiveSheddingSketcher` with the full
resilience stack:

* **Chunk envelopes** — each chunk travels as a
  :class:`ChunkEnvelope` carrying its sequence number, declared tuple
  count, and CRC32.  Truncated or bit-flipped deliveries raise
  :class:`~repro.errors.StreamIntegrityError`; re-deliveries of already
  processed chunks are skipped (exactly-once application on top of
  at-least-once delivery), which is what makes replay-based recovery
  idempotent.
* **Durable checkpoints** — every ``checkpoint_every`` chunks the full
  pipeline state (sketch header + counters, shedder RNG/skip state, rate
  schedule, governor cost model, stream cursor) is snapshotted through
  :class:`~repro.resilience.checkpoint.CheckpointManager`.
* **Recovery** — :meth:`StreamRuntime.recover` rebuilds the runtime from
  the newest intact checkpoint; replaying the stream from the beginning
  then yields counters *bit-identical* to an uninterrupted run, because
  already-applied chunks are skipped by sequence number and the shedder's
  RNG state resumes exactly where the snapshot left it.
* **Optional governor and hardener** — rate retuning and bad-record
  policies plug in per chunk; all timing flows through an injectable
  clock so tests are deterministic.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

import numpy as np

from ..errors import CheckpointError, ConfigurationError, StreamIntegrityError
from ..observability.observer import Observer, as_observer
from ..observability.quality import observe_shedding
from ..rng import SeedLike
from ..sketches.base import Sketch
from ..sketches.serialization import build_sketch, expected_state_shape, sketch_header
from .adaptive import AdaptiveSheddingSketcher
from .checkpoint import CheckpointManager
from .clock import DEFAULT_CLOCK, Clock
from .governor import LoadGovernor
from .hardening import InputHardener

__all__ = [
    "ChunkEnvelope",
    "StreamRuntime",
    "envelope_stream",
    "make_envelope",
    "verify_payload",
]


@dataclass(frozen=True)
class ChunkEnvelope:
    """One chunk of the stream with enough metadata to verify delivery."""

    sequence: int
    keys: np.ndarray
    count: int
    crc32: int


def make_envelope(sequence: int, keys) -> ChunkEnvelope:
    """Seal one chunk into a :class:`ChunkEnvelope` (count + CRC32)."""
    if sequence < 0:
        raise ConfigurationError(f"sequence must be >= 0, got {sequence}")
    keys = np.asarray(keys)
    return ChunkEnvelope(
        sequence=int(sequence),
        keys=keys,
        count=int(keys.size),
        crc32=zlib.crc32(np.ascontiguousarray(keys).tobytes()),
    )


def envelope_stream(chunks: Iterable, start: int = 0) -> Iterator[ChunkEnvelope]:
    """Wrap raw chunks into sequentially numbered envelopes."""
    sequence = int(start)
    for chunk in chunks:
        yield make_envelope(sequence, chunk)
        sequence += 1


def verify_payload(
    envelope: ChunkEnvelope,
    on_reject: Optional[Callable[[str], None]] = None,
) -> np.ndarray:
    """Check an envelope's payload against its declared count and CRC32.

    Returns the verified keys array.  A truncated or bit-flipped payload
    raises :class:`~repro.errors.StreamIntegrityError`; *on_reject*, when
    given, is called first with the rejection reason (``"truncated"`` or
    ``"crc"``) so callers can account the failure under their own metric
    names.  Shared by :meth:`StreamRuntime.process` and the dataplane's
    head-of-pipeline cursor.
    """
    keys = np.asarray(envelope.keys)
    if int(keys.size) != envelope.count:
        if on_reject is not None:
            on_reject("truncated")
        raise StreamIntegrityError(
            f"chunk {envelope.sequence} truncated: declared "
            f"{envelope.count} tuples, received {keys.size}"
        )
    if zlib.crc32(np.ascontiguousarray(keys).tobytes()) != envelope.crc32:
        if on_reject is not None:
            on_reject("crc")
        raise StreamIntegrityError(
            f"chunk {envelope.sequence} failed its CRC32 payload check"
        )
    return keys


class StreamRuntime:
    """Crash-tolerant driver for one sketched stream.

    Parameters
    ----------
    sketch:
        The sketch to maintain (any type supported by
        :mod:`repro.sketches.serialization`).
    p, seed:
        Initial keep-probability and shedder seed (forwarded to
        :class:`~repro.resilience.adaptive.AdaptiveSheddingSketcher`).
    checkpoint_dir:
        Directory for durable snapshots; ``None`` disables checkpointing.
    checkpoint_every:
        Chunks between snapshots.
    keep_checkpoints:
        Snapshots retained on disk (see
        :class:`~repro.resilience.checkpoint.CheckpointManager`).
    governor:
        Optional :class:`~repro.resilience.governor.LoadGovernor`; when
        present, each chunk's measured cost feeds a rate proposal applied
        before the next chunk.
    hardener:
        Optional :class:`~repro.resilience.hardening.InputHardener`
        applied to every chunk's payload before shedding.
    clock:
        Zero-argument monotonic timer used to cost chunks (injectable for
        deterministic tests; defaults to :func:`time.perf_counter`).
    observer:
        Optional :class:`~repro.observability.Observer` receiving the
        runtime's chunk/tuple counters, shed-rate and governor
        duty-cycle gauges, latency histograms, and checkpoint spans;
        defaults to the near-free null observer.
    """

    __slots__ = (
        "sketcher",
        "governor",
        "hardener",
        "clock",
        "checkpoint_every",
        "position",
        "duplicates",
        "checkpoints_written",
        "observer",
        "_manager",
    )

    def __init__(
        self,
        sketch: Sketch,
        *,
        p: float = 1.0,
        seed: SeedLike = None,
        checkpoint_dir=None,
        checkpoint_every: int = 16,
        keep_checkpoints: int = 2,
        governor: Optional[LoadGovernor] = None,
        hardener: Optional[InputHardener] = None,
        clock: Clock = DEFAULT_CLOCK,
        observer: Optional[Observer] = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.sketcher = AdaptiveSheddingSketcher(sketch, p, seed)
        self.governor = governor
        self.hardener = hardener
        self.clock = clock
        self.observer = as_observer(observer)
        self.checkpoint_every = int(checkpoint_every)
        self.position = 0
        self.duplicates = 0
        self.checkpoints_written = 0
        self._manager = (
            None
            if checkpoint_dir is None
            else CheckpointManager(checkpoint_dir, keep=keep_checkpoints)
        )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    @property
    def sketch(self) -> Sketch:
        """The sketch being maintained."""
        return self.sketcher.sketch

    @property
    def checkpoint_manager(self) -> Optional[CheckpointManager]:
        """The manager persisting snapshots, or ``None`` when disabled."""
        return self._manager

    def process(self, envelope: ChunkEnvelope) -> int:
        """Apply one envelope; returns the number of tuples sketched.

        Chunks already applied (``sequence < position``) are counted as
        duplicates and skipped.  A sequence *ahead* of the cursor means
        chunks were lost in flight and raises
        :class:`~repro.errors.StreamIntegrityError`, as does an envelope
        whose payload fails its count or CRC check.
        """
        obs = self.observer
        if envelope.sequence < self.position:
            self.duplicates += 1
            obs.counter("runtime.chunks.duplicate").inc()
            return 0
        if envelope.sequence > self.position:
            obs.counter("runtime.chunks.rejected", reason="gap").inc()
            raise StreamIntegrityError(
                f"stream gap: expected chunk {self.position}, "
                f"received chunk {envelope.sequence}"
            )
        keys = verify_payload(
            envelope,
            lambda reason: obs.counter("runtime.chunks.rejected", reason=reason).inc(),
        )
        if self.hardener is not None:
            keys = self.hardener.sanitize(keys)
        with obs.span("runtime.chunk", sequence=envelope.sequence):
            started = self.clock()
            kept = self.sketcher.process(keys)
            elapsed = self.clock() - started
            if self.governor is not None:
                proposal = self.governor.propose(self.sketcher.rate, kept, elapsed)
                if proposal is not None:
                    self.sketcher.set_rate(proposal)
                    obs.counter("runtime.rate.retunes").inc()
        obs.counter("runtime.chunks.accepted").inc()
        obs.counter("runtime.tuples.seen").inc(int(keys.size))
        obs.counter("runtime.tuples.sketched").inc(kept)
        obs.histogram("runtime.chunk.seconds").observe(elapsed)
        if obs.enabled:
            observe_shedding(
                obs,
                self.sketcher,
                self.governor,
                arrived=int(keys.size),
                elapsed=elapsed,
            )
        self.position += 1
        if self._manager is not None and self.position % self.checkpoint_every == 0:
            self.checkpoint()
        return kept

    def run(self, stream: Iterable) -> int:
        """Drive the runtime over a stream; returns total tuples sketched.

        *stream* may yield :class:`ChunkEnvelope` objects or raw key
        chunks; raw chunks are sealed on the fly with sequence numbers
        starting at 0, so re-running the same raw stream after a recovery
        naturally skips the already-applied prefix.

        Since the dataplane landed this is a one-stage
        :class:`~repro.dataplane.Pipeline` (synchronous mode: no queue,
        no threads) delivering into the runtime's own cursor — the same
        loop every composed pipeline uses.
        """
        # Local import: repro.dataplane builds on this module.
        from ..dataplane import IterableSource, Pipeline, RuntimeSink

        sink = RuntimeSink(self)
        Pipeline(
            IterableSource(stream), sinks=[sink], queue_depth=0, clock=self.clock
        ).run()
        if self._manager is not None and self.position % self.checkpoint_every != 0:
            self.checkpoint()
        return sink.kept

    # ------------------------------------------------------------------
    # Estimates (delegated)
    # ------------------------------------------------------------------

    def self_join_size(self) -> float:
        """Unbiased full-stream self-join (second moment) estimate."""
        return self.sketcher.self_join_size()

    def self_join_interval(self, confidence: float = 0.95, *, method: str = "chebyshev"):
        """Confidence interval for :meth:`self_join_size` (rate-aware)."""
        return self.sketcher.self_join_interval(confidence, method=method)

    def join_size(self, other: "StreamRuntime") -> float:
        """Unbiased join-size estimate against another runtime's stream."""
        return self.sketcher.join_size(other.sketcher)

    # ------------------------------------------------------------------
    # Checkpoint / recover
    # ------------------------------------------------------------------

    def checkpoint(self):
        """Write one durable snapshot now; returns its path.

        Raises :class:`~repro.errors.ConfigurationError` when the runtime
        was built without a checkpoint directory.
        """
        if self._manager is None:
            raise ConfigurationError(
                "this runtime has no checkpoint_dir; nothing to snapshot"
            )
        obs = self.observer
        started = self.clock()
        with obs.span("runtime.checkpoint.write", position=self.position):
            state = {
                "sketch": sketch_header(self.sketch),
                "sketcher": self.sketcher.state(),
                "duplicates": self.duplicates,
            }
            if self.governor is not None:
                state["governor"] = self.governor.state()
            path = self._manager.save(
                position=self.position,
                state=state,
                arrays={"counters": self.sketch.counters_snapshot()},
            )
        obs.histogram("runtime.checkpoint.seconds").observe(
            self.clock() - started
        )
        obs.counter("runtime.checkpoints.written").inc()
        self.checkpoints_written += 1
        return path

    @classmethod
    def recover(
        cls,
        checkpoint_dir,
        *,
        checkpoint_every: int = 16,
        keep_checkpoints: int = 2,
        governor: Optional[LoadGovernor] = None,
        hardener: Optional[InputHardener] = None,
        clock: Clock = DEFAULT_CLOCK,
        strict: bool = False,
        observer: Optional[Observer] = None,
    ) -> "StreamRuntime":
        """Rebuild a runtime from the newest intact snapshot on disk.

        The sketch is reconstructed from its serialized header and the
        checkpointed counters (verified against the expected shape), the
        shedder resumes with its exact RNG and skip state, and the stream
        cursor is restored — so replaying the stream from the start skips
        the applied prefix and continues bit-identically.  Raises
        :class:`~repro.errors.CheckpointError` when no usable snapshot
        exists (or, with ``strict=True``, on the first corrupt one).

        *observer* is attached to the recovered runtime and receives a
        ``runtime.checkpoint.restore`` span plus a
        ``runtime.recoveries`` counter increment for the recovery itself.
        """
        obs = as_observer(observer)
        manager = CheckpointManager(checkpoint_dir, keep=keep_checkpoints)
        with obs.span("runtime.checkpoint.restore") as restore_span:
            snapshot = manager.latest(strict=strict)
            if snapshot is None:
                raise CheckpointError(
                    f"no usable checkpoint in {checkpoint_dir} "
                    f"({len(manager.corrupt_detected)} corrupt snapshot(s) detected)"
                )
            header = snapshot.state.get("sketch")
            if not isinstance(header, dict):
                raise CheckpointError(
                    f"checkpoint {snapshot.path} has no serialized sketch header"
                )
            counters = snapshot.arrays.get("counters")
            if counters is None:
                raise CheckpointError(
                    f"checkpoint {snapshot.path} has no counters payload"
                )
            sketch = build_sketch(header)
            expected = expected_state_shape(header)
            if tuple(counters.shape) != expected:
                raise CheckpointError(
                    f"checkpoint {snapshot.path} counters shape {counters.shape} "
                    f"does not match the sketch's expected {expected}"
                )
            sketch.load_counters(counters)
            runtime = object.__new__(cls)
            runtime.sketcher = AdaptiveSheddingSketcher.restore(
                sketch, snapshot.state["sketcher"]
            )
            runtime.governor = governor
            if governor is not None and "governor" in snapshot.state:
                governor.restore(snapshot.state["governor"])
            runtime.hardener = hardener
            runtime.clock = clock
            runtime.checkpoint_every = int(checkpoint_every)
            runtime.position = snapshot.position
            runtime.duplicates = int(snapshot.state.get("duplicates", 0))
            runtime.checkpoints_written = 0
            runtime.observer = obs
            runtime._manager = manager
            restore_span.annotate(position=snapshot.position)
        obs.counter("runtime.recoveries").inc()
        return runtime

    def __repr__(self) -> str:
        return (
            f"StreamRuntime(position={self.position}, rate={self.sketcher.rate}, "
            f"kept={self.sketcher.kept}, duplicates={self.duplicates}, "
            f"checkpoints={self.checkpoints_written})"
        )
