"""Fault-tolerant streaming runtime for the paper's sketching pipelines.

This package hardens the reproduction for long-running deployments:

* :mod:`~repro.resilience.checkpoint` — durable, atomic, CRC-verified
  snapshots of full pipeline state;
* :mod:`~repro.resilience.schedule` / :mod:`~repro.resilience.adaptive` —
  piecewise-rate Bernoulli load shedding with unbiased estimates and
  rate-aware confidence bounds (generalizing the paper's Props 13–14);
* :mod:`~repro.resilience.governor` — a feedback controller that retunes
  the shedding rate to a processing budget;
* :mod:`~repro.resilience.hardening` — bad-record policies and retrying
  stream readers at the I/O boundary;
* :mod:`~repro.resilience.runtime` — :class:`StreamRuntime`, tying the
  pieces together with envelope integrity checks and ``recover()``;
* :mod:`~repro.resilience.chaos` — the deterministic fault-injection
  harness exercising all of the above (including the process pool);
* :mod:`~repro.resilience.distributed` — the coordinator-side control
  plane for sharded scans: seeded :class:`BackoffPolicy` retry delays,
  :class:`ShardSupervisor` deadlines / heartbeats / hedged dispatch, and
  the widened variance bounds behind graceful degradation.
"""

from .adaptive import AdaptiveSheddingSketcher, averaged_estimator_count
from .clock import DEFAULT_CLOCK, Clock, Ewma, ManualClock
from .chaos import (
    ChaosInjector,
    ChaosShardWorker,
    ParallelChaosPlan,
    ResultDropped,
    SimulatedCrash,
    WorkerFault,
    make_parallel_chaos_plan,
    run_until_complete,
)
from .checkpoint import CHECKPOINT_VERSION, Checkpoint, CheckpointManager
from .distributed import (
    BackoffPolicy,
    BackoffSchedule,
    ShardFailure,
    ShardSupervisor,
    SupervisionOutcome,
    widened_join_variance,
    widened_self_join_variance,
)
from .governor import LoadGovernor
from .hardening import InputHardener, retrying_read_stream
from .runtime import (
    ChunkEnvelope,
    StreamRuntime,
    envelope_stream,
    make_envelope,
    verify_payload,
)
from .schedule import RateSchedule, RateSegment

__all__ = [
    "AdaptiveSheddingSketcher",
    "averaged_estimator_count",
    "Clock",
    "DEFAULT_CLOCK",
    "Ewma",
    "ManualClock",
    "BackoffPolicy",
    "BackoffSchedule",
    "ChaosInjector",
    "ChaosShardWorker",
    "ParallelChaosPlan",
    "ResultDropped",
    "ShardFailure",
    "ShardSupervisor",
    "SimulatedCrash",
    "SupervisionOutcome",
    "WorkerFault",
    "make_parallel_chaos_plan",
    "run_until_complete",
    "widened_join_variance",
    "widened_self_join_variance",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointManager",
    "LoadGovernor",
    "InputHardener",
    "retrying_read_stream",
    "ChunkEnvelope",
    "StreamRuntime",
    "envelope_stream",
    "make_envelope",
    "verify_payload",
    "RateSchedule",
    "RateSegment",
]
