"""Durable checkpoints: atomic, CRC-verified snapshots of pipeline state.

A checkpoint is a single ``.npz`` archive written atomically (temp file →
``fsync`` → ``os.replace``) so a crash mid-write can never leave a
half-visible snapshot.  The archive holds:

* ``manifest`` — JSON bytes: format version, monotonically increasing
  sequence number, the stream cursor (``position`` = next chunk to
  process), an arbitrary JSON ``state`` blob (sketch header via
  :func:`repro.sketches.serialization.sketch_header`, shedder/schedule/
  governor state, …), and per-array metadata (shape, dtype, CRC32);
* ``manifest_crc`` — CRC32 of the manifest bytes themselves;
* one entry per payload array (sketch counters, …).

Loading verifies the manifest CRC, the schema, and every array's shape,
dtype, and CRC against the manifest before returning; any mismatch raises
:class:`~repro.errors.CheckpointError` — a corrupted checkpoint is
*detected*, never silently loaded.  :meth:`CheckpointManager.latest`
walks snapshots newest-first, records corrupt ones in
:attr:`CheckpointManager.corrupt_detected`, and falls back to the newest
intact snapshot, so one bad file degrades recovery by a few chunks
instead of killing it.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from ..errors import CheckpointError, ConfigurationError

__all__ = ["Checkpoint", "CheckpointManager", "CHECKPOINT_VERSION"]

#: Version of the on-disk checkpoint format.
CHECKPOINT_VERSION = 1

_SUFFIX = ".ckpt"
_PREFIX = "checkpoint-"


@dataclass(frozen=True)
class Checkpoint:
    """One verified snapshot, as returned by the manager's load paths."""

    sequence: int
    position: int
    state: dict
    arrays: dict = field(default_factory=dict)
    path: Optional[Path] = None


class CheckpointManager:
    """Writes, prunes, and recovers checkpoints in one directory.

    Parameters
    ----------
    directory:
        Where snapshots live (created if missing).  One manager — one
        pipeline; sequence numbers continue across process restarts.
    keep:
        Newest snapshots to retain.  Keeping at least 2 means a snapshot
        corrupted *after* being written (bit rot, torn disk) still leaves
        a valid fallback.
    """

    __slots__ = ("directory", "keep", "corrupt_detected", "_next_sequence")

    def __init__(self, directory, *, keep: int = 2) -> None:
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)
        #: Paths whose validation failed during :meth:`latest` scans.
        self.corrupt_detected: list = []
        existing = self.paths()
        self._next_sequence = (
            _sequence_of(existing[-1]) + 1 if existing else 0
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def save(self, *, position: int, state: dict, arrays: dict) -> Path:
        """Atomically persist one snapshot; returns its path.

        *position* is the stream cursor (next chunk sequence number to
        process); *state* must be JSON-serializable; *arrays* maps payload
        names to numpy arrays (each CRC-protected individually).
        """
        if position < 0:
            raise ConfigurationError(f"position must be >= 0, got {position}")
        sequence = self._next_sequence
        payload = {}
        entries = {}
        for name, array in arrays.items():
            if name in ("manifest", "manifest_crc"):
                raise ConfigurationError(f"array name {name!r} is reserved")
            contiguous = np.ascontiguousarray(array)
            payload[name] = {
                "shape": list(contiguous.shape),
                "dtype": contiguous.dtype.str,
                "crc32": zlib.crc32(contiguous.tobytes()),
            }
            entries[name] = contiguous
        manifest = {
            "version": CHECKPOINT_VERSION,
            "sequence": sequence,
            "position": int(position),
            "state": state,
            "payload": payload,
        }
        manifest_bytes = json.dumps(manifest).encode("utf-8")
        entries["manifest"] = np.frombuffer(manifest_bytes, dtype=np.uint8)
        entries["manifest_crc"] = np.array(
            [zlib.crc32(manifest_bytes)], dtype=np.int64
        )
        path = self.directory / f"{_PREFIX}{sequence:08d}{_SUFFIX}"
        tmp = self.directory / f".{_PREFIX}{sequence:08d}.tmp"
        with tmp.open("wb") as handle:
            np.savez(handle, **entries)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_directory(self.directory)
        self._next_sequence = sequence + 1
        self._prune()
        return path

    def _prune(self) -> None:
        for stale in self.paths()[: -self.keep]:
            stale.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def paths(self) -> list:
        """Snapshot paths in this directory, oldest first."""
        return sorted(
            p
            for p in self.directory.glob(f"{_PREFIX}*{_SUFFIX}")
            if _sequence_of(p) is not None
        )

    def load(self, path) -> Checkpoint:
        """Load and fully verify one snapshot.

        Raises :class:`~repro.errors.CheckpointError` on *any* problem —
        unreadable archive, manifest CRC mismatch, schema violation, or a
        payload array whose shape/dtype/CRC disagrees with the manifest.
        """
        path = Path(path)
        try:
            with np.load(path) as data:
                names = set(data.files)
                if "manifest" not in names or "manifest_crc" not in names:
                    raise CheckpointError(
                        f"{path} is not a checkpoint (missing manifest entries)"
                    )
                manifest_bytes = bytes(data["manifest"])
                stored_crc = int(data["manifest_crc"][0])
                raw_arrays = {
                    name: data[name]
                    for name in names - {"manifest", "manifest_crc"}
                }
        except (
            OSError,
            zipfile.BadZipFile,
            ValueError,
            EOFError,
            KeyError,
            # a flipped "version needed" field in the zip directory makes
            # zipfile raise NotImplementedError instead of BadZipFile
            NotImplementedError,
        ) as exc:
            if isinstance(exc, CheckpointError):
                raise
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        if zlib.crc32(manifest_bytes) != stored_crc:
            raise CheckpointError(f"checkpoint {path} manifest CRC mismatch")
        try:
            manifest = json.loads(manifest_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {path} manifest is undecodable: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise CheckpointError(f"checkpoint {path} manifest is not an object")
        if manifest.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {manifest.get('version')!r} in {path}"
            )
        for scalar in ("sequence", "position"):
            value = manifest.get(scalar)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise CheckpointError(
                    f"checkpoint {path} manifest field {scalar!r} is invalid: {value!r}"
                )
        state = manifest.get("state")
        if not isinstance(state, dict):
            raise CheckpointError(f"checkpoint {path} manifest has no state object")
        payload = manifest.get("payload")
        if not isinstance(payload, dict):
            raise CheckpointError(f"checkpoint {path} manifest has no payload index")
        if set(payload) != set(raw_arrays):
            raise CheckpointError(
                f"checkpoint {path} payload entries {sorted(raw_arrays)} do not "
                f"match the manifest index {sorted(payload)}"
            )
        arrays = {}
        for name, meta in payload.items():
            array = raw_arrays[name]
            if list(array.shape) != list(meta.get("shape", [])):
                raise CheckpointError(
                    f"checkpoint {path} array {name!r} shape {array.shape} does "
                    f"not match the manifest's {meta.get('shape')}"
                )
            if array.dtype.str != meta.get("dtype"):
                raise CheckpointError(
                    f"checkpoint {path} array {name!r} dtype {array.dtype.str} "
                    f"does not match the manifest's {meta.get('dtype')}"
                )
            if zlib.crc32(np.ascontiguousarray(array).tobytes()) != meta.get("crc32"):
                raise CheckpointError(
                    f"checkpoint {path} array {name!r} failed its CRC check"
                )
            arrays[name] = array
        return Checkpoint(
            sequence=manifest["sequence"],
            position=manifest["position"],
            state=state,
            arrays=arrays,
            path=path,
        )

    def latest(self, *, strict: bool = False) -> Optional[Checkpoint]:
        """The newest snapshot that passes full verification.

        Corrupt snapshots encountered on the way are recorded in
        :attr:`corrupt_detected` (and skipped), so recovery falls back to
        the newest intact one.  With ``strict=True`` the first corrupt
        snapshot raises instead of being skipped.  Returns ``None`` when
        no valid snapshot exists.
        """
        for path in reversed(self.paths()):
            try:
                return self.load(path)
            except CheckpointError:
                if strict:
                    raise
                if path not in self.corrupt_detected:
                    self.corrupt_detected.append(path)
        return None

    def __repr__(self) -> str:
        return (
            f"CheckpointManager({str(self.directory)!r}, keep={self.keep}, "
            f"snapshots={len(self.paths())})"
        )


def _sequence_of(path: Path) -> Optional[int]:
    stem = path.name
    if not (stem.startswith(_PREFIX) and stem.endswith(_SUFFIX)):
        return None
    digits = stem[len(_PREFIX) : -len(_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss (POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds (e.g. Windows)
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
