"""Input hardening at the stream boundary: bad records and flaky readers.

Production streams contain garbage — NaNs from upstream parsers, keys
outside the configured domain, whole chunks of the wrong dtype — and the
paper's sketches rightly refuse such input
(:class:`~repro.errors.DomainError`).  A long-running pipeline, though,
needs a *policy*, not a crash:

* ``"fail"`` — raise :class:`~repro.errors.BadRecordError` on the first
  bad record (the strict default; identical to today's behaviour but with
  a typed, actionable error);
* ``"skip_and_count"`` — drop bad records, keep per-reason tallies;
* ``"quarantine"`` — additionally divert each bad record to a side file
  (one ``reason<TAB>value`` line per record) for offline inspection.

:func:`retrying_read_stream` hardens the other direction — transient I/O
failures while re-streaming a spilled relation — with bounded retries,
exponential backoff, and resumption from the last successfully delivered
tuple (via :func:`repro.streams.io.read_stream`'s ``start`` cursor).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

import numpy as np

from ..errors import BadRecordError, ConfigurationError, RetryExhaustedError
from ..streams.io import read_stream
from .distributed import BackoffPolicy

__all__ = ["InputHardener", "retrying_read_stream"]

_POLICIES = ("fail", "skip_and_count", "quarantine")

#: Reasons a record can be rejected, in the order they are checked.
_REASONS = ("wrong_dtype", "non_finite", "non_integer", "out_of_domain")


class InputHardener:
    """Configurable bad-record filter in front of a sketching pipeline.

    Validates each chunk against the sketch domain ``[0, domain_size)``
    and the integer-key contract, applying the configured policy to every
    violation.  Clean chunks pass through as ``int64`` arrays ready for
    :meth:`repro.sketches.base.Sketch.update`.
    """

    __slots__ = ("domain_size", "policy", "quarantine_path", "bad_by_reason")

    def __init__(
        self,
        domain_size: int,
        policy: str = "fail",
        *,
        quarantine_path: Union[str, Path, None] = None,
    ) -> None:
        if domain_size < 1:
            raise ConfigurationError(f"domain_size must be >= 1, got {domain_size}")
        if policy not in _POLICIES:
            raise ConfigurationError(
                f"unknown bad-record policy {policy!r}; expected one of {_POLICIES}"
            )
        if policy == "quarantine" and quarantine_path is None:
            raise ConfigurationError(
                "the quarantine policy needs a quarantine_path side file"
            )
        self.domain_size = int(domain_size)
        self.policy = policy
        self.quarantine_path = None if quarantine_path is None else Path(quarantine_path)
        self.bad_by_reason: dict = {reason: 0 for reason in _REASONS}

    # ------------------------------------------------------------------

    @property
    def bad_records(self) -> int:
        """Total records rejected so far, across all reasons."""
        return sum(self.bad_by_reason.values())

    def sanitize(self, chunk) -> np.ndarray:
        """Validate one chunk, returning the surviving keys as ``int64``.

        Order is preserved.  Under the ``"fail"`` policy the first bad
        record raises :class:`~repro.errors.BadRecordError`; otherwise bad
        records are counted (and, for ``"quarantine"``, appended to the
        side file) and the clean remainder is returned.
        """
        values = np.asarray(chunk)
        if values.ndim != 1:
            raise ConfigurationError(f"chunks must be 1-D, got shape {values.shape}")
        if values.size == 0:
            return np.empty(0, dtype=np.int64)
        if values.dtype.kind in ("i", "u"):
            keys = values.astype(np.int64, copy=False)
            bad = self._domain_mask(keys)
            reasons = np.where(bad, _REASONS.index("out_of_domain"), -1)
            return self._apply(keys, values, bad, reasons)
        if values.dtype.kind == "f":
            return self._sanitize_floats(values)
        # Anything else (strings, objects, bools): try a float view and
        # re-validate; records that cannot even be parsed are wrong_dtype.
        return self._sanitize_other(values)

    # ------------------------------------------------------------------

    def _domain_mask(self, keys: np.ndarray) -> np.ndarray:
        return (keys < 0) | (keys >= self.domain_size)

    def _sanitize_floats(self, values: np.ndarray) -> np.ndarray:
        floats = values.astype(np.float64, copy=False)
        bad = np.zeros(floats.shape, dtype=bool)
        reasons = np.full(floats.shape, -1, dtype=np.int64)
        return self._sanitize_floats_with_presets(floats, values, bad, reasons)

    def _sanitize_other(self, values: np.ndarray) -> np.ndarray:
        floats = np.empty(values.shape, dtype=np.float64)
        bad = np.zeros(values.shape, dtype=bool)
        reasons = np.full(values.shape, -1, dtype=np.int64)
        for index, raw in enumerate(values.tolist()):
            try:
                floats[index] = float(raw)
            except (TypeError, ValueError):
                floats[index] = np.nan
                bad[index] = True
                reasons[index] = _REASONS.index("wrong_dtype")
        return self._sanitize_floats_with_presets(floats, values, bad, reasons)

    def _sanitize_floats_with_presets(
        self,
        floats: np.ndarray,
        raw: np.ndarray,
        bad: np.ndarray,
        reasons: np.ndarray,
    ) -> np.ndarray:
        undecided = ~bad
        non_finite = undecided & ~np.isfinite(floats)
        bad |= non_finite
        reasons[non_finite] = _REASONS.index("non_finite")
        with np.errstate(invalid="ignore"):
            fractional = np.zeros_like(floats)
            np.mod(floats, 1.0, out=fractional, where=np.isfinite(floats))
        non_integer = ~bad & (fractional > 0.0)
        bad |= non_integer
        reasons[non_integer] = _REASONS.index("non_integer")
        out_of_domain = ~bad & ((floats < 0.0) | (floats >= float(self.domain_size)))
        bad |= out_of_domain
        reasons[out_of_domain] = _REASONS.index("out_of_domain")
        keys = np.zeros(floats.shape, dtype=np.int64)
        good = ~bad
        keys[good] = floats[good].astype(np.int64)
        return self._apply(keys, raw, bad, reasons)

    def _apply(
        self,
        keys: np.ndarray,
        raw: np.ndarray,
        bad: np.ndarray,
        reasons: np.ndarray,
    ) -> np.ndarray:
        if not bool(bad.any()):
            return keys
        bad_indices = np.flatnonzero(bad)
        if self.policy == "fail":
            index = int(bad_indices[0])
            reason = _REASONS[int(reasons[index])]
            raise BadRecordError(
                f"bad stream record at chunk offset {index}: "
                f"{raw[index]!r} ({reason})"
            )
        for index in bad_indices:
            self.bad_by_reason[_REASONS[int(reasons[index])]] += 1
        if self.policy == "quarantine":
            with self.quarantine_path.open("a", encoding="utf-8") as handle:
                for index in bad_indices:
                    reason = _REASONS[int(reasons[index])]
                    handle.write(f"{reason}\t{raw[index]!r}\n")
        return keys[~bad]

    def __repr__(self) -> str:
        return (
            f"InputHardener(domain_size={self.domain_size}, "
            f"policy={self.policy!r}, bad_records={self.bad_records})"
        )


def retrying_read_stream(
    path,
    chunk_size: int = 65_536,
    *,
    retries: int = 3,
    backoff: Union[float, BackoffPolicy] = 0.05,
    sleep: Callable[[float], None] = time.sleep,
    start: int = 0,
) -> Iterator[np.ndarray]:
    """Iterate a stream file like :func:`repro.streams.io.read_stream`,
    retrying transient I/O failures with exponential backoff.

    After an ``OSError`` the file is reopened and iteration resumes from
    the tuple after the last successfully delivered chunk (no chunk is
    ever delivered twice, none is skipped).  *retries* consecutive
    failures without progress raise
    :class:`~repro.errors.RetryExhaustedError` with the final ``OSError``
    as its cause.  *sleep* is injectable so tests run without waiting.

    Delays come from a :class:`~repro.resilience.distributed.BackoffPolicy`
    — pass one to share the engine-wide policy (cap, budget, seeded
    jitter; budget exhaustion raises like a final failure), or keep the
    legacy float form, which maps to the uncapped jitter-free policy
    ``BackoffPolicy(base=backoff, factor=2, cap=inf)`` and therefore
    sleeps the exact ``backoff * 2**(failures-1)`` schedule this reader
    has always used.  Progress (any delivered chunk) resets both the
    failure count and the backoff schedule.
    """
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if isinstance(backoff, BackoffPolicy):
        policy = backoff
    else:
        if backoff < 0:
            raise ConfigurationError(f"backoff must be >= 0, got {backoff}")
        policy = BackoffPolicy(
            base=float(backoff), factor=2.0, cap=float("inf"), jitter=0.0
        )
    offset = int(start)
    failures = 0
    schedule = policy.schedule()
    while True:
        try:
            for chunk in read_stream(path, chunk_size, start=offset):
                yield chunk
                offset += int(chunk.size)
                if failures:
                    failures = 0
                    schedule = policy.schedule()
            return
        except OSError as exc:
            failures += 1
            if failures > retries:
                raise RetryExhaustedError(
                    f"reading {path} failed {failures} consecutive times "
                    f"at tuple offset {offset}"
                ) from exc
            delay = schedule.next_delay()
            if delay is None:
                raise RetryExhaustedError(
                    f"reading {path} exhausted its backoff budget "
                    f"({policy.budget:.6g}s) after {failures} failure(s) "
                    f"at tuple offset {offset}"
                ) from exc
            sleep(delay)
