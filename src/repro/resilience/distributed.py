"""Degradation-aware fault tolerance for the sharded engine.

This module is the coordinator-side control plane for distributed scans:

* :class:`BackoffPolicy` / :class:`BackoffSchedule` — one shared, seeded
  retry-delay policy (exponential growth, cap, optional cumulative wait
  budget, deterministic jitter drawn through :mod:`repro.rng`) that
  replaces ad-hoc ``sleep(base * 2 ** k)`` loops.  Same seed, same
  schedule — retry timing is as reproducible as everything else here.
* :class:`ShardSupervisor` — deadlines, heartbeat-driven hang detection,
  hedged re-dispatch of stragglers (first result wins, the loser is
  cancelled; shard work is deterministic so hedging can never change a
  result), bounded retries with backoff, and graceful degradation: with
  ``degradation="degrade"`` a shard that exhausts its retries is recorded
  as a :class:`ShardFailure` instead of sinking the whole run.
* :func:`widened_self_join_variance` / :func:`widened_join_variance` —
  conservative runtime bounds on the extra estimator variance a degraded
  (partial-shard) run pays, mirroring the exact closed forms in
  :func:`repro.variance.sampling.degraded_bernoulli_self_join_variance`
  but computable from plug-in estimates alone.

The paper's own machinery justifies degradation: under hash partitioning
every key lands on exactly one shard, so losing shards is equivalent to
Bernoulli-sampling the *key space* with survival probability
``q = surviving_shards / shards``.  A degraded run therefore returns the
survivor estimate scaled by ``1/q`` (unbiased, Prop 9-style) and widens
its confidence interval by the corresponding variance terms — exactly
the "estimate from a sampled sub-stream, pay with quantified variance"
trade the source paper makes for load shedding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from concurrent.futures import CancelledError

from ..errors import (
    ConfigurationError,
    DeadlineExceededError,
    RetryExhaustedError,
)
from ..observability import as_observer
from ..rng import SeedLike, as_generator, spawn

__all__ = [
    "BackoffPolicy",
    "BackoffSchedule",
    "ShardFailure",
    "SupervisionOutcome",
    "ShardSupervisor",
    "widened_self_join_variance",
    "widened_join_variance",
]


# ----------------------------------------------------------------------
# Backoff
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BackoffPolicy:
    """Seeded exponential backoff with cap, budget, and deterministic jitter.

    ``delay(k) = min(cap, base * factor**k) * (1 - jitter * u_k)`` where
    ``u_k`` is the k-th uniform draw of a generator seeded from *seed* —
    the same seed always produces the same schedule, so retry timing is
    reproducible and testable.  *budget* bounds the cumulative wait of
    one :class:`BackoffSchedule`; once the next delay would exceed it the
    schedule reports exhaustion (``next_delay() is None``) instead of
    sleeping, turning pathological retry storms into a bounded cost.

    The policy object is immutable and shared; per-shard state lives in
    the :class:`BackoffSchedule` instances it hands out.
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 5.0
    jitter: float = 0.0
    budget: Optional[float] = None
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ConfigurationError(f"base delay must be >= 0, got {self.base}")
        if self.factor < 1.0:
            raise ConfigurationError(f"factor must be >= 1, got {self.factor}")
        if self.cap < 0:
            raise ConfigurationError(f"cap must be >= 0, got {self.cap}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.budget is not None and self.budget < 0:
            raise ConfigurationError(
                f"budget must be >= 0, got {self.budget}"
            )

    def schedule(self, seed: SeedLike = None) -> "BackoffSchedule":
        """Start a fresh schedule (pass a spawned seed for substreams)."""
        return BackoffSchedule(self, self.seed if seed is None else seed)


class BackoffSchedule:
    """Stateful delay stream produced by :meth:`BackoffPolicy.schedule`."""

    __slots__ = ("_policy", "_rng", "_attempts", "_total")

    def __init__(self, policy: BackoffPolicy, seed: SeedLike) -> None:
        self._policy = policy
        self._rng = as_generator(seed)
        self._attempts = 0
        self._total = 0.0

    @property
    def attempts(self) -> int:
        """Delays handed out so far."""
        return self._attempts

    @property
    def total_waited(self) -> float:
        """Cumulative seconds of delay handed out so far."""
        return self._total

    def next_delay(self) -> Optional[float]:
        """The next delay in seconds, or ``None`` once *budget* is spent."""
        policy = self._policy
        raw = min(policy.cap, policy.base * policy.factor**self._attempts)
        if policy.jitter:
            raw *= 1.0 - policy.jitter * float(self._rng.random())
        if policy.budget is not None and self._total + raw > policy.budget:
            return None
        self._attempts += 1
        self._total += raw
        return raw

    def __iter__(self):
        while True:
            delay = self.next_delay()
            if delay is None:
                return
            yield delay

    def __repr__(self) -> str:
        return (
            f"BackoffSchedule(attempts={self._attempts}, "
            f"total_waited={self._total:.6g})"
        )


# ----------------------------------------------------------------------
# Supervision
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardFailure:
    """Plain-data record of one shard the supervisor gave up on.

    *kind* is ``"error"`` (every attempt raised), ``"deadline"`` (the
    final attempt hung past its no-progress deadline), or ``"budget"``
    (the backoff budget ran out before the retry allowance did).
    """

    shard: int
    attempts: int
    kind: str
    error: str


@dataclass
class SupervisionOutcome:
    """What :meth:`ShardSupervisor.run` hands back to the coordinator."""

    winners: Dict[int, Any] = field(default_factory=dict)
    lost: Dict[int, ShardFailure] = field(default_factory=dict)
    retries: int = 0
    hedges: int = 0
    backoff_wait: float = 0.0
    deadline_failures: int = 0


class _Dispatch:
    """One in-flight dispatch (primary or hedge) the supervisor tracks."""

    __slots__ = (
        "shard",
        "handle",
        "hedge",
        "started",
        "progress_at",
        "progress_value",
    )

    def __init__(self, shard: int, handle, hedge: bool, now: float) -> None:
        self.shard = shard
        self.handle = handle
        self.hedge = hedge
        self.started = now
        self.progress_at = now
        self.progress_value: Optional[int] = None


class ShardSupervisor:
    """Coordinator-side shard lifecycle: deadlines, hedges, retries, loss.

    The supervisor is transport-agnostic: it drives an injected
    ``dispatch(shard, attempt, resume, exclusive)`` callable that returns
    a handle exposing ``handle.future`` (``done()`` / ``result()`` /
    ``cancel()``) and optionally ``handle.progress`` — a zero-argument
    callable reading that dispatch's heartbeat counter.  *attempt* is a
    per-shard dispatch ordinal (0 for the first launch, unique across
    retries *and* hedges), which is what the chaos harness keys its fault
    plans on.  ``exclusive=True`` warns the dispatcher that an earlier
    attempt of this shard may still be running and writing — the new
    attempt must get a private output slot.

    Failure accounting matches the coordinator's historical retry loop:
    a shard may fail ``max_retries`` times and be relaunched; the next
    failure exhausts it.  What *exhausted* means is the degradation knob:
    ``"fail"`` raises :class:`~repro.errors.RetryExhaustedError`
    immediately, ``"degrade"`` records a :class:`ShardFailure` and keeps
    going (unless *every* shard is lost, which always raises).

    Hang detection uses heartbeats when the dispatch provides them: a
    dispatch whose progress counter does not move for *deadline* seconds
    is abandoned (kind ``"deadline"``).  Without a heartbeat channel the
    deadline falls back to wall-clock time since dispatch.  Straggler
    hedging launches one duplicate dispatch after *hedge_after* seconds
    of no result; whichever finishes first wins and the sibling is
    cancelled.  Shard work is deterministic, so the winner's bytes are
    identical either way.
    """

    def __init__(
        self,
        shards: int,
        *,
        max_retries: int = 2,
        deadline: Optional[float] = None,
        hedge_after: Optional[float] = None,
        max_hedges: int = 1,
        degradation: str = "fail",
        backoff: Optional[BackoffPolicy] = None,
        resume_retries: bool = False,
        poll_interval: float = 0.005,
        observer=None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if deadline is not None and deadline <= 0:
            raise ConfigurationError(f"deadline must be > 0, got {deadline}")
        if hedge_after is not None and hedge_after <= 0:
            raise ConfigurationError(
                f"hedge_after must be > 0, got {hedge_after}"
            )
        if max_hedges < 0:
            raise ConfigurationError(
                f"max_hedges must be >= 0, got {max_hedges}"
            )
        if degradation not in ("fail", "degrade"):
            raise ConfigurationError(
                f'degradation must be "fail" or "degrade", got {degradation!r}'
            )
        if poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be > 0, got {poll_interval}"
            )
        self._shards = int(shards)
        self._max_retries = int(max_retries)
        self._deadline = deadline
        self._hedge_after = hedge_after
        self._max_hedges = int(max_hedges)
        self._degradation = degradation
        self._backoff = backoff
        self._resume_retries = bool(resume_retries)
        self._poll_interval = float(poll_interval)
        self._observer = observer
        self._clock = clock
        self._sleep = sleep

    @property
    def supervised(self) -> bool:
        """Whether deadline/hedge features require active polling."""
        return self._deadline is not None or self._hedge_after is not None

    # ------------------------------------------------------------------

    def run(self, dispatch) -> SupervisionOutcome:
        """Drive every shard to a winner or a recorded loss."""
        obs = as_observer(self._observer)
        with obs.span(
            "parallel.supervise",
            shards=self._shards,
            degradation=self._degradation,
        ):
            return self._run(dispatch, obs)

    def _run(self, dispatch, obs) -> SupervisionOutcome:
        outcome = SupervisionOutcome()
        active: List[_Dispatch] = []
        sequence = [0] * self._shards  # next attempt ordinal per shard
        failure_count = [0] * self._shards
        hedge_count = [0] * self._shards
        tainted = [False] * self._shards  # abandoned attempt may still write
        last_error: Dict[int, BaseException] = {}
        retry_at: Dict[int, float] = {}  # shard -> due time
        schedules: Dict[int, BackoffSchedule] = {}
        backoff_seeds = (
            spawn(self._backoff.seed, self._shards)
            if self._backoff is not None
            else None
        )

        def launch(shard: int, *, resume: bool, exclusive: bool, hedge: bool) -> None:
            attempt = sequence[shard]
            sequence[shard] += 1
            handle = dispatch(shard, attempt, resume, exclusive)
            active.append(_Dispatch(shard, handle, hedge, self._clock()))

        def siblings(shard: int, other: _Dispatch) -> List[_Dispatch]:
            return [r for r in active if r.shard == shard and r is not other]

        def settle(shard: int, exc: BaseException, kind: str) -> None:
            """A shard's last live dispatch failed; retry, degrade, or raise."""
            last_error[shard] = exc
            failure_count[shard] += 1
            count = failure_count[shard]
            if kind == "deadline":
                outcome.deadline_failures += 1
                obs.counter("parallel.shard.deadline_expired").inc()
            exhausted = count > self._max_retries
            delay = 0.0
            if not exhausted and self._backoff is not None:
                schedule = schedules.get(shard)
                if schedule is None:
                    schedule = schedules[shard] = self._backoff.schedule(
                        backoff_seeds[shard]
                    )
                step = schedule.next_delay()
                if step is None:
                    exhausted, kind = True, "budget"
                else:
                    delay = step
                    outcome.backoff_wait += delay
                    obs.counter("parallel.backoff.wait_seconds").inc(delay)
            if exhausted:
                if self._degradation == "degrade":
                    outcome.lost[shard] = ShardFailure(
                        shard=shard,
                        attempts=count,
                        kind=kind,
                        error=repr(exc),
                    )
                    obs.counter("parallel.shard.degraded").inc()
                    return
                if kind == "budget":
                    raise RetryExhaustedError(
                        f"shard {shard} exhausted its backoff budget after "
                        f"{count} failure(s); giving up"
                    ) from exc
                raise RetryExhaustedError(
                    f"shard {shard} failed {count} time(s); giving up"
                ) from exc
            outcome.retries += 1
            obs.counter("parallel.shard.retries").inc()
            retry_at[shard] = self._clock() + delay

        for shard in range(self._shards):
            launch(shard, resume=False, exclusive=False, hedge=False)

        while len(outcome.winners) + len(outcome.lost) < self._shards:
            progressed = False

            # 1. Reap finished dispatches (first result per shard wins).
            for record in list(active):
                future = record.handle.future
                if not future.done():
                    continue
                active.remove(record)
                progressed = True
                shard = record.shard
                if shard in outcome.winners or shard in outcome.lost:
                    continue  # late sibling of a settled shard
                try:
                    future.result()
                except CancelledError:
                    continue
                except Exception as exc:
                    rivals = siblings(shard, record)
                    if rivals:
                        for rival in rivals:
                            rival.hedge = False  # promote the survivor
                        continue
                    settle(shard, exc, "error")
                else:
                    outcome.winners[shard] = record.handle
                    retry_at.pop(shard, None)
                    for rival in siblings(shard, record):
                        rival.handle.future.cancel()
                        active.remove(rival)

            # 2. Deadlines (no-progress) and straggler hedges.
            if self.supervised:
                now = self._clock()
                for record in list(active):
                    shard = record.shard
                    if shard in outcome.winners or shard in outcome.lost:
                        continue
                    progress = getattr(record.handle, "progress", None)
                    if progress is not None:
                        value = progress()
                        if value != record.progress_value:
                            record.progress_value = value
                            record.progress_at = now
                    if (
                        self._deadline is not None
                        and now - record.progress_at > self._deadline
                    ):
                        active.remove(record)
                        record.handle.future.cancel()
                        tainted[shard] = True
                        progressed = True
                        rivals = siblings(shard, record)
                        if rivals:
                            for rival in rivals:
                                rival.hedge = False
                            continue
                        settle(
                            shard,
                            DeadlineExceededError(
                                f"shard {shard} made no progress for more "
                                f"than {self._deadline:.6g}s"
                            ),
                            "deadline",
                        )
                        continue
                    if (
                        self._hedge_after is not None
                        and not record.hedge
                        and hedge_count[shard] < self._max_hedges
                        and not siblings(shard, record)
                        and now - record.started > self._hedge_after
                    ):
                        hedge_count[shard] += 1
                        outcome.hedges += 1
                        obs.counter("parallel.shard.hedges").inc()
                        launch(shard, resume=False, exclusive=True, hedge=True)
                        progressed = True

            # 3. Launch retries that have served their backoff delay.
            now = self._clock()
            for shard in [s for s, due in retry_at.items() if now >= due]:
                del retry_at[shard]
                launch(
                    shard,
                    resume=self._resume_retries,
                    exclusive=tainted[shard],
                    hedge=False,
                )
                progressed = True

            if progressed or len(outcome.winners) + len(outcome.lost) >= self._shards:
                continue
            self._wait(active, retry_at)

        if len(outcome.lost) >= self._shards:
            final = last_error[max(last_error)] if last_error else None
            raise RetryExhaustedError(
                f"all {self._shards} shard(s) failed; nothing to degrade to"
            ) from final
        return outcome

    def _wait(self, active: List[_Dispatch], retry_at: Dict[int, float]) -> None:
        """Block until something is likely to have changed."""
        timeout: Optional[float] = None
        if retry_at:
            now = self._clock()
            timeout = max(0.0, min(retry_at.values()) - now)
        if self.supervised:
            timeout = (
                self._poll_interval
                if timeout is None
                else min(timeout, self._poll_interval)
            )
        if active:
            try:
                active[0].handle.future.result(timeout=timeout)
            except CancelledError:
                pass
            except Exception:
                pass  # reaped (with attribution) on the next pass
        elif timeout:
            self._sleep(timeout)


# ----------------------------------------------------------------------
# Widened variance bounds for degraded estimates
# ----------------------------------------------------------------------


def _check_fraction(name: str, value: float, *, closed_low: bool) -> float:
    value = float(value)
    low_ok = value >= 0.0 if closed_low else value > 0.0
    if not (low_ok and value <= 1.0):
        bound = "[0, 1]" if closed_low else "(0, 1]"
        raise ConfigurationError(f"{name} must be in {bound}, got {value}")
    return value


def widened_self_join_variance(
    estimate: float,
    *,
    survived_fraction: float,
    probability: float = 1.0,
    population: float = 0.0,
) -> float:
    """Conservative variance bound for a degraded self-join estimate.

    The exact variance of the ``1/q``-scaled survivor estimator is
    ``(1-q)/q * F4 + V_p(f) / q`` (see
    :func:`repro.variance.sampling.degraded_bernoulli_self_join_variance`),
    but ``F4``/``F3`` are unobservable at runtime.  This bound substitutes
    the plug-in estimates the run *does* have — ``F2_hat`` (the degraded
    self-join estimate itself) and ``F1_hat`` (the scaled population) —
    using ``F4 <= F2**2``, ``F3 <= F2**1.5`` (power-mean/norm
    monotonicity for non-negative frequencies) and dropping the
    negative-signed Eq. 7 terms.  Every substitution only enlarges the
    bound, so Chebyshev intervals built from it over-cover; the Monte
    Carlo suite (``tests/test_variance_degraded.py``) checks both the
    exact form and the conservativeness of this plug-in.
    """
    q = _check_fraction("survived_fraction", survived_fraction, closed_low=False)
    p = _check_fraction("probability", probability, closed_low=False)
    f2 = max(float(estimate), 0.0)
    f1 = max(float(population), 0.0)
    key_loss = (1.0 - q) / q * f2 * f2
    if p >= 1.0:
        return key_loss
    f3 = f2**1.5
    shedding = (1.0 - p) / p**3 * (
        4.0 * p * p * f3
        + 2.0 * p * abs(1.0 - 3.0 * p) * f2
        + p * abs(2.0 - 3.0 * p) * f1
    )
    return key_loss + shedding / q


def widened_join_variance(
    estimate: float,
    *,
    survived_fraction: float,
    probability_f: float = 1.0,
    probability_g: float = 1.0,
    population_f: float = 0.0,
    population_g: float = 0.0,
) -> float:
    """Conservative variance bound for a degraded join-size estimate.

    Mirrors :func:`widened_self_join_variance` for the binary-join
    estimator: the key-loss term uses ``sum((f_i g_i)**2) <= J**2`` and
    the Eq. 6 shedding terms use ``sum(f g**2) <= J * G1`` and
    ``sum(f**2 g) <= J * F1`` (``max g <= G1`` for non-negative integer
    frequencies).  All substitutions enlarge the bound.
    """
    q = _check_fraction("survived_fraction", survived_fraction, closed_low=False)
    p_f = _check_fraction("probability_f", probability_f, closed_low=False)
    p_g = _check_fraction("probability_g", probability_g, closed_low=False)
    j = max(float(estimate), 0.0)
    f1 = max(float(population_f), 0.0)
    g1 = max(float(population_g), 0.0)
    key_loss = (1.0 - q) / q * j * j
    a = (1.0 - p_f) / p_f
    b = (1.0 - p_g) / p_g
    shedding = a * j * g1 + b * j * f1 + a * b * j
    return key_loss + shedding / q
