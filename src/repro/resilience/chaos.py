"""Deterministic fault injection for the resilience test harness.

:class:`ChaosInjector` sits between an envelope stream and a
:class:`~repro.resilience.runtime.StreamRuntime` and injects the fault
classes the runtime claims to survive:

* **crash** — raise :class:`SimulatedCrash` between two chunks (the
  process "dies"; the harness recovers from the newest checkpoint);
* **truncate** — deliver an envelope whose payload lost its tail while
  the declared count/CRC still describe the full chunk (a torn read; the
  runtime must raise :class:`~repro.errors.StreamIntegrityError`);
* **duplicate** — deliver the same envelope twice (at-least-once
  delivery; the runtime must apply it exactly once);
* **corrupt** — flip bytes in the newest checkpoint file right before a
  crash (disk corruption; recovery must detect it and fall back).

All decisions come from one seeded generator and each fault fires at most
once per chunk sequence, so a replayed stream after recovery re-delivers
the previously faulted chunk *intact* — faults are transient, runs
terminate, and the whole schedule is reproducible from the seed.
:func:`run_until_complete` is the crash-recovery driver used by the tests
and the CI chaos matrix.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Iterator, Optional

from ..errors import CheckpointError, ConfigurationError, StreamIntegrityError
from ..rng import SeedLike, as_generator
from .checkpoint import CheckpointManager
from .runtime import ChunkEnvelope, StreamRuntime

__all__ = ["SimulatedCrash", "ChaosInjector", "run_until_complete"]


class SimulatedCrash(RuntimeError):
    """Injected process death.

    Deliberately *not* a :class:`~repro.errors.ReproError`: production
    code must never catch it by accident while handling typed pipeline
    errors.
    """


class ChaosInjector:
    """Seeded, transient fault injector for envelope streams.

    Parameters
    ----------
    seed:
        Seeds the fault schedule; the same seed produces the same faults
        at the same chunk sequences, every run.
    crash_rate, truncate_rate, duplicate_rate:
        Per-chunk probability of each fault class (a chunk draws each
        independently, at most one fault per chunk wins, in the order
        crash → truncate → duplicate).
    corrupt_rate:
        Probability that a crash is preceded by byte-flipping the newest
        checkpoint file (needs *checkpoint_dir*).
    checkpoint_dir:
        Where :meth:`corrupt_latest_checkpoint` finds snapshots.
    max_faults:
        Hard cap on total injected faults (safety net guaranteeing
        progress even with rates close to 1).
    """

    __slots__ = (
        "crash_rate",
        "truncate_rate",
        "duplicate_rate",
        "corrupt_rate",
        "checkpoint_dir",
        "max_faults",
        "faults",
        "_rng",
        "_decided",
    )

    def __init__(
        self,
        seed: SeedLike,
        *,
        crash_rate: float = 0.0,
        truncate_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        checkpoint_dir=None,
        max_faults: Optional[int] = None,
    ) -> None:
        for name, rate in (
            ("crash_rate", crash_rate),
            ("truncate_rate", truncate_rate),
            ("duplicate_rate", duplicate_rate),
            ("corrupt_rate", corrupt_rate),
        ):
            if not 0 <= rate <= 1:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if corrupt_rate > 0 and checkpoint_dir is None:
            raise ConfigurationError(
                "corrupt_rate needs a checkpoint_dir to corrupt"
            )
        if max_faults is not None and max_faults < 0:
            raise ConfigurationError(f"max_faults must be >= 0, got {max_faults}")
        self.crash_rate = float(crash_rate)
        self.truncate_rate = float(truncate_rate)
        self.duplicate_rate = float(duplicate_rate)
        self.corrupt_rate = float(corrupt_rate)
        self.checkpoint_dir = checkpoint_dir
        self.max_faults = max_faults
        #: Tally of injected faults by kind.
        self.faults: dict = {
            "crash": 0,
            "truncate": 0,
            "duplicate": 0,
            "corrupt": 0,
        }
        self._rng = as_generator(seed)
        # sequence -> decided fault kind (or None); drawn once per chunk so
        # the schedule is stable across post-recovery replays.
        self._decided: dict = {}

    # ------------------------------------------------------------------

    @property
    def total_faults(self) -> int:
        """Faults injected so far, across all kinds."""
        return sum(self.faults.values())

    def _decide(self, sequence: int) -> Optional[str]:
        if sequence in self._decided:
            # Already decided (and, if faulty, already injected): replays
            # of this chunk pass through clean — faults are transient.
            return None
        draws = self._rng.random(4)
        if draws[0] < self.crash_rate:
            kind = "crash"
        elif draws[1] < self.truncate_rate:
            kind = "truncate"
        elif draws[2] < self.duplicate_rate:
            kind = "duplicate"
        else:
            kind = None
        if kind == "crash" and draws[3] < self.corrupt_rate:
            kind = "corrupt"
        if kind is not None and (
            self.max_faults is not None and self.total_faults >= self.max_faults
        ):
            kind = None
        self._decided[sequence] = kind
        return kind

    def wrap(self, envelopes: Iterable[ChunkEnvelope]) -> Iterator[ChunkEnvelope]:
        """Deliver *envelopes* with faults injected per the seeded schedule."""
        for envelope in envelopes:
            kind = self._decide(envelope.sequence)
            if kind is None:
                yield envelope
                continue
            self.faults[kind] += 1
            if kind == "corrupt":
                self.corrupt_latest_checkpoint()
                raise SimulatedCrash(
                    f"injected crash (with checkpoint corruption) before "
                    f"chunk {envelope.sequence}"
                )
            if kind == "crash":
                raise SimulatedCrash(
                    f"injected crash before chunk {envelope.sequence}"
                )
            if kind == "truncate":
                cut = max(0, envelope.count - 1 - int(self._rng.integers(0, 3)))
                yield ChunkEnvelope(
                    sequence=envelope.sequence,
                    keys=envelope.keys[:cut],
                    count=envelope.count,
                    crc32=envelope.crc32,
                )
                continue
            # duplicate: deliver intact, twice.
            yield envelope
            yield envelope

    def corrupt_latest_checkpoint(self) -> Optional[str]:
        """Flip bytes in the newest checkpoint file; returns its path.

        Returns ``None`` when no checkpoint exists yet.  The flip hits the
        middle of the file, which lands in the compressed payload or the
        manifest and must be caught by the CRC checks on load.
        """
        if self.checkpoint_dir is None:
            raise ConfigurationError("injector was built without a checkpoint_dir")
        paths = CheckpointManager(self.checkpoint_dir).paths()
        if not paths:
            return None
        target = paths[-1]
        size = os.path.getsize(target)
        with open(target, "r+b") as handle:
            handle.seek(size // 2)
            chunk = handle.read(8)
            handle.seek(size // 2)
            handle.write(bytes(byte ^ 0xFF for byte in chunk))
        return str(target)

    def __repr__(self) -> str:
        return (
            f"ChaosInjector(crash_rate={self.crash_rate}, "
            f"truncate_rate={self.truncate_rate}, "
            f"duplicate_rate={self.duplicate_rate}, "
            f"corrupt_rate={self.corrupt_rate}, faults={self.faults})"
        )


def run_until_complete(
    make_runtime: Callable[[], StreamRuntime],
    make_stream: Callable[[], Iterable],
    *,
    checkpoint_dir=None,
    injector: Optional[ChaosInjector] = None,
    max_restarts: int = 100,
) -> tuple:
    """Drive a runtime over a faulty stream to completion, recovering as needed.

    *make_runtime* builds a fresh runtime (used at cold start and when no
    usable checkpoint survives); *make_stream* re-creates the full
    envelope stream for every attempt (at-least-once redelivery from the
    source).  A :class:`SimulatedCrash` abandons the runtime object and
    recovers from the newest intact checkpoint in *checkpoint_dir*; a
    :class:`~repro.errors.StreamIntegrityError` (torn chunk) keeps the
    runtime and simply replays the stream, relying on duplicate-skipping.
    Returns ``(runtime, restarts)``.
    """
    if max_restarts < 0:
        raise ConfigurationError(f"max_restarts must be >= 0, got {max_restarts}")
    runtime = make_runtime()
    restarts = 0
    while True:
        stream = make_stream()
        if injector is not None:
            stream = injector.wrap(stream)
        try:
            runtime.run(stream)
            return runtime, restarts
        except StreamIntegrityError:
            restarts += 1
            if restarts > max_restarts:
                raise
            # Runtime state is intact (the torn chunk was never applied);
            # replay the stream and let duplicate-skipping fast-forward.
        except SimulatedCrash:
            restarts += 1
            if restarts > max_restarts:
                raise
            if checkpoint_dir is None:
                runtime = make_runtime()
                continue
            try:
                runtime = StreamRuntime.recover(
                    checkpoint_dir,
                    checkpoint_every=runtime.checkpoint_every,
                    keep_checkpoints=(
                        runtime.checkpoint_manager.keep
                        if runtime.checkpoint_manager is not None
                        else 2
                    ),
                    governor=runtime.governor,
                    hardener=runtime.hardener,
                    clock=runtime.clock,
                )
            except CheckpointError:
                # Nothing usable on disk (all snapshots corrupt or none
                # written yet): start over from scratch.
                runtime = make_runtime()
