"""Deterministic fault injection for the resilience test harness.

:class:`ChaosInjector` sits between an envelope stream and a
:class:`~repro.resilience.runtime.StreamRuntime` and injects the fault
classes the runtime claims to survive:

* **crash** — raise :class:`SimulatedCrash` between two chunks (the
  process "dies"; the harness recovers from the newest checkpoint);
* **truncate** — deliver an envelope whose payload lost its tail while
  the declared count/CRC still describe the full chunk (a torn read; the
  runtime must raise :class:`~repro.errors.StreamIntegrityError`);
* **duplicate** — deliver the same envelope twice (at-least-once
  delivery; the runtime must apply it exactly once);
* **corrupt** — flip bytes in the newest checkpoint file right before a
  crash (disk corruption; recovery must detect it and fall back).

All decisions come from one seeded generator and each fault fires at most
once per chunk sequence, so a replayed stream after recovery re-delivers
the previously faulted chunk *intact* — faults are transient, runs
terminate, and the whole schedule is reproducible from the seed.
:func:`run_until_complete` is the crash-recovery driver used by the tests
and the CI chaos matrix.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from ..errors import CheckpointError, ConfigurationError, StreamIntegrityError
from ..rng import SeedLike, as_generator
from .checkpoint import CheckpointManager
from .runtime import ChunkEnvelope, StreamRuntime

__all__ = [
    "SimulatedCrash",
    "ResultDropped",
    "ChaosInjector",
    "run_until_complete",
    "WorkerFault",
    "ParallelChaosPlan",
    "make_parallel_chaos_plan",
    "ChaosShardWorker",
]


class SimulatedCrash(RuntimeError):
    """Injected process death.

    Deliberately *not* a :class:`~repro.errors.ReproError`: production
    code must never catch it by accident while handling typed pipeline
    errors.
    """


class ResultDropped(SimulatedCrash):
    """Injected transport loss: the shard's work finished but its result
    never reached the coordinator (a dropped pipe message)."""


class ChaosInjector:
    """Seeded, transient fault injector for envelope streams.

    Parameters
    ----------
    seed:
        Seeds the fault schedule; the same seed produces the same faults
        at the same chunk sequences, every run.
    crash_rate, truncate_rate, duplicate_rate:
        Per-chunk probability of each fault class (a chunk draws each
        independently, at most one fault per chunk wins, in the order
        crash → truncate → duplicate).
    corrupt_rate:
        Probability that a crash is preceded by byte-flipping the newest
        checkpoint file (needs *checkpoint_dir*).
    checkpoint_dir:
        Where :meth:`corrupt_latest_checkpoint` finds snapshots.
    max_faults:
        Hard cap on total injected faults (safety net guaranteeing
        progress even with rates close to 1).
    """

    __slots__ = (
        "crash_rate",
        "truncate_rate",
        "duplicate_rate",
        "corrupt_rate",
        "checkpoint_dir",
        "max_faults",
        "faults",
        "_rng",
        "_decided",
    )

    def __init__(
        self,
        seed: SeedLike,
        *,
        crash_rate: float = 0.0,
        truncate_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        checkpoint_dir=None,
        max_faults: Optional[int] = None,
    ) -> None:
        for name, rate in (
            ("crash_rate", crash_rate),
            ("truncate_rate", truncate_rate),
            ("duplicate_rate", duplicate_rate),
            ("corrupt_rate", corrupt_rate),
        ):
            if not 0 <= rate <= 1:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if corrupt_rate > 0 and checkpoint_dir is None:
            raise ConfigurationError(
                "corrupt_rate needs a checkpoint_dir to corrupt"
            )
        if max_faults is not None and max_faults < 0:
            raise ConfigurationError(f"max_faults must be >= 0, got {max_faults}")
        self.crash_rate = float(crash_rate)
        self.truncate_rate = float(truncate_rate)
        self.duplicate_rate = float(duplicate_rate)
        self.corrupt_rate = float(corrupt_rate)
        self.checkpoint_dir = checkpoint_dir
        self.max_faults = max_faults
        #: Tally of injected faults by kind.
        self.faults: dict = {
            "crash": 0,
            "truncate": 0,
            "duplicate": 0,
            "corrupt": 0,
        }
        self._rng = as_generator(seed)
        # sequence -> decided fault kind (or None); drawn once per chunk so
        # the schedule is stable across post-recovery replays.
        self._decided: dict = {}

    # ------------------------------------------------------------------

    @property
    def total_faults(self) -> int:
        """Faults injected so far, across all kinds."""
        return sum(self.faults.values())

    def _decide(self, sequence: int) -> Optional[str]:
        if sequence in self._decided:
            # Already decided (and, if faulty, already injected): replays
            # of this chunk pass through clean — faults are transient.
            return None
        draws = self._rng.random(4)
        if draws[0] < self.crash_rate:
            kind = "crash"
        elif draws[1] < self.truncate_rate:
            kind = "truncate"
        elif draws[2] < self.duplicate_rate:
            kind = "duplicate"
        else:
            kind = None
        if kind == "crash" and draws[3] < self.corrupt_rate:
            kind = "corrupt"
        if kind is not None and (
            self.max_faults is not None and self.total_faults >= self.max_faults
        ):
            kind = None
        self._decided[sequence] = kind
        return kind

    def wrap(self, envelopes: Iterable[ChunkEnvelope]) -> Iterator[ChunkEnvelope]:
        """Deliver *envelopes* with faults injected per the seeded schedule."""
        for envelope in envelopes:
            kind = self._decide(envelope.sequence)
            if kind is None:
                yield envelope
                continue
            self.faults[kind] += 1
            if kind == "corrupt":
                self.corrupt_latest_checkpoint()
                raise SimulatedCrash(
                    f"injected crash (with checkpoint corruption) before "
                    f"chunk {envelope.sequence}"
                )
            if kind == "crash":
                raise SimulatedCrash(
                    f"injected crash before chunk {envelope.sequence}"
                )
            if kind == "truncate":
                cut = max(0, envelope.count - 1 - int(self._rng.integers(0, 3)))
                yield ChunkEnvelope(
                    sequence=envelope.sequence,
                    keys=envelope.keys[:cut],
                    count=envelope.count,
                    crc32=envelope.crc32,
                )
                continue
            # duplicate: deliver intact, twice.
            yield envelope
            yield envelope

    def corrupt_latest_checkpoint(self) -> Optional[str]:
        """Flip bytes in the newest checkpoint file; returns its path.

        Returns ``None`` when no checkpoint exists yet.  The flip hits the
        middle of the file, which lands in the compressed payload or the
        manifest and must be caught by the CRC checks on load.
        """
        if self.checkpoint_dir is None:
            raise ConfigurationError("injector was built without a checkpoint_dir")
        paths = CheckpointManager(self.checkpoint_dir).paths()
        if not paths:
            return None
        target = paths[-1]
        size = os.path.getsize(target)
        with open(target, "r+b") as handle:
            handle.seek(size // 2)
            chunk = handle.read(8)
            handle.seek(size // 2)
            handle.write(bytes(byte ^ 0xFF for byte in chunk))
        return str(target)

    def __repr__(self) -> str:
        return (
            f"ChaosInjector(crash_rate={self.crash_rate}, "
            f"truncate_rate={self.truncate_rate}, "
            f"duplicate_rate={self.duplicate_rate}, "
            f"corrupt_rate={self.corrupt_rate}, faults={self.faults})"
        )


def run_until_complete(
    make_runtime: Callable[[], StreamRuntime],
    make_stream: Callable[[], Iterable],
    *,
    checkpoint_dir=None,
    injector: Optional[ChaosInjector] = None,
    max_restarts: int = 100,
) -> tuple:
    """Drive a runtime over a faulty stream to completion, recovering as needed.

    *make_runtime* builds a fresh runtime (used at cold start and when no
    usable checkpoint survives); *make_stream* re-creates the full
    envelope stream for every attempt (at-least-once redelivery from the
    source).  A :class:`SimulatedCrash` abandons the runtime object and
    recovers from the newest intact checkpoint in *checkpoint_dir*; a
    :class:`~repro.errors.StreamIntegrityError` (torn chunk) keeps the
    runtime and simply replays the stream, relying on duplicate-skipping.
    Returns ``(runtime, restarts)``.
    """
    if max_restarts < 0:
        raise ConfigurationError(f"max_restarts must be >= 0, got {max_restarts}")
    runtime = make_runtime()
    restarts = 0
    while True:
        stream = make_stream()
        if injector is not None:
            stream = injector.wrap(stream)
        try:
            runtime.run(stream)
            return runtime, restarts
        except StreamIntegrityError:
            restarts += 1
            if restarts > max_restarts:
                raise
            # Runtime state is intact (the torn chunk was never applied);
            # replay the stream and let duplicate-skipping fast-forward.
        except SimulatedCrash:
            restarts += 1
            if restarts > max_restarts:
                raise
            if checkpoint_dir is None:
                runtime = make_runtime()
                continue
            try:
                runtime = StreamRuntime.recover(
                    checkpoint_dir,
                    checkpoint_every=runtime.checkpoint_every,
                    keep_checkpoints=(
                        runtime.checkpoint_manager.keep
                        if runtime.checkpoint_manager is not None
                        else 2
                    ),
                    governor=runtime.governor,
                    hardener=runtime.hardener,
                    clock=runtime.clock,
                )
            except CheckpointError:
                # Nothing usable on disk (all snapshots corrupt or none
                # written yet): start over from scratch.
                runtime = make_runtime()


# ----------------------------------------------------------------------
# Process-pool fault injection for the sharded engine
# ----------------------------------------------------------------------

#: Fault classes a pool worker can suffer, in the order the sharded
#: engine's recovery paths are documented in ``docs/ROBUSTNESS.md``.
WORKER_FAULT_KINDS = ("kill", "hang", "slow", "drop", "corrupt_slot")


@dataclass(frozen=True)
class WorkerFault:
    """One injected fault for a specific ``(shard, attempt)`` dispatch.

    * ``kill`` — the worker dies to ``SIGKILL`` mid-dispatch (breaks the
      whole ``ProcessPoolExecutor``; the pool revives and the supervisor
      retries every poisoned shard);
    * ``hang`` — the worker stalls for *duration* seconds before
      crashing (an eventual OOM-kill); with a deadline armed the
      supervisor abandons it as soon as its heartbeat goes quiet;
    * ``slow`` — the worker sleeps *duration* seconds, then completes
      normally (a straggler; hedged dispatch races it);
    * ``drop`` — the shard's work completes (counters written) but the
      result raises :class:`ResultDropped` instead of returning (lost
      transport message; the retry re-binds the same slot);
    * ``corrupt_slot`` — the worker scribbles NaN over its shared
      counter slot and crashes (torn write; the retry overwrites it).
    """

    kind: str
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown worker fault kind {self.kind!r}; "
                f"expected one of {WORKER_FAULT_KINDS}"
            )
        if self.duration < 0:
            raise ConfigurationError(
                f"fault duration must be >= 0, got {self.duration}"
            )


@dataclass(frozen=True)
class ParallelChaosPlan:
    """A seeded, picklable fault schedule keyed by ``(shard, attempt)``.

    Attempts are the supervisor's per-shard dispatch ordinals, so a
    retried (or hedged) dispatch sees a *fresh* key — faults are
    transient exactly like :class:`ChaosInjector`'s, and a plan whose
    faults all target early attempts provably lets every shard finish
    within the retry allowance.
    """

    faults: tuple = ()

    def fault_for(self, shard: int, attempt: int) -> Optional[WorkerFault]:
        """The fault (if any) scheduled for this dispatch."""
        for (fault_shard, fault_attempt), fault in self.faults:
            if fault_shard == shard and fault_attempt == attempt:
                return fault
        return None

    @property
    def total_faults(self) -> int:
        return len(self.faults)


def make_parallel_chaos_plan(
    seed: SeedLike,
    shards: int,
    *,
    kinds: tuple = ("kill", "hang", "slow", "drop"),
    rate: float = 0.35,
    attempts: int = 1,
    duration: float = 0.05,
    max_faults: Optional[int] = None,
) -> ParallelChaosPlan:
    """Draw a reproducible fault schedule for a sharded run.

    Each of the first *attempts* dispatch ordinals of each shard draws an
    independent Bernoulli(*rate*) fault whose kind is picked uniformly
    from *kinds*.  The same seed always yields the same plan.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if not 0 <= rate <= 1:
        raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
    if attempts < 0:
        raise ConfigurationError(f"attempts must be >= 0, got {attempts}")
    if not kinds:
        raise ConfigurationError("kinds must name at least one fault class")
    for kind in kinds:
        if kind not in WORKER_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown worker fault kind {kind!r}; "
                f"expected one of {WORKER_FAULT_KINDS}"
            )
    rng = as_generator(seed)
    faults = []
    for shard in range(shards):
        for attempt in range(attempts):
            if float(rng.random()) < rate:
                kind = kinds[int(rng.integers(0, len(kinds)))]
                faults.append(((shard, attempt), WorkerFault(kind, duration)))
    if max_faults is not None:
        faults = faults[: max(0, int(max_faults))]
    return ParallelChaosPlan(faults=tuple(faults))


class ChaosShardWorker:
    """A picklable shard worker that executes a :class:`ParallelChaosPlan`.

    Passed to ``run_sharded_sketch(..., _worker=ChaosShardWorker(plan))``;
    each dispatch looks up its ``(shard, attempt)`` fault and misbehaves
    accordingly before/instead of delegating to the real
    :func:`~repro.parallel.worker.run_shard` (imported lazily — the
    parallel package imports this module).

    ``kill`` faults raise ``SIGKILL`` in the *calling process* — only
    schedule them when the worker runs in a real pool process, never
    inline.
    """

    __slots__ = ("plan",)

    def __init__(self, plan: ParallelChaosPlan) -> None:
        self.plan = plan

    def __call__(self, task, **kwargs):
        from ..parallel.shm import SharedBlock
        from ..parallel.worker import run_shard

        fault = self.plan.fault_for(task.index, task.attempt)
        if fault is None:
            return run_shard(task, **kwargs)
        if fault.kind == "kill":
            signal.raise_signal(signal.SIGKILL)
        if fault.kind == "hang":
            time.sleep(fault.duration)
            raise SimulatedCrash(
                f"shard {task.index} attempt {task.attempt} hung for "
                f"{fault.duration:.6g}s and was culled"
            )
        if fault.kind == "slow":
            time.sleep(fault.duration)
            return run_shard(task, **kwargs)
        if fault.kind == "drop":
            run_shard(task, **kwargs)
            raise ResultDropped(
                f"shard {task.index} attempt {task.attempt} finished but "
                "its result was dropped in transit"
            )
        # corrupt_slot: scribble over this dispatch's output slot, then die.
        if task.shm_counters:
            slot = task.shm_slot if task.shm_slot >= 0 else task.index
            block = SharedBlock.attach(task.shm_counters)
            try:
                block.array[slot] = float("nan")
            finally:
                block.close()
        raise SimulatedCrash(
            f"shard {task.index} attempt {task.attempt} tore its counter "
            "slot and crashed"
        )
