"""Adaptive load shedding: a sketch fed at a *varying* Bernoulli rate.

:class:`AdaptiveSheddingSketcher` generalizes
:class:`repro.core.load_shedding.SheddingSketcher` from the paper's fixed
keep-probability to the piecewise-rate design of
:mod:`repro.resilience.schedule`: the rate may be retuned between chunks
(by a :class:`~repro.resilience.governor.LoadGovernor` or manually) and
the estimates stay unbiased for the full stream at every moment.

Mechanics: each kept tuple is inserted Horvitz–Thompson-weighted by
``1/p_s`` (the rate in force when it arrived), so the sketch counters are
unbiased for the *unsampled* stream directly; the self-join estimate
subtracts the deterministic piecewise correction ``A`` tracked by the
:class:`~repro.resilience.schedule.RateSchedule`.  Confidence intervals
use the schedule's widened variance bound, so they remain valid across
rate changes — degrading (widening) gracefully as shedding gets more
aggressive.
"""

from __future__ import annotations

import numpy as np

from ..core.load_shedding import LoadShedder
from ..errors import ConfigurationError
from ..rng import SeedLike
from ..sketches.agms import AgmsSketch
from ..sketches.base import Sketch
from ..sketches.fagms import FagmsSketch
from ..variance.bounds import ConfidenceInterval, chebyshev_interval, clt_interval
from .schedule import RateSchedule

__all__ = ["AdaptiveSheddingSketcher", "averaged_estimator_count"]


def averaged_estimator_count(sketch: Sketch) -> int:
    """Number of averaged basic estimators credited in variance bounds.

    F-AGMS: every bucket of a row acts as one averaged basic estimator
    (the paper's "equivalent to averaging 5,000 or 10,000 basic
    estimators"); the median over rows is credited as free.  AGMS: the
    rows for mean combining, one group's worth for median-of-means, and a
    single estimator for pure median — conservative choices that keep the
    bound an upper bound.
    """
    if isinstance(sketch, FagmsSketch):
        return sketch.buckets
    if isinstance(sketch, AgmsSketch):
        if sketch.combine == "mean":
            return sketch.rows
        if sketch.combine == "median-of-means":
            return max(1, sketch.rows // sketch.groups)
        return 1
    raise ConfigurationError(
        f"{type(sketch).__name__} has no unbiased second-moment combiner; "
        "adaptive shedding estimates need an AGMS or F-AGMS sketch"
    )


class AdaptiveSheddingSketcher:
    """A sketch behind a Bernoulli shedder whose rate may change mid-stream.

    Drop-in generalization of
    :class:`~repro.core.load_shedding.SheddingSketcher`: with the rate
    never changed and ``p = 1`` the update path is bit-identical to
    feeding the sketch directly.
    """

    __slots__ = ("sketch", "shedder", "schedule")

    def __init__(self, sketch: Sketch, p: float = 1.0, seed: SeedLike = None) -> None:
        self.sketch = sketch
        self.shedder = LoadShedder(p, seed)
        self.schedule = RateSchedule(p)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    @property
    def rate(self) -> float:
        """The keep-probability currently in force."""
        return self.schedule.rate

    @property
    def seen(self) -> int:
        """Total tuples that arrived."""
        return self.schedule.seen

    @property
    def kept(self) -> int:
        """Total tuples that survived shedding and were sketched."""
        return self.schedule.kept

    def process(self, keys) -> int:
        """Consume one chunk of the raw stream; returns tuples sketched.

        Survivors are inserted with Horvitz–Thompson weight ``1/p`` (the
        current rate), keeping the counters unbiased for the full stream.
        At ``p = 1`` the unweighted integer fast path is used, so an
        unshedded adaptive sketcher matches a plain sketch bit for bit.
        """
        keys = np.asarray(keys)
        arrived = int(keys.size)
        p = self.shedder.p
        kept = self.shedder.filter(keys)
        if kept.size:
            if p >= 1.0:
                self.sketch.update(kept)
            else:
                self.sketch.update(
                    kept, np.full(kept.size, 1.0 / p, dtype=np.float64)
                )
        self.schedule.record(arrived, int(kept.size))
        return int(kept.size)

    def set_rate(self, p: float) -> None:
        """Retune the keep-probability at a chunk boundary.

        Validates *p* first (state is untouched on rejection), redraws the
        shedder's carried skip-state under the new rate, and opens a new
        segment in the schedule.
        """
        self.shedder.set_p(p)
        self.schedule.set_rate(p)

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------

    def self_join_size(self) -> float:
        """Unbiased full-stream ``F₂`` estimate (piecewise Prop 14)."""
        averaged_estimator_count(self.sketch)  # reject min-combined sketches
        return self.sketch.second_moment() - self.schedule.correction()

    def join_size(self, other: "AdaptiveSheddingSketcher") -> float:
        """Unbiased full-stream ``|F ⋈ G|`` estimate (piecewise Prop 13).

        The HT-weighted counters are unbiased for the unsampled streams,
        so the inner product needs no trailing ``1/(pq)`` scale.
        """
        averaged_estimator_count(self.sketch)
        return self.sketch.inner_product(other.sketch)

    def self_join_interval(
        self, confidence: float = 0.95, *, method: str = "chebyshev"
    ) -> ConfidenceInterval:
        """Confidence interval for :meth:`self_join_size`, valid across rates.

        Uses the schedule's conservative piecewise variance bound; the
        default distribution-independent Chebyshev bound keeps empirical
        coverage at or above nominal for any stream.  ``method="clt"``
        gives the narrower normal-approximation interval.
        """
        estimate = self.self_join_size()
        variance = self.schedule.variance_bound(
            estimate, averaged_estimator_count(self.sketch)
        )
        if method == "chebyshev":
            return chebyshev_interval(estimate, variance, confidence)
        if method == "clt":
            return clt_interval(estimate, variance, confidence)
        raise ConfigurationError(
            f"unknown interval method {method!r}; expected 'chebyshev' or 'clt'"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """JSON-serializable shedder + schedule state (sketch excluded).

        The sketch's counters/seeds are persisted separately through
        :mod:`repro.sketches.serialization`; this covers everything else
        needed to resume bit-identically.
        """
        return {
            "shedder": self.shedder.state(),
            "schedule": self.schedule.to_state(),
        }

    @classmethod
    def restore(cls, sketch: Sketch, state: dict) -> "AdaptiveSheddingSketcher":
        """Rebuild from a reconstructed sketch and a :meth:`state` snapshot."""
        sketcher = object.__new__(cls)
        sketcher.sketch = sketch
        sketcher.shedder = LoadShedder.restore(state["shedder"])
        sketcher.schedule = RateSchedule.from_state(state["schedule"])
        return sketcher

    def __repr__(self) -> str:
        return (
            f"AdaptiveSheddingSketcher(rate={self.rate}, seen={self.seen}, "
            f"kept={self.kept}, sketch={self.sketch!r})"
        )
