"""Piecewise-rate Bernoulli bookkeeping for adaptive load shedding.

The paper's load-shedding analysis (Section VI-A, Props 13–14) assumes one
fixed keep-probability ``p`` for the whole stream.  An *adaptive* shedder
changes ``p`` between chunks, so the executed draw is a **piecewise-rate
Bernoulli design**: the stream splits into segments, every tuple of
segment ``s`` is kept independently with probability ``p_s``, and each
kept tuple enters the sketch Horvitz–Thompson-weighted by ``1/p_s``.

Writing ``X_i = Σ_{t ∈ i} Z_t / p_{s(t)}`` (the weighted sample frequency
of key ``i``), each sketch counter then satisfies ``E[S] = Σ_i f_i ξ_i``
— unbiased for the *full* stream with no trailing scale factor — and::

    E[Σ_i X_i²] = F₂ + A,     A = Σ_s N_s (1 − p_s) / p_s

where ``N_s`` counts the tuples that *arrived* during segment ``s`` (a
deterministic, exactly-tracked quantity).  ``A`` generalizes Prop 14's
additive term ``((1−p)/p²)·|F′|``: for a single segment ``E[|F′|] = N p``
makes the two corrections equal in expectation, but the piecewise form is
deterministic and composes across rate changes.  :class:`RateSchedule`
tracks the segments and exposes the correction, plus a conservative
variance bound (:meth:`RateSchedule.variance_bound`) that widens the
Props 13–14 confidence bounds to cover every rate used — the math is
derived in ``docs/THEORY.md`` (piecewise-rate section).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["RateSegment", "RateSchedule"]


@dataclass
class RateSegment:
    """One maximal run of chunks processed at a single keep-probability."""

    p: float
    seen: int = 0
    kept: int = 0

    def correction(self) -> float:
        """This segment's contribution ``N_s (1 − p_s)/p_s`` to ``A``."""
        return self.seen * (1.0 - self.p) / self.p


class RateSchedule:
    """The executed piecewise-rate Bernoulli design of one shedding run.

    Records, per segment, the keep-probability and the arrived/kept tuple
    tallies; provides the unbiasing correction ``A`` and the widened
    variance bound for the current mixture of rates.  The schedule is the
    part of adaptive-shedding state that must survive a crash: it is fully
    JSON-serializable via :meth:`to_state` / :meth:`from_state`.
    """

    __slots__ = ("_segments",)

    def __init__(self, p: float) -> None:
        _validate_rate(p)
        self._segments: list[RateSegment] = [RateSegment(p=float(p))]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @property
    def rate(self) -> float:
        """The keep-probability currently in force."""
        return self._segments[-1].p

    def record(self, seen: int, kept: int) -> None:
        """Account one processed chunk to the current segment."""
        if seen < 0 or kept < 0 or kept > seen:
            raise ConfigurationError(
                f"invalid chunk tallies: seen={seen}, kept={kept}"
            )
        current = self._segments[-1]
        current.seen += int(seen)
        current.kept += int(kept)

    def set_rate(self, p: float) -> None:
        """Start a new segment at keep-probability *p* (chunk boundary).

        An empty current segment (no tuples arrived yet) is re-rated in
        place rather than left behind as a zero-length segment.
        """
        _validate_rate(p)
        current = self._segments[-1]
        if current.seen == 0:
            current.p = float(p)
        else:
            self._segments.append(RateSegment(p=float(p)))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def seen(self) -> int:
        """Total tuples that arrived across all segments."""
        return sum(segment.seen for segment in self._segments)

    @property
    def kept(self) -> int:
        """Total tuples that survived shedding across all segments."""
        return sum(segment.kept for segment in self._segments)

    @property
    def segments(self) -> tuple:
        """The recorded segments (read-only view)."""
        return tuple(self._segments)

    def min_rate(self) -> float:
        """Smallest keep-probability under which any arrived tuple fell.

        With no tuples processed yet this is the current rate.
        """
        rates = [segment.p for segment in self._segments if segment.seen > 0]
        if not rates:
            return self.rate
        return min(rates)

    def correction(self) -> float:
        """The additive self-join correction ``A = Σ_s N_s (1 − p_s)/p_s``.

        ``second_moment() − A`` is unbiased for the full-stream ``F₂`` when
        kept tuples were inserted with weight ``1/p_s`` (see the module
        docstring).
        """
        return sum(segment.correction() for segment in self._segments)

    def variance_bound(self, f2: float, n: int) -> float:
        """Conservative variance of the piecewise-rate self-join estimator.

        Evaluates the widened Props 13–14 decomposition derived in
        ``docs/THEORY.md``: with ``p_m`` the smallest rate used and

        * ``c₁ = (1−p_m)/p_m``   (per-tuple variance of the HT weight),
        * ``c₂ = (1−p_m)/p_m²``  (≥ per-tuple |third central moment|),
        * ``c₃ = (1−p_m)/p_m³``  (≥ per-tuple fourth cumulant),

        the sampling part is bounded by ``4c₁F₂^{3/2} + (4c₂+2c₁²)F₂ +
        c₃F₁`` (using the power-mean bound ``F₃ ≤ F₂^{3/2}``) and the
        sketch-plus-interaction part by ``(2/n)[(F₂+A)² + sampling]``.
        ``F₁`` and ``A`` are known exactly; *f2* is the caller's estimate
        of the full-stream ``F₂`` (clamped at 0).  *n* is the number of
        averaged basic estimators (buckets for F-AGMS, rows for AGMS).
        """
        if n < 1:
            raise ConfigurationError(f"averaged estimator count must be >= 1, got {n}")
        f2 = max(float(f2), 0.0)
        f1 = float(self.seen)
        p_min = self.min_rate()
        c1 = (1.0 - p_min) / p_min
        c2 = (1.0 - p_min) / p_min**2
        c3 = (1.0 - p_min) / p_min**3
        sampling = 4.0 * c1 * f2**1.5 + (4.0 * c2 + 2.0 * c1**2) * f2 + c3 * f1
        sketch_and_interaction = (2.0 / n) * (
            (f2 + self.correction()) ** 2 + sampling
        )
        return sampling + sketch_and_interaction

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable snapshot of the full schedule."""
        return {
            "segments": [
                {"p": s.p, "seen": s.seen, "kept": s.kept} for s in self._segments
            ]
        }

    @classmethod
    def from_state(cls, state: dict) -> "RateSchedule":
        """Rebuild a schedule from a :meth:`to_state` snapshot."""
        segments = state.get("segments")
        if not segments:
            raise ConfigurationError("rate-schedule state has no segments")
        schedule = cls(segments[0]["p"])
        schedule._segments = [
            RateSegment(
                p=float(raw["p"]), seen=int(raw["seen"]), kept=int(raw["kept"])
            )
            for raw in segments
        ]
        for segment in schedule._segments:
            _validate_rate(segment.p)
        return schedule

    def __repr__(self) -> str:
        return (
            f"RateSchedule(rate={self.rate}, segments={len(self._segments)}, "
            f"seen={self.seen}, kept={self.kept})"
        )


def _validate_rate(p: float) -> None:
    if not 0 < p <= 1:
        raise ConfigurationError(f"keep probability must be in (0, 1], got {p}")
