"""Shared injectable-clock protocol and the EWMA it feeds.

Every timed component of the resilience stack — the
:class:`~repro.resilience.governor.LoadGovernor` cost model, the
:class:`~repro.resilience.runtime.StreamRuntime` chunk timer, and the
dataplane's queue-wait tracking — used to carry its own
``clock: Callable[[], float] = time.perf_counter`` plumbing.  This module
is the one definition they all share now:

* :data:`Clock` — the protocol: any zero-argument callable returning
  monotonically non-decreasing seconds;
* :data:`DEFAULT_CLOCK` — the production clock
  (:func:`time.perf_counter`);
* :class:`ManualClock` — a deterministic test clock advanced explicitly;
* :class:`Ewma` — the exponentially-weighted moving average both the
  governor's per-tuple cost model and the dataplane's queue-wait
  tracker are built on (one smoothing semantic, one serialized form).

Nothing here reads wall-clock time by itself: time only enters through
whichever :data:`Clock` the caller injects, which is what keeps every
timed test in the repository deterministic.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import ConfigurationError

__all__ = ["Clock", "DEFAULT_CLOCK", "Ewma", "ManualClock"]

#: The clock protocol: a zero-argument callable returning seconds from a
#: monotonic origin.  Injectable everywhere a component measures time.
Clock = Callable[[], float]

#: The production clock shared by every timed component.
DEFAULT_CLOCK: Clock = time.perf_counter


class ManualClock:
    """A :data:`Clock` that only moves when the test advances it.

    Usage::

        clock = ManualClock()
        governor = LoadGovernor(1e-6, clock=clock)
        clock.advance(0.25)   # exactly 250 ms pass, deterministically
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        """The current reading (seconds)."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new reading."""
        if seconds < 0:
            raise ConfigurationError(
                f"a monotonic clock cannot go backwards; got advance({seconds})"
            )
        self._now += float(seconds)
        return self._now

    def __repr__(self) -> str:
        return f"ManualClock(now={self._now})"


class Ewma:
    """Exponentially-weighted moving average with a fixed smoothing weight.

    ``value`` is ``None`` until the first observation (no made-up priors);
    afterwards each :meth:`update` folds the newest observation in with
    weight *smoothing*.  The same class backs the governor's per-tuple
    cost model and the dataplane's queue-wait tracking, so both share one
    smoothing semantic and one ``state()``/``restore()`` form.
    """

    __slots__ = ("smoothing", "_value")

    def __init__(self, smoothing: float = 0.5, value: Optional[float] = None) -> None:
        if not 0 < smoothing <= 1:
            raise ConfigurationError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self.smoothing = float(smoothing)
        self._value: Optional[float] = None if value is None else float(value)

    @property
    def value(self) -> Optional[float]:
        """The current average (``None`` before any observation)."""
        return self._value

    def update(self, observed: float) -> float:
        """Fold one observation in; returns the new average."""
        if self._value is None:
            self._value = float(observed)
        else:
            self._value += self.smoothing * (float(observed) - self._value)
        return self._value

    def reset(self) -> None:
        """Forget every observation (back to the no-prior state)."""
        self._value = None

    def state(self) -> dict:
        """JSON-serializable snapshot (the average; smoothing is config)."""
        return {"value": self._value}

    def restore(self, state: dict) -> None:
        """Restore the average from a :meth:`state` snapshot."""
        value = state.get("value")
        self._value = None if value is None else float(value)

    def __repr__(self) -> str:
        return f"Ewma(smoothing={self.smoothing}, value={self._value})"
