"""repro — Sketching Sampled Data Streams (Rusu & Dobra, ICDE 2009).

A complete reproduction of the paper's system: AGMS / F-AGMS sketches,
the three sampling schemes (Bernoulli, with replacement, without
replacement), the combined *sketch-over-samples* estimators with their
exact variance theory, and the three applications (load shedding, i.i.d.
streams, online aggregation).

Quick start::

    from repro import (
        FagmsSketch, BernoulliSampler, zipf_relation,
        sketch_over_sample, estimate_self_join_size,
    )

    relation = zipf_relation(100_000, 10_000, skew=1.0, seed=7)
    sketch = FagmsSketch(buckets=2_000, seed=42)
    info = sketch_over_sample(relation, BernoulliSampler(0.1), sketch, seed=3)
    estimate = estimate_self_join_size(sketch, info)
    print(estimate.value, "vs true", relation.self_join_size())

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.frequency` / :mod:`repro.streams` — data substrate
* :mod:`repro.hashing` / :mod:`repro.sketches` — sketch substrate
* :mod:`repro.sampling` — sampling substrate + moment machinery
* :mod:`repro.variance` — exact estimator expectation/variance theory
* :mod:`repro.core` — the paper's combined estimators and applications
* :mod:`repro.engine` — online aggregation
* :mod:`repro.resilience` — fault-tolerant streaming runtime
* :mod:`repro.parallel` — sharded multiprocess sketching engine
* :mod:`repro.observability` — metrics, tracing, profiling, exporters
* :mod:`repro.experiments` — harness regenerating Figs 1–8
"""

from .core import (
    GenerativeModelEstimator,
    JoinEstimate,
    LoadShedder,
    SelfJoinEstimate,
    SheddingPlan,
    SheddingSketcher,
    estimate_join_size,
    estimate_self_join_size,
    join_interval,
    plan_shedding_rate,
    predict_relative_error,
    sample_join_size,
    sample_self_join_size,
    self_join_interval,
    sketch_over_sample,
)
from .engine import OnlineJoinAggregator, OnlineSelfJoinAggregator, ProgressivePoint
from .errors import (
    BadRecordError,
    CheckpointError,
    ConfigurationError,
    DomainError,
    EstimationError,
    IncompatibleSketchError,
    InsufficientDataError,
    MergeError,
    ReproError,
    RetryExhaustedError,
    SerializationError,
    StreamIntegrityError,
)
from .observability import NULL_OBSERVER, Observer
from .parallel import (
    ShardedScanResult,
    WorkerPool,
    merge_tree,
    parallel_update,
    run_sharded_sketch,
)
from .resilience import (
    AdaptiveSheddingSketcher,
    ChaosInjector,
    CheckpointManager,
    ChunkEnvelope,
    InputHardener,
    LoadGovernor,
    SimulatedCrash,
    StreamRuntime,
)
from .frequency import FrequencyVector
from .sampling import (
    BernoulliSampler,
    ReservoirSampler,
    SampleInfo,
    Sampler,
    SamplingCoefficients,
    WithReplacementSampler,
    WithoutReplacementSampler,
)
from .sketches import (
    AgmsSketch,
    CountMinSketch,
    FagmsSketch,
    Sketch,
    join_size,
    load_sketch,
    save_sketch,
    self_join_size,
)
from .streams import (
    Relation,
    TpchTables,
    ZipfDistribution,
    generate_tpch,
    uniform_relation,
    zipf_frequency_vector,
    zipf_relation,
)
from .variance import (
    ConfidenceInterval,
    VarianceDecomposition,
    chebyshev_interval,
    clt_interval,
    decompose_combined_variance,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "DomainError",
    "EstimationError",
    "InsufficientDataError",
    "IncompatibleSketchError",
    "MergeError",
    "SerializationError",
    "CheckpointError",
    "StreamIntegrityError",
    "BadRecordError",
    "RetryExhaustedError",
    # data substrate
    "FrequencyVector",
    "Relation",
    "ZipfDistribution",
    "zipf_relation",
    "zipf_frequency_vector",
    "uniform_relation",
    "TpchTables",
    "generate_tpch",
    # sketches
    "Sketch",
    "AgmsSketch",
    "FagmsSketch",
    "CountMinSketch",
    "join_size",
    "self_join_size",
    # sampling
    "Sampler",
    "SampleInfo",
    "SamplingCoefficients",
    "BernoulliSampler",
    "WithReplacementSampler",
    "WithoutReplacementSampler",
    "ReservoirSampler",
    # core estimators & applications
    "sketch_over_sample",
    "estimate_join_size",
    "estimate_self_join_size",
    "JoinEstimate",
    "SelfJoinEstimate",
    "join_interval",
    "self_join_interval",
    "LoadShedder",
    "SheddingSketcher",
    "GenerativeModelEstimator",
    "SheddingPlan",
    "plan_shedding_rate",
    "predict_relative_error",
    "sample_join_size",
    "sample_self_join_size",
    "save_sketch",
    "load_sketch",
    # engine
    "ProgressivePoint",
    "OnlineSelfJoinAggregator",
    "OnlineJoinAggregator",
    # resilience
    "AdaptiveSheddingSketcher",
    "LoadGovernor",
    "InputHardener",
    "CheckpointManager",
    "ChunkEnvelope",
    "StreamRuntime",
    "ChaosInjector",
    "SimulatedCrash",
    # observability
    "Observer",
    "NULL_OBSERVER",
    # parallel
    "WorkerPool",
    "ShardedScanResult",
    "run_sharded_sketch",
    "parallel_update",
    "merge_tree",
    # variance / bounds
    "ConfidenceInterval",
    "chebyshev_interval",
    "clt_interval",
    "VarianceDecomposition",
    "decompose_combined_variance",
]
