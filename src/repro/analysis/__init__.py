"""Repo-specific static analysis: the invariants the runtime never checks.

This package is a self-contained checker for the reproduction's
correctness invariants (see ``docs/STATIC_ANALYSIS.md``).  It runs in
two passes: per-file AST rules, then whole-program rules over a
project-wide symbol table and call graph
(:mod:`repro.analysis.graph` / :mod:`repro.analysis.resolve`):

========  ====================  ================================================
Code      Name                  Invariant
========  ====================  ================================================
REP001    determinism           randomness flows through :mod:`repro.rng` only
REP002    dtype-safety          power sums/accumulators promote to int64/float64
REP003    api-consistency       ``__all__`` is real; public defs documented
REP004    float-equality        no bare ``==``/``!=`` on float expressions
REP005    estimator-contract    sketches implement the full interface and call
                                ``check_compatible`` before cross-sketch
                                estimates
REP006    metric-names          metric/span names are static dotted literals
REP007    pickle-safety         only picklable plain data crosses process seams
REP008    kernel-seam           sketch updates route through the kernels backend
REP009    observer-propagation  ``observer=`` forwards through every call chain
REP010    checkpoint-schema     checkpoint save/restore key sets stay symmetric
========  ====================  ================================================

Run it with ``python -m repro.analysis [paths]`` (or the installed
``repro-analysis`` script); the tier-1 test suite also executes it over
``src`` and ``tests`` so a violation fails CI.  ``--jobs N`` parallelizes
the per-file pass, ``--cache-dir`` enables the content-hash incremental
cache, and ``-f sarif`` emits a SARIF 2.1.0 report for code scanning.
"""

from __future__ import annotations

from .cache import AnalysisCache, ruleset_fingerprint
from .config import AnalysisConfig, RuleConfig, load_config, path_matches
from .engine import (
    AnalysisResult,
    analyze_file,
    analyze_paths,
    analyze_source,
    analyze_sources,
    discover_files,
    effective_suppressions,
    parse_suppressions,
)
from .graph import ModuleInfo, module_name_for, summarize_module
from .registry import (
    RULE_REGISTRY,
    FileContext,
    Finding,
    ProjectContext,
    ProjectRule,
    Rule,
    Severity,
    all_rules,
    file_rules,
    get_rule,
    project_rules,
)
from .reporters import (
    REPORT_SCHEMA_VERSION,
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
)
from .resolve import ProjectGraph
from . import rules as _rules  # noqa: F401  — registers the REP rules

__all__ = [
    "AnalysisCache",
    "AnalysisConfig",
    "AnalysisResult",
    "FileContext",
    "Finding",
    "ModuleInfo",
    "ProjectContext",
    "ProjectGraph",
    "ProjectRule",
    "REPORT_SCHEMA_VERSION",
    "RULE_REGISTRY",
    "Rule",
    "RuleConfig",
    "SARIF_VERSION",
    "Severity",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "discover_files",
    "effective_suppressions",
    "file_rules",
    "get_rule",
    "load_config",
    "module_name_for",
    "parse_suppressions",
    "path_matches",
    "project_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "ruleset_fingerprint",
    "summarize_module",
]
