"""Repo-specific static analysis: the invariants the runtime never checks.

This package is a self-contained AST-based checker for the reproduction's
correctness invariants (see ``docs/STATIC_ANALYSIS.md``):

========  =================  ====================================================
Code      Name               Invariant
========  =================  ====================================================
REP001    determinism        randomness flows through :mod:`repro.rng` only
REP002    dtype-safety       power sums/accumulators promote to int64/float64
REP003    api-consistency    ``__all__`` is real; public defs documented
REP004    float-equality     no bare ``==``/``!=`` on float expressions
REP005    estimator-contract sketches implement the full interface and call
                             ``check_compatible`` before cross-sketch estimates
========  =================  ====================================================

Run it with ``python -m repro.analysis [paths]`` (or the installed
``repro-analysis`` script); the tier-1 test suite also executes it over
``src`` and ``tests`` so a violation fails CI.
"""

from __future__ import annotations

from .config import AnalysisConfig, RuleConfig, load_config, path_matches
from .engine import (
    AnalysisResult,
    analyze_file,
    analyze_paths,
    analyze_source,
    discover_files,
    parse_suppressions,
)
from .registry import (
    RULE_REGISTRY,
    FileContext,
    Finding,
    Rule,
    Severity,
    all_rules,
    get_rule,
)
from .reporters import REPORT_SCHEMA_VERSION, render_json, render_text
from . import rules as _rules  # noqa: F401  — registers the REP rules

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "FileContext",
    "Finding",
    "REPORT_SCHEMA_VERSION",
    "RULE_REGISTRY",
    "Rule",
    "RuleConfig",
    "Severity",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "discover_files",
    "get_rule",
    "load_config",
    "parse_suppressions",
    "path_matches",
    "render_json",
    "render_text",
]
