"""Import-resolution AST primitives shared by rules and the graph pass.

Lives outside :mod:`repro.analysis.rules` so the graph builder can use
it without importing the rule package (which would be circular: rule
modules import the graph).  :mod:`repro.analysis.rules.common` re-exports
everything here for the per-file rules.
"""

from __future__ import annotations

import ast
from typing import Optional

__all__ = ["ImportTable", "qualified_name"]


class ImportTable:
    """Maps local names to the canonical dotted paths they were bound to."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b.c`` binds ``a`` to package ``a`` unless
                    # aliased, in which case the alias means the full path.
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative imports resolve within repro itself
                    module = "." * node.level + (node.module or "")
                else:
                    module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        """Canonicalize a source-level dotted name via the import aliases."""
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head, head)
        return f"{base}.{rest}" if rest else base


def qualified_name(
    node: ast.AST, imports: Optional[ImportTable] = None
) -> Optional[str]:
    """Dotted name of a ``Name``/``Attribute`` chain, else ``None``.

    With *imports*, the head segment is canonicalized through the file's
    import aliases.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    dotted = ".".join(reversed(parts))
    return imports.resolve(dotted) if imports else dotted
