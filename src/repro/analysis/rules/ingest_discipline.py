"""REP013 — ingest goes through the dataplane, with bounded buffering.

The dataplane (:mod:`repro.dataplane`) is the one scan loop: sources
seal envelopes, the pipeline verifies them exactly once, a *bounded*
queue provides backpressure, and chaos/observer seams come for free.
Code that hand-rolls the same loop forfeits all of that — and an
unbounded ``queue.Queue()`` between a producer and a slow consumer is
the classic way a streaming process grows without limit until the OOM
killer ends it.

Heuristics (AST-only):

* an unbounded stdlib queue construction — ``queue.Queue()`` (or
  ``LifoQueue``/``PriorityQueue``) with no ``maxsize``, a literal
  ``maxsize <= 0``, or a ``queue.SimpleQueue()`` (never bounded) —
  buffering must be bounded (:class:`repro.dataplane.BoundedQueue` or a
  positive ``maxsize``);
* a hand-rolled ingest loop: a ``for`` statement iterating directly
  over a chunk source (``read_stream``/``iter_chunks``/
  ``envelope_stream``/``retrying_read_stream`` or a ``.chunks(...)``
  call) whose body feeds a consumer (``.process``/``.ingest``/
  ``.consume``/``.update`` call) — that is a
  :class:`~repro.dataplane.Pipeline` written by hand, minus its
  exactly-once cursor and backpressure.

Iterating a chunk source to *transform or forward* it (yield, seal,
collect) is fine: the rule fires only when the loop body terminates the
stream in a consumer.  The dataplane package itself is exempt by
configuration — it is the implementation these heuristics point to.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..registry import FileContext, Finding, Rule, register_rule
from .common import ImportTable, qualified_name

__all__ = ["IngestDisciplineRule"]

#: Stdlib queue constructors that accept a ``maxsize`` bound.
_BOUNDABLE_QUEUES = {
    "queue.Queue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
}

#: Queue constructors that can never be bounded.
_UNBOUNDABLE_QUEUES = {"queue.SimpleQueue"}

#: Callables that produce a chunk/envelope stream.
_SOURCE_CALLS = {
    "read_stream",
    "iter_chunks",
    "envelope_stream",
    "retrying_read_stream",
}

#: Attribute calls that terminate a stream in a consumer.
_CONSUMER_METHODS = {"process", "ingest", "consume", "update"}


def _literal_int(node: ast.expr) -> Optional[int]:
    """The node's int value when it is a plain integer literal, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        if not isinstance(node.value, bool):
            return int(node.value)
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
        and not isinstance(node.operand.value, bool)
    ):
        return -int(node.operand.value)
    return None


def _queue_unbounded(call: ast.Call) -> bool:
    """Whether a boundable queue construction is provably unbounded."""
    maxsize: Optional[ast.expr] = None
    if call.args:
        maxsize = call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "maxsize":
            maxsize = keyword.value
    if maxsize is None:
        return True  # default maxsize=0: unbounded
    literal = _literal_int(maxsize)
    return literal is not None and literal <= 0


def _source_call_name(iterator: ast.expr, imports: ImportTable) -> Optional[str]:
    """The chunk-source name when the loop iterates one directly."""
    if not isinstance(iterator, ast.Call):
        return None
    func = iterator.func
    if isinstance(func, ast.Attribute) and func.attr == "chunks":
        return ".chunks()"
    name = qualified_name(func, imports)
    if name is not None:
        tail = name.rsplit(".", 1)[-1]
        if tail in _SOURCE_CALLS:
            return tail
    if isinstance(func, ast.Name) and func.id in _SOURCE_CALLS:
        return func.id
    return None


def _consumer_call(loop: ast.For) -> Optional[ast.Call]:
    """The first consumer-method call in the loop body, if any."""
    for stmt in loop.body:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _CONSUMER_METHODS
            ):
                return sub
    return None


@register_rule
class IngestDisciplineRule(Rule):
    """Flag unbounded queues and hand-rolled ingest loops."""

    code = "REP013"
    name = "ingest-discipline"
    description = (
        "ingest runs on repro.dataplane: no unbounded queue.Queue() "
        "buffering, no hand-rolled chunk-source -> consumer scan loops"
    )
    default_include = ("src",)
    default_exclude = ("src/repro/dataplane", "tests")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_queue(ctx, node, imports)
            elif isinstance(node, ast.For):
                yield from self._check_ingest_loop(ctx, node, imports)

    # ------------------------------------------------------------------

    def _check_queue(
        self, ctx: FileContext, call: ast.Call, imports: ImportTable
    ) -> Iterator[Finding]:
        name = qualified_name(call.func, imports)
        if name in _UNBOUNDABLE_QUEUES:
            yield self.finding(
                ctx,
                call,
                f"{name}() can never be bounded; buffer hand-offs through "
                "a repro.dataplane.BoundedQueue (or a queue.Queue with a "
                "positive maxsize) so backpressure reaches the producer",
            )
            return
        if name in _BOUNDABLE_QUEUES and _queue_unbounded(call):
            yield self.finding(
                ctx,
                call,
                f"unbounded {name}(): a slow consumer buffers the whole "
                "stream in memory; pass a positive maxsize or use "
                "repro.dataplane.BoundedQueue for wait-accounted "
                "backpressure",
            )

    def _check_ingest_loop(
        self, ctx: FileContext, loop: ast.For, imports: ImportTable
    ) -> Iterator[Finding]:
        source = _source_call_name(loop.iter, imports)
        if source is None:
            return
        consumer = _consumer_call(loop)
        if consumer is None:
            return
        method = consumer.func.attr  # type: ignore[attr-defined]
        yield self.finding(
            ctx,
            loop,
            f"hand-rolled ingest loop: iterating {source} straight into "
            f".{method}() re-implements the dataplane without its "
            "exactly-once cursor or backpressure; compose a "
            "repro.dataplane.Pipeline (source -> operators -> sinks) "
            "instead",
        )
