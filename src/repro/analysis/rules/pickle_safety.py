"""REP007 — only picklable plain data may cross a process seam.

The parallel engine's whole correctness story (PR 4) rests on shard
tasks being *plain data*: a :class:`repro.parallel.worker.ShardTask`
travels to its worker process by pickle, so anything unpicklable in it —
a lambda, a closure, a lock, an open file, a live generator — either
crashes the pool at dispatch time or (worse, with fork) smuggles shared
mutable state across the boundary and silently breaks determinism.

This is a whole-program rule because "is this picklable" is not a local
question: the argument at the seam may be a name bound three statements
earlier, a function defined in another module (fine if module-level, a
closure if nested), or an instance of a dataclass whose *fields* —
declared in yet another file — contain a ``Callable``.  The rule
resolves all of that through the project graph and flags only **provable**
violations; unknown expressions pass (runtime pickling still guards
them).

A *process seam* is

* a ``.submit(...)`` / ``.map(...)`` / ``.apply_async(...)`` (and
  friends) call on a receiver bound to a process-pool type
  (``concurrent.futures.ProcessPoolExecutor``, ``multiprocessing``
  pools, :class:`repro.parallel.pool.WorkerPool`), or
* a constructor call of a seam task type (``ShardTask``,
  ``PartialUpdateTask``) — whose declared fields are additionally
  checked for transitively unpicklable annotations.

Both lists can be extended per-project via the rule's ``pool_types`` /
``seam_types`` options in ``[tool.repro.analysis.rep007]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..registry import Finding, ProjectContext, ProjectRule, register_rule
from .common import qualified_name

__all__ = ["PickleSafetyRule"]

#: Process-pool receivers whose dispatch methods are process seams.
_POOL_TYPES = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
        "repro.parallel.pool.WorkerPool",
        "repro.parallel.WorkerPool",
    }
)

#: Dispatch methods that pickle their arguments into another process.
_SEAM_METHODS = frozenset(
    {"submit", "map", "apply_async", "starmap", "imap", "imap_unordered"}
)

#: Task types whose construction *is* the seam (they travel by pickle).
_SEAM_TYPES = frozenset(
    {
        "repro.parallel.worker.ShardTask",
        "repro.parallel.worker.PartialUpdateTask",
        "repro.parallel.ShardTask",
        "repro.parallel.PartialUpdateTask",
    }
)

#: Constructors whose *result* provably cannot be pickled.
_UNPICKLABLE_FACTORIES = {
    "threading.Lock": "a threading lock",
    "threading.RLock": "a threading lock",
    "threading.Condition": "a threading condition",
    "threading.Semaphore": "a threading semaphore",
    "threading.Event": "a threading event",
    "multiprocessing.Lock": "a multiprocessing lock",
    "multiprocessing.RLock": "a multiprocessing lock",
    "open": "an open file handle",
    "io.open": "an open file handle",
    "socket.socket": "a socket",
}


@register_rule
class PickleSafetyRule(ProjectRule):
    """Flag provably unpicklable objects reaching a process seam."""

    code = "REP007"
    name = "pickle-safety"
    description = (
        "objects crossing a process seam (pool submit/map, shard task "
        "construction) must be picklable plain data — no lambdas, "
        "closures, locks, open files, or generators"
    )
    default_include = ("src",)
    default_exclude = ("tests",)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        pool_types = _POOL_TYPES | set(project.options.get("pool_types", ()))
        seam_types = _SEAM_TYPES | set(project.options.get("seam_types", ()))
        for rel_path in project.target_files:
            ctx = project.context(rel_path)
            module = graph.module_for_path(rel_path)
            if ctx is None or module is None:
                continue
            checker = _FileSeams(
                self, rel_path, ctx.tree, module, graph, pool_types, seam_types
            )
            yield from checker.run()


class _FileSeams:
    """Per-file seam scan against one module's graph summary."""

    def __init__(self, rule, rel_path, tree, module, graph, pool_types, seam_types):
        self.rule = rule
        self.rel_path = rel_path
        self.tree = tree
        self.module = module
        self.graph = graph
        self.pool_types = pool_types
        self.seam_types = seam_types
        #: Names provably bound to unpicklable values (flat per file —
        #: the rule only needs "some binding of this name is poisoned").
        self.poisoned: dict = {}
        #: Names bound to process-pool instances.
        self.pools: set = set()
        #: Names of functions defined inside other functions (closures).
        self.nested_defs = {
            fn.name
            for fn in module.functions.values()
            if fn.parent_function is not None
        }

    # -- binding collection --------------------------------------------

    def _call_canonical(self, node: ast.Call) -> Optional[str]:
        dotted = qualified_name(node.func)
        if dotted is None:
            return None
        return self.graph.canonical_in(self.module, dotted)

    def _constructed_reason(self, node: ast.Call) -> Optional[str]:
        """Why constructing *node*'s result is unpicklable, if provable."""
        canonical = self._call_canonical(node)
        if canonical is None:
            return None
        if canonical in _UNPICKLABLE_FACTORIES:
            return _UNPICKLABLE_FACTORIES[canonical]
        klass = self.graph.lookup_class(canonical)
        if klass is not None:
            owner = self.graph.module(klass.module)
            if owner is not None:
                for field_name, annotation in klass.fields:
                    reason = self.graph.unpicklable_annotation(owner, annotation)
                    if reason is not None:
                        return (
                            f"an instance of {klass.name} whose field "
                            f"{field_name!r} holds {reason}"
                        )
        return None

    def _collect_bindings(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                reason = self._value_reason(node.value)
                if reason is not None:
                    self.poisoned[target.id] = reason
                elif isinstance(node.value, ast.Call):
                    canonical = self._call_canonical(node.value)
                    if canonical in self.pool_types:
                        self.pools.add(target.id)
            elif isinstance(node, ast.withitem):
                var = node.optional_vars
                if not isinstance(var, ast.Name):
                    continue
                if isinstance(node.context_expr, ast.Call):
                    canonical = self._call_canonical(node.context_expr)
                    if canonical in ("open", "io.open"):
                        self.poisoned[var.id] = "an open file handle"
                    elif canonical in self.pool_types:
                        self.pools.add(var.id)

    # -- argument classification ---------------------------------------

    def _value_reason(self, node: ast.expr) -> Optional[str]:
        """Why this expression's value is unpicklable, or ``None``."""
        if isinstance(node, ast.Lambda):
            return "a lambda"
        if isinstance(node, ast.GeneratorExp):
            return "a generator expression"
        if isinstance(node, ast.Call):
            return self._constructed_reason(node)
        if isinstance(node, ast.Name):
            if node.id in self.poisoned:
                return self.poisoned[node.id]
            if node.id in self.nested_defs:
                return "a closure (function defined inside another function)"
            canonical = self.graph.canonical_in(self.module, node.id)
            fn = self.graph.lookup_function(canonical)
            if fn is not None:
                if fn.parent_function is not None:
                    return (
                        "a closure (function defined inside another function)"
                    )
                if fn.is_generator:
                    return "a generator function"
        return None

    # -- seam detection ------------------------------------------------

    def _is_pool_dispatch(self, node: ast.Call) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _SEAM_METHODS:
            return False
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id in self.pools:
                return True
            canonical = self.graph.canonical_in(self.module, receiver.id)
            return canonical in self.pool_types
        if isinstance(receiver, ast.Call):
            return self._call_canonical(receiver) in self.pool_types
        return False

    def _seam_type_call(self, node: ast.Call) -> Optional[str]:
        canonical = self._call_canonical(node)
        if canonical is None:
            return None
        if canonical in self.seam_types:
            return canonical
        symbol = self.graph.lookup_class(canonical)
        if symbol is not None and symbol.canonical in self.seam_types:
            return symbol.canonical
        return None

    # -- main pass -----------------------------------------------------

    def run(self) -> Iterator[Finding]:
        self._collect_bindings()
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_pool_dispatch(node):
                seam = f"{node.func.attr}() process dispatch"
                yield from self._check_arguments(node, seam)
                continue
            seam_type = self._seam_type_call(node)
            if seam_type is not None:
                short = seam_type.rsplit(".", 1)[-1]
                yield from self._check_arguments(node, f"{short}(...) task")
                yield from self._check_seam_fields(node, seam_type, short)

    def _check_arguments(self, node: ast.Call, seam: str) -> Iterator[Finding]:
        arguments = [(None, a) for a in node.args if not isinstance(a, ast.Starred)]
        arguments += [(kw.arg, kw.value) for kw in node.keywords]
        for label, value in arguments:
            reason = self._value_reason(value)
            if reason is None:
                continue
            where = f"argument {label!r}" if label else "argument"
            yield self.rule.finding_at(
                self.rel_path,
                getattr(value, "lineno", node.lineno),
                getattr(value, "col_offset", node.col_offset),
                f"{where} to {seam} is {reason}, which cannot cross a "
                "process boundary — ship picklable plain data instead",
            )

    def _check_seam_fields(
        self, node: ast.Call, seam_type: str, short: str
    ) -> Iterator[Finding]:
        klass = self.graph.lookup_class(seam_type)
        if klass is None:
            return
        owner = self.graph.module(klass.module)
        if owner is None:
            return
        for field_name, annotation in klass.fields:
            reason = self.graph.unpicklable_annotation(owner, annotation)
            if reason is not None:
                yield self.rule.finding_at(
                    self.rel_path,
                    node.lineno,
                    node.col_offset,
                    f"seam task {short} declares field {field_name!r} as "
                    f"{reason}, which cannot cross a process boundary — "
                    "seam task fields must be picklable plain types",
                )
