"""REP012 — no blocking calls inside ``async def`` bodies.

The serving layer (:mod:`repro.serving`) runs its HTTP front end on a
single asyncio event loop.  Any synchronous blocking call inside a
coroutine — a ``time.sleep``, a subprocess, a synchronous file ``open``
or socket connect — stalls *every* connection on that loop, turning one
slow request into a full-service outage.  Blocking work belongs on
threads (as the registry's ingest already is) or behind
``loop.run_in_executor``; coroutines must await.

Heuristics (AST-only):

* inside the body of an ``async def`` (its own statements, not those of
  nested non-async ``def``/``lambda`` definitions, which may legally be
  shipped to executors), flag calls resolving to a known blocking API:
  ``time.sleep``/bare ``sleep``, the ``subprocess`` module's spawn
  helpers, ``os.system``/``os.popen``, synchronous socket construction
  (``socket.create_connection``, ``socket.socket``),
  ``urllib.request.urlopen``, the ``requests`` HTTP client, and the
  builtin ``open``;
* ``await``-ed expressions are never flagged (``asyncio.sleep`` is the
  fix for ``time.sleep``, and awaiting an async context manager or
  library call is exactly what the rule wants to see).

The rule is scoped to ``src`` by default; tests may block inside small
driver coroutines on purpose (configured per-repo in ``pyproject.toml``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..registry import FileContext, Finding, Rule, register_rule
from .common import ImportTable, qualified_name

__all__ = ["AsyncBlockingRule"]

#: Dotted names that block the calling thread.
_BLOCKING_NAMES = {
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "subprocess.getoutput",
    "subprocess.getstatusoutput",
    "os.system",
    "os.popen",
    "os.wait",
    "os.waitpid",
    "socket.create_connection",
    "socket.socket",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.put",
    "requests.delete",
    "requests.head",
    "requests.request",
    "requests.Session",
}

#: Bare names that block even when unresolvable through imports.
_BLOCKING_BARE = {"sleep", "open"}


def _blocking_name(node: ast.Call, imports: ImportTable) -> str:
    """The blocking API a call resolves to, or an empty string."""
    name = qualified_name(node.func, imports)
    if name in _BLOCKING_NAMES:
        return name
    if isinstance(node.func, ast.Name) and node.func.id in _BLOCKING_BARE:
        return node.func.id
    return ""


def _own_statements(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk the coroutine's own body, skipping nested function scopes.

    Nested ``async def`` coroutines are visited by the outer loop over
    the module tree; nested synchronous ``def``/``lambda`` bodies are a
    different execution context (typically shipped to an executor or a
    thread) and must not be attributed to the enclosing coroutine.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.AsyncFunctionDef, ast.FunctionDef, ast.Lambda)
        ):
            continue  # a nested scope: yielded, never expanded
        stack.extend(ast.iter_child_nodes(node))


def _awaited_calls(func: ast.AsyncFunctionDef) -> set:
    """Identity-set of Call nodes that appear directly under an await."""
    awaited = set()
    for node in _own_statements(func):
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            awaited.add(id(node.value))
    return awaited


@register_rule
class AsyncBlockingRule(Rule):
    """Flag synchronous blocking calls inside coroutine bodies."""

    code = "REP012"
    name = "async-blocking"
    description = (
        "no blocking calls (time.sleep, subprocess, sync file/socket IO) "
        "inside async def bodies; await, or move the work to a thread"
    )
    default_include = ("src",)
    default_exclude = ("tests",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(ctx, node, imports)

    # ------------------------------------------------------------------

    def _check_coroutine(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        imports: ImportTable,
    ) -> Iterator[Finding]:
        awaited = _awaited_calls(func)
        for node in _own_statements(func):
            if not isinstance(node, ast.Call) or id(node) in awaited:
                continue
            name = _blocking_name(node, imports)
            if name:
                yield self.finding(
                    ctx,
                    node,
                    f"blocking call {name}() inside coroutine "
                    f"'{func.name}' stalls the whole event loop; await an "
                    "async equivalent or move the work to a thread/executor",
                )
