"""REP001 — randomness must flow through :mod:`repro.rng`.

The paper's Monte-Carlo validation (variance checks against the closed
forms of Props 9–16) is only reproducible when every random draw descends
from one seed threaded through ``repro.rng.as_generator``/``spawn``.  A
module that calls ``np.random.default_rng()`` (or the legacy global numpy
RNG, or the stdlib :mod:`random` module) creates an unauditable entropy
source and silently breaks trial-for-trial reproducibility.

The rule also bans *ambient entropy* — ``os.getpid``, ``os.urandom``,
``time.time``, ``uuid.uuid4``, the :mod:`secrets` module — being mixed
into seeds.  The classic multiprocessing bug is seeding each worker from
its pid or the wall clock, which makes every run unrepeatable; worker
RNGs must instead descend from ``SeedSequence.spawn`` substreams handed
out by the coordinator (see :mod:`repro.parallel.worker`).  Monotonic
*timers* (``time.perf_counter``/``time.monotonic``) stay legal — they
measure cost, they never feed seeds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..registry import FileContext, Finding, Rule, register_rule
from .common import ImportTable, qualified_name

__all__ = ["DeterminismRule"]

#: numpy.random entry points that mint or reseed generators ad hoc.
_BANNED_NUMPY = {
    "numpy.random.default_rng",
    "numpy.random.seed",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.set_state",
    "numpy.random.get_state",
}

#: Legacy numpy global-state draw functions (``np.random.normal`` etc.).
_LEGACY_DRAWS = {
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "binomial",
    "poisson",
    "exponential",
    "zipf",
    "bytes",
}

#: Ambient entropy sources that must never feed seeds or shard identity.
#: ``time.perf_counter``/``time.monotonic`` are deliberately absent —
#: timing costs is fine, seeding from the clock is not.
_ENTROPY_SOURCES = {
    "os.getpid",
    "os.urandom",
    "time.time",
    "time.time_ns",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbits",
    "secrets.randbelow",
}


@register_rule
class DeterminismRule(Rule):
    """Ban ad-hoc RNG construction outside :mod:`repro.rng`."""

    code = "REP001"
    name = "determinism"
    description = (
        "numpy/stdlib RNGs must not be constructed or reseeded directly; "
        "thread seeds through repro.rng.as_generator/spawn instead"
    )
    default_include = ("src",)
    default_exclude = ("src/repro/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Only *calls* are flagged: referencing ``np.random.Generator`` in a
        # type annotation (or isinstance check) is legitimate; constructing
        # or reseeding one is not.
        imports = ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, imports)
            if name is None:
                continue
            if name in _BANNED_NUMPY:
                short = name.rsplit(".", 1)[-1]
                yield self.finding(
                    ctx,
                    node,
                    f"direct use of numpy.random.{short}; normalize seeds "
                    "via repro.rng.as_generator (or spawn) so the draw is "
                    "auditable and reproducible",
                )
            elif (
                name.startswith("numpy.random.")
                and name.rsplit(".", 1)[-1] in _LEGACY_DRAWS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"legacy global-state draw {name}(); draw from a "
                    "Generator obtained through repro.rng instead",
                )
            elif name in _ENTROPY_SOURCES:
                yield self.finding(
                    ctx,
                    node,
                    f"ambient entropy source {name}(); worker/shard RNGs "
                    "must descend from coordinator-spawned SeedSequence "
                    "substreams (repro.rng.spawn), never from pids, clocks, "
                    "or OS randomness",
                )
            elif name.startswith("random."):
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib {name}() bypasses the repro.rng seeding "
                    "discipline; use a numpy Generator from "
                    "repro.rng.as_generator",
                )
