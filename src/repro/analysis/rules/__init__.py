"""The repo-specific invariant rules.

Importing this package registers every rule with
:data:`repro.analysis.registry.RULE_REGISTRY`.
"""

from __future__ import annotations

from .api_consistency import ApiConsistencyRule
from .async_blocking import AsyncBlockingRule
from .backoff_discipline import BackoffDisciplineRule
from .checkpoint_schema import CheckpointSchemaRule
from .determinism import DeterminismRule
from .dtype_safety import DtypeSafetyRule
from .estimator_contract import EstimatorContractRule
from .float_equality import FloatEqualityRule
from .ingest_discipline import IngestDisciplineRule
from .kernel_seam import KernelSeamRule
from .naming import MetricNameRule
from .observer_propagation import ObserverPropagationRule
from .pickle_safety import PickleSafetyRule

__all__ = [
    "ApiConsistencyRule",
    "AsyncBlockingRule",
    "BackoffDisciplineRule",
    "CheckpointSchemaRule",
    "DeterminismRule",
    "DtypeSafetyRule",
    "EstimatorContractRule",
    "FloatEqualityRule",
    "IngestDisciplineRule",
    "KernelSeamRule",
    "MetricNameRule",
    "ObserverPropagationRule",
    "PickleSafetyRule",
]
