"""The repo-specific invariant rules.

Importing this package registers every rule with
:data:`repro.analysis.registry.RULE_REGISTRY`.
"""

from __future__ import annotations

from .api_consistency import ApiConsistencyRule
from .determinism import DeterminismRule
from .dtype_safety import DtypeSafetyRule
from .estimator_contract import EstimatorContractRule
from .float_equality import FloatEqualityRule
from .naming import MetricNameRule

__all__ = [
    "ApiConsistencyRule",
    "DeterminismRule",
    "DtypeSafetyRule",
    "EstimatorContractRule",
    "FloatEqualityRule",
    "MetricNameRule",
]
