"""REP003 — ``__all__`` is the public API and it must be real.

The reproduction's modules document the paper mapping in their public
surface: experiments import estimators by name, and docs/API.md is
generated from the same names.  This rule keeps ``__all__`` honest:

* every name exported via ``__all__`` must actually be defined (or
  imported) at module top level — a stale entry breaks ``import *`` and
  the docs build;
* every *public* top-level function/class must be listed in ``__all__``
  (or renamed with a leading underscore) so the API surface is explicit;
* every public top-level function/class must carry a docstring — the
  paper-to-code mapping lives in them.

Modules without ``__all__`` are only held to the docstring requirement.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..registry import FileContext, Finding, Rule, register_rule
from .common import has_docstring, iter_top_level_defs, string_list_literal

__all__ = ["ApiConsistencyRule"]


def _is_dunder_all_target(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "__all__"


def _find_dunder_all(tree: ast.Module) -> tuple[Optional[ast.stmt], Optional[list]]:
    """The ``__all__`` assignment node and its full static entry list.

    Follows the common mutation idioms — ``__all__.append("x")``,
    ``__all__.extend([...])``, ``__all__ += [...]`` — so modules that grow
    their export list after the definitions are not misread.  Returns
    ``(node, None)`` when any contribution is dynamic (a computed value):
    the rule then skips the export checks rather than guessing.
    """
    anchor: Optional[ast.stmt] = None
    exported: list[str] = []
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            _is_dunder_all_target(t) for t in node.targets
        ):
            entries = string_list_literal(node.value)
            if entries is None:
                return node, None
            anchor, exported = node, list(entries)
        elif isinstance(node, ast.AnnAssign) and _is_dunder_all_target(node.target):
            if node.value is None:
                continue
            entries = string_list_literal(node.value)
            if entries is None:
                return node, None
            anchor, exported = node, list(entries)
        elif isinstance(node, ast.AugAssign) and _is_dunder_all_target(node.target):
            entries = string_list_literal(node.value)
            if entries is None:
                return anchor or node, None
            exported.extend(entries)
        elif (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and _is_dunder_all_target(node.value.func.value)
            and node.value.func.attr in {"append", "extend"}
            and node.value.args
        ):
            argument = node.value.args[0]
            if node.value.func.attr == "append":
                if not (
                    isinstance(argument, ast.Constant)
                    and isinstance(argument.value, str)
                ):
                    return anchor or node, None
                exported.append(argument.value)
            else:
                entries = string_list_literal(argument)
                if entries is None:
                    return anchor or node, None
                exported.extend(entries)
    if anchor is None:
        return None, None
    return anchor, exported


def _top_level_bindings(tree: ast.Module) -> set:
    """Every name bound at module top level (defs, assigns, imports)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # Common guarded-definition idioms (TYPE_CHECKING, optional deps).
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    names.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            names.add(alias.asname or alias.name.split(".")[0])
    return names


@register_rule
class ApiConsistencyRule(Rule):
    """Keep ``__all__``, public defs, and docstrings in sync."""

    code = "REP003"
    name = "api-consistency"
    description = (
        "__all__ entries must exist; public top-level defs must be "
        "exported in __all__ and carry docstrings"
    )
    default_include = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        all_node, exported = _find_dunder_all(ctx.tree)
        bindings = _top_level_bindings(ctx.tree)
        has_star_import = any(
            isinstance(node, ast.ImportFrom)
            and any(alias.name == "*" for alias in node.names)
            for node in ctx.tree.body
        )

        if exported is not None and not has_star_import:
            for name in exported:
                if name not in bindings:
                    yield self.finding(
                        ctx,
                        all_node,
                        f"__all__ exports {name!r} but the module never "
                        "defines or imports it",
                    )

        for node in iter_top_level_defs(ctx.tree):
            if node.name.startswith("_"):
                continue
            if exported is not None and node.name not in exported:
                yield self.finding(
                    ctx,
                    node,
                    f"public {type(node).__name__.replace('Def', '').lower()} "
                    f"{node.name!r} is not listed in __all__; export it or "
                    "rename it with a leading underscore",
                )
            if not has_docstring(node):
                yield self.finding(
                    ctx,
                    node,
                    f"public {node.name!r} has no docstring; the paper-to-"
                    "code mapping is documented in docstrings",
                )
