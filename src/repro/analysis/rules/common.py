"""Shared AST utilities for the invariant rules.

The central primitive is :class:`ImportTable` + :func:`qualified_name`,
which together resolve an attribute/call expression like
``np.random.default_rng(...)`` to its canonical dotted name
``numpy.random.default_rng`` regardless of how the module was imported
(``import numpy as np``, ``from numpy import random``,
``from numpy.random import default_rng``, …).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutils import ImportTable, qualified_name

__all__ = [
    "ImportTable",
    "qualified_name",
    "walk_with_parents",
    "iter_top_level_defs",
    "string_list_literal",
    "has_docstring",
]


def walk_with_parents(tree: ast.AST) -> Iterator[tuple[ast.AST, ast.AST]]:
    """Yield ``(node, parent)`` pairs over the whole tree."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            yield child, parent


def iter_top_level_defs(
    tree: ast.Module,
) -> Iterator[ast.stmt]:
    """Top-level function/class definitions (including async functions)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield node


def string_list_literal(node: ast.expr) -> Optional[list[str]]:
    """The string entries of a list/tuple literal, or ``None`` if dynamic."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    values: list[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return values


def has_docstring(node: ast.AST) -> bool:
    """Whether a module/def/class node carries a docstring."""
    try:
        return ast.get_docstring(node, clean=False) is not None
    except TypeError:  # pragma: no cover - non-docstring node kinds
        return False
