"""Shared AST utilities for the invariant rules.

The central primitive is :class:`ImportTable` + :func:`qualified_name`,
which together resolve an attribute/call expression like
``np.random.default_rng(...)`` to its canonical dotted name
``numpy.random.default_rng`` regardless of how the module was imported
(``import numpy as np``, ``from numpy import random``,
``from numpy.random import default_rng``, …).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

__all__ = [
    "ImportTable",
    "qualified_name",
    "walk_with_parents",
    "iter_top_level_defs",
    "string_list_literal",
    "has_docstring",
]


class ImportTable:
    """Maps local names to the canonical dotted paths they were bound to."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b.c`` binds ``a`` to package ``a`` unless
                    # aliased, in which case the alias means the full path.
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative imports resolve within repro itself
                    module = "." * node.level + (node.module or "")
                else:
                    module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        """Canonicalize a source-level dotted name via the import aliases."""
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head, head)
        return f"{base}.{rest}" if rest else base


def qualified_name(
    node: ast.AST, imports: Optional[ImportTable] = None
) -> Optional[str]:
    """Dotted name of a ``Name``/``Attribute`` chain, else ``None``.

    With *imports*, the head segment is canonicalized through the file's
    import aliases.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    dotted = ".".join(reversed(parts))
    return imports.resolve(dotted) if imports else dotted


def walk_with_parents(tree: ast.AST) -> Iterator[tuple[ast.AST, ast.AST]]:
    """Yield ``(node, parent)`` pairs over the whole tree."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            yield child, parent


def iter_top_level_defs(
    tree: ast.Module,
) -> Iterator[ast.stmt]:
    """Top-level function/class definitions (including async functions)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield node


def string_list_literal(node: ast.expr) -> Optional[list[str]]:
    """The string entries of a list/tuple literal, or ``None`` if dynamic."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    values: list[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return values


def has_docstring(node: ast.AST) -> bool:
    """Whether a module/def/class node carries a docstring."""
    try:
        return ast.get_docstring(node, clean=False) is not None
    except TypeError:  # pragma: no cover - non-docstring node kinds
        return False
