"""REP004 — no bare ``==``/``!=`` against float expressions.

The estimators return floats assembled from long reduction chains; two
mathematically-equal quantities (e.g. a variance computed through the
profile evaluator vs the array evaluator) differ in the last ulps, so an
exact comparison encodes a latent flake.  Production code must compare
through ``math.isclose``/``numpy.isclose`` or restructure; tests are
exempt by configuration (they often pin exact literals on purpose).

Heuristics (AST-only, no type inference): an operand is *obviously float*
when it is a float literal, a true division, a call to ``float``/
``math.*``/``numpy`` float-returning reducers, or unary ± of one of those.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..registry import FileContext, Finding, Rule, register_rule
from .common import ImportTable, qualified_name

__all__ = ["FloatEqualityRule"]

#: Calls whose results are floats for comparison purposes.
_FLOAT_RETURNING = {
    "float",
    "math.sqrt",
    "math.exp",
    "math.log",
    "math.log2",
    "math.log10",
    "math.pow",
    "math.fsum",
    "math.hypot",
    "math.erf",
    "numpy.sqrt",
    "numpy.exp",
    "numpy.log",
    "numpy.mean",
    "numpy.std",
    "numpy.var",
    "numpy.float64",
}


def _is_float_expression(node: ast.expr, imports: ImportTable) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_expression(node.operand, imports)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Pow)):
            return _is_float_expression(node.left, imports) or _is_float_expression(
                node.right, imports
            )
        return False
    if isinstance(node, ast.Call):
        name = qualified_name(node.func, imports)
        return name in _FLOAT_RETURNING
    return False


@register_rule
class FloatEqualityRule(Rule):
    """Flag exact equality comparisons on float-typed expressions."""

    code = "REP004"
    name = "float-equality"
    description = (
        "bare ==/!= on float expressions is a latent flake; compare with "
        "math.isclose/numpy.isclose or restructure"
    )
    default_include = ("src",)
    default_exclude = ("tests",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_expression(left, imports) or _is_float_expression(
                    right, imports
                ):
                    token = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx,
                        node,
                        f"exact float comparison with {token!r}; use "
                        "math.isclose/numpy.isclose, or add a justified "
                        "suppression if exact equality is intended (e.g. "
                        "sentinel values)",
                    )
