"""REP002 — power sums and sketch accumulators must promote explicitly.

The frequency moments the paper's variance formulas consume (F₂…F₄ and
cross moments ``Σ fᵢᵃ gᵢᵇ``) overflow int32 — and for skewed Zipf data even
int64 — long before the stream is large.  Inside the frequency/variance/
sketch modules this rule therefore demands that

* array constructors never pick a *narrow* dtype (``int8/16/32``,
  ``uint*``, ``float16/32``) for counters or accumulators, and
* reductions over power expressions (``(f ** k).sum()`` and friends)
  state their accumulator dtype explicitly (``dtype=object`` for exact
  Python-int arithmetic, or ``np.int64``/``np.float64`` when the caller
  has proved the range), instead of inheriting numpy's platform default.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..registry import FileContext, Finding, Rule, register_rule
from .common import ImportTable, qualified_name

__all__ = ["DtypeSafetyRule"]

_NARROW_DTYPES = {
    "int8",
    "int16",
    "int32",
    "uint8",
    "uint16",
    "uint32",
    "uint64",
    "float16",
    "float32",
    "half",
    "single",
    "intc",
    "short",
}

_ARRAY_CONSTRUCTORS = {
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
    "numpy.full",
    "numpy.array",
    "numpy.asarray",
    "numpy.arange",
    "numpy.zeros_like",
    "numpy.ones_like",
    "numpy.empty_like",
    "numpy.full_like",
}

#: Reductions whose accumulator dtype matters for power sums.
_REDUCTION_METHODS = {"sum", "prod", "cumsum", "cumprod", "dot"}
_REDUCTION_FUNCS = {
    "numpy.sum",
    "numpy.prod",
    "numpy.cumsum",
    "numpy.cumprod",
    "numpy.dot",
}


def _narrow_dtype_name(node: ast.expr, imports: ImportTable):
    """The narrow-dtype token of a ``dtype=`` value, or ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        token = node.value.lstrip("<>=|")
        return token if token in _NARROW_DTYPES else None
    name = qualified_name(node, imports)
    if name is None:
        return None
    tail = name.rsplit(".", 1)[-1]
    if name.startswith("numpy.") and tail in _NARROW_DTYPES:
        return tail
    return None


def _contains_power(node: ast.expr) -> bool:
    """Whether the expression tree contains a ``**`` anywhere."""
    return any(
        isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Pow)
        for sub in ast.walk(node)
    )


def _has_dtype_kwarg(call: ast.Call) -> bool:
    return any(kw.arg == "dtype" for kw in call.keywords)


@register_rule
class DtypeSafetyRule(Rule):
    """Flag narrow dtypes and implicit-dtype power-sum reductions."""

    code = "REP002"
    name = "dtype-safety"
    description = (
        "power-sum/accumulator arithmetic must promote to int64/float64/"
        "object explicitly; narrow dtypes and implicit reduction dtypes "
        "overflow on large frequency vectors"
    )
    default_include = (
        "src/repro/frequency.py",
        "src/repro/variance",
        "src/repro/sketches",
        "src/repro/sampling",
        "src/repro/kernels",
    )
    # The native backend's ctypes buffer layer allocates uint64 hash and
    # int8 sign matrices (API dtypes, never accumulators); its counter
    # buffers stay float64, which the equivalence tests pin.
    default_exclude = ("src/repro/kernels/native.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, imports)

            # (a) narrow dtype handed to an array constructor or astype().
            is_constructor = name in _ARRAY_CONSTRUCTORS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            )
            if is_constructor:
                dtype_values = [
                    kw.value for kw in node.keywords if kw.arg == "dtype"
                ]
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"
                    and node.args
                ):
                    dtype_values.append(node.args[0])
                if name == "numpy.arange" and len(node.args) >= 4:
                    dtype_values.append(node.args[3])
                for value in dtype_values:
                    narrow = _narrow_dtype_name(value, imports)
                    if narrow is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"narrow dtype {narrow!r} in accumulator "
                            "context; frequency power sums overflow it — "
                            "promote to int64/float64 (or dtype=object "
                            "for exact moments)",
                        )

            # (b) reduction over a power expression with implicit dtype.
            is_reduction = name in _REDUCTION_FUNCS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _REDUCTION_METHODS
            )
            if is_reduction and not _has_dtype_kwarg(node):
                if name in _REDUCTION_FUNCS:
                    operand = node.args[0] if node.args else None
                else:
                    operand = node.func.value
                if operand is not None and _contains_power(operand):
                    yield self.finding(
                        ctx,
                        node,
                        "reduction over a power expression without an "
                        "explicit dtype=; numpy's default accumulator "
                        "overflows for F2..F4 on large/skewed frequency "
                        "vectors — pass dtype=object (exact) or "
                        "dtype=np.int64/np.float64",
                    )
