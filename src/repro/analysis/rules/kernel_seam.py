"""REP008 — sketch updates must route through the kernels backend seam.

PR 2 made every sketch update path go through
:func:`repro.kernels.get_backend`, so the reference, numpy, and native
backends stay bit-identical and the Monte-Carlo validation of the
paper's propositions holds on all of them.  A hand-rolled per-element
update inside ``src/repro/sketches/`` — a ``for`` loop poking
``self._counters[idx] += w``, or a direct ``numpy.add.at`` on sketch
state — silently forks the arithmetic from the backends and is exactly
the kind of drift the seam exists to prevent.

The rule flags, inside its target files (``src/repro/sketches`` by
default):

* any ``numpy.add.at(...)`` call — that *is* the reference backend's
  scatter-add, and outside :mod:`repro.kernels` it is always a bypass;
* an assignment or augmented assignment to a ``self.<attr>[...]``
  subscript inside a ``for``/``while`` loop, **unless** the enclosing
  function transitively reaches the backend seam (resolved over the
  project call graph via :meth:`~repro.analysis.resolve.ProjectGraph.reaches`)
  — a method that routes through ``get_backend()`` may still do
  per-element *setup* work around the kernel call.

The seam targets default to ``repro.kernels.get_backend`` (and its
re-export source) plus the fused multi-sketch entry point
``repro.kernels.fused_update`` — a function that routes its updates
through a fused plan is just as seam-compliant as one that calls
``get_backend()`` directly.  Override via the ``seam`` option in
``[tool.repro.analysis.rep008]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..registry import Finding, ProjectContext, ProjectRule, register_rule
from .common import qualified_name

__all__ = ["KernelSeamRule"]

#: Canonical names whose reachability marks a function as seam-routed.
_SEAM_TARGETS = (
    "repro.kernels.get_backend",
    "repro.kernels.backend.get_backend",
    "repro.kernels.fused_update",
    "repro.kernels.fused.fused_update",
)


def _subscript_self_target(node: ast.expr) -> Optional[str]:
    """``self.<attr>`` when *node* is a ``self.<attr>[...]`` store."""
    if not isinstance(node, ast.Subscript):
        return None
    base = node.value
    if (
        isinstance(base, ast.Attribute)
        and isinstance(base.value, ast.Name)
        and base.value.id == "self"
    ):
        return f"self.{base.attr}"
    return None


@register_rule
class KernelSeamRule(ProjectRule):
    """Flag per-element sketch updates that bypass the kernels backend."""

    code = "REP008"
    name = "kernel-seam"
    description = (
        "sketch update paths must route through repro.kernels.get_backend(); "
        "per-element loops and direct numpy.add.at calls fork the arithmetic "
        "from the backends"
    )
    default_include = ("src/repro/sketches",)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        seam_targets = tuple(
            project.options.get("seam", ())
        ) or _SEAM_TARGETS
        for rel_path in project.target_files:
            ctx = project.context(rel_path)
            module = graph.module_for_path(rel_path)
            if ctx is None or module is None:
                continue
            yield from self._check_module(
                rel_path, ctx.tree, module, graph, seam_targets
            )

    def _check_module(
        self, rel_path, tree, module, graph, seam_targets
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = qualified_name(node.func)
                if dotted is not None:
                    canonical = graph.canonical_in(module, dotted)
                    if canonical == "numpy.add.at":
                        yield self.finding_at(
                            rel_path,
                            node.lineno,
                            node.col_offset,
                            "direct numpy.add.at on sketch state bypasses the "
                            "kernels backend seam — use "
                            "get_backend().scatter_add() so all backends stay "
                            "bit-identical",
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(
                    rel_path, node, module, graph, seam_targets
                )

    def _check_function(
        self, rel_path, func_node, module, graph, seam_targets
    ) -> Iterator[Finding]:
        stores = list(self._loop_state_stores(func_node))
        if not stores:
            return
        fn_info = self._function_info(module, func_node)
        if fn_info is not None and any(
            graph.reaches(fn_info, target) for target in seam_targets
        ):
            return
        for store_node, target in stores:
            yield self.finding_at(
                rel_path,
                store_node.lineno,
                store_node.col_offset,
                f"per-element update to {target} inside a loop bypasses the "
                "kernels backend seam — route the update through "
                "repro.kernels.get_backend() so all backends stay "
                "bit-identical",
            )

    @staticmethod
    def _function_info(module, func_node):
        """The graph summary matching *func_node* (by name and line)."""
        for fn in module.functions.values():
            if fn.name == func_node.name and fn.lineno == func_node.lineno:
                return fn
        return None

    @staticmethod
    def _own_body_walk(node):
        """Walk a subtree without descending into nested function defs.

        Keeps each store attributed to exactly one function — the nested
        def is visited separately as its own function.
        """
        stack = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop()
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield child
            stack.extend(ast.iter_child_nodes(child))

    @classmethod
    def _loop_state_stores(cls, func_node):
        """``(node, "self.attr")`` pairs for subscript stores in loops.

        Deduplicated by node identity so a store inside nested loops is
        reported once.
        """
        seen: set = set()
        for node in cls._own_body_walk(func_node):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            for inner in cls._own_body_walk(node):
                if id(inner) in seen:
                    continue
                seen.add(id(inner))
                if isinstance(inner, ast.AugAssign):
                    target = _subscript_self_target(inner.target)
                    if target is not None:
                        yield inner, target
                elif isinstance(inner, ast.Assign):
                    for assign_target in inner.targets:
                        target = _subscript_self_target(assign_target)
                        if target is not None:
                            yield inner, target
