"""REP006 — observability names are static lowercase dotted literals.

The observability layer aggregates metrics and spans across processes by
*name*: the coordinator merges worker registries key-by-key, exporters
sort by name, and dashboards/tests address series by exact string.  A
name assembled at a call site (``obs.counter(f"rows.{relation}")``)
explodes the keyspace, defeats cross-process aggregation (each shard
invents its own series), and hides typos until export time.  Dynamic
dimensions belong in **labels** (``obs.counter("engine.rows.consumed",
relation=name)``), never in the name.

The rule inspects every ``.counter(...)`` / ``.gauge(...)`` /
``.histogram(...)`` / ``.span(...)`` attribute call and flags a name
argument that is

* an f-string (``JoinedStr``),
* string concatenation or ``%`` formatting (``BinOp``),
* a ``"...".format(...)`` call, or
* a string literal that fails the canonical grammar
  ``segment(.segment)+`` with ``segment = [a-z][a-z0-9_]*`` (the same
  pattern :func:`repro.observability.validate_metric_name` enforces at
  runtime — this rule catches it before the code runs).

Non-literal names that are plain variables are allowed (the runtime
check still guards them); tests are excluded by configuration because
they exercise the validator with deliberately bad names.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..registry import FileContext, Finding, Rule, register_rule

__all__ = ["MetricNameRule"]

#: Instrument-factory attribute names whose first argument is a metric
#: or span name.
_INSTRUMENT_METHODS = frozenset({"counter", "gauge", "histogram", "span"})

#: Mirror of ``repro.observability.metrics._NAME_PATTERN`` (kept literal
#: here so the analysis package stays import-free of the code it lints).
_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


def _name_argument(node: ast.Call) -> Optional[ast.expr]:
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


def _dynamic_build(node: ast.expr) -> Optional[str]:
    """How the expression assembles a string at runtime, or ``None``."""
    if isinstance(node, ast.JoinedStr):
        return "an f-string"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        for side in (node.left, node.right):
            if isinstance(side, ast.Constant) and isinstance(side.value, str):
                return "string concatenation/formatting"
            if isinstance(side, ast.JoinedStr):
                return "string concatenation/formatting"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
        and isinstance(node.func.value, ast.Constant)
        and isinstance(node.func.value.value, str)
    ):
        return "str.format"
    return None


@register_rule
class MetricNameRule(Rule):
    """Flag dynamic or malformed metric/span names at instrument call sites."""

    code = "REP006"
    name = "metric-names"
    description = (
        "metric and span names must be static lowercase dotted literals; "
        "put dynamic dimensions in labels, not the name"
    )
    default_include = ("src",)
    default_exclude = ("tests",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _INSTRUMENT_METHODS:
                continue
            argument = _name_argument(node)
            if argument is None:
                continue
            how = _dynamic_build(argument)
            if how is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{node.func.attr}() name built with {how}; names must "
                    "be static literals — move the dynamic part into a "
                    "label (e.g. counter(\"engine.rows.consumed\", "
                    "relation=name))",
                )
                continue
            if isinstance(argument, ast.Constant) and isinstance(
                argument.value, str
            ):
                if not _NAME_PATTERN.match(argument.value):
                    yield self.finding(
                        ctx,
                        node,
                        f"{node.func.attr}() name {argument.value!r} is not "
                        "a lowercase dotted name (segment(.segment)+ with "
                        "segment = [a-z][a-z0-9_]*)",
                    )
