"""REP010 — checkpoint save and restore schemas must stay symmetric.

The resilience layer (PR 3) round-trips state as plain dicts: a
``checkpoint_state()`` / ``save()`` side writes keys, a
``from_checkpoint_state()`` / ``recover()`` / ``load()`` side reads them
back.  The two sides live in the same class but drift independently — a
key written and never read is silent state loss on recovery; a key read
but never written is a ``KeyError`` that only fires mid-disaster, during
an actual recover.

For every class among the rule's target files that has **both** a
save-side method (name containing ``state``/``save``/``checkpoint``/
``snapshot``) and a restore-side method (name starting ``from_`` or
containing ``restore``/``recover``/``load`` — classified first, so
``from_checkpoint_state`` lands on the restore side), the rule collects

* **written keys**: string keys of dict literals and
  ``x["key"] = ...`` subscript stores in save-side bodies;
* **read keys**: ``x["key"]`` subscript loads, ``.get("key")`` /
  ``.pop("key")`` calls, and ``"key" in x`` membership tests in
  restore-side bodies;

and reports the asymmetric difference both ways.  Classes where either
side uses no literal keys at all are skipped — the schema is dynamic and
cannot be checked statically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..registry import Finding, ProjectContext, ProjectRule, register_rule

__all__ = ["CheckpointSchemaRule"]

_RESTORE_TOKENS = ("restore", "recover", "load")
_SAVE_TOKENS = ("state", "save", "checkpoint", "snapshot")


def _classify(method_name: str):
    """``"restore"`` / ``"save"`` / ``None`` for one method name."""
    lowered = method_name.lower()
    if lowered.startswith("from_") or any(
        token in lowered for token in _RESTORE_TOKENS
    ):
        return "restore"
    if any(token in lowered for token in _SAVE_TOKENS):
        return "save"
    return None


def _written_keys(method: ast.AST) -> dict:
    """Literal keys the save side writes, mapped to their line numbers."""
    keys: dict = {}
    for node in ast.walk(method):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.setdefault(key.value, key.lineno)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.setdefault(target.slice.value, target.lineno)
    return keys


def _read_keys(method: ast.AST) -> dict:
    """Literal keys the restore side reads, mapped to their line numbers."""
    keys: dict = {}
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.setdefault(node.slice.value, node.lineno)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("get", "pop")
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.setdefault(node.args[0].value, node.lineno)
        elif (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.ops[0], ast.In)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.left.value, str)
        ):
            keys.setdefault(node.left.value, node.lineno)
    return keys


@register_rule
class CheckpointSchemaRule(ProjectRule):
    """Flag save/restore key sets that have drifted apart."""

    code = "REP010"
    name = "checkpoint-schema"
    description = (
        "keys written by checkpoint save paths must be read by the "
        "matching restore/recover paths and vice versa"
    )
    default_include = ("src",)
    default_exclude = ("tests",)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for rel_path in project.target_files:
            ctx = project.context(rel_path)
            if ctx is None:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(rel_path, node)

    def _check_class(
        self, rel_path: str, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        save_methods = []
        restore_methods = []
        for stmt in class_node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            side = _classify(stmt.name)
            if side == "save":
                save_methods.append(stmt)
            elif side == "restore":
                restore_methods.append(stmt)
        if not save_methods or not restore_methods:
            return
        written: dict = {}
        write_anchor: dict = {}
        for method in save_methods:
            for key, lineno in _written_keys(method).items():
                written.setdefault(key, lineno)
                write_anchor.setdefault(key, method)
        read: dict = {}
        read_anchor: dict = {}
        for method in restore_methods:
            for key, lineno in _read_keys(method).items():
                read.setdefault(key, lineno)
                read_anchor.setdefault(key, method)
        # No literal keys on one side = dynamic schema; nothing provable.
        if not written or not read:
            return
        restore_names = ", ".join(sorted(m.name for m in restore_methods))
        save_names = ", ".join(sorted(m.name for m in save_methods))
        for key in sorted(set(written) - set(read)):
            anchor = write_anchor[key]
            yield self.finding_at(
                rel_path,
                written[key],
                anchor.col_offset,
                f"{class_node.name}.{anchor.name} writes checkpoint key "
                f"{key!r} that no restore-side method ({restore_names}) "
                "reads — the value is silently lost on recovery",
            )
        for key in sorted(set(read) - set(written)):
            anchor = read_anchor[key]
            yield self.finding_at(
                rel_path,
                read[key],
                anchor.col_offset,
                f"{class_node.name}.{anchor.name} reads checkpoint key "
                f"{key!r} that no save-side method ({save_names}) writes "
                "— recovery will fail or fall back on a key that never "
                "exists",
            )
