"""REP011 — retry loops must use :class:`BackoffPolicy`, not bare sleeps.

The resilience layer centralizes every retry delay in
``repro.resilience.distributed.BackoffPolicy`` (seeded jitter, cap,
budget).  A retry loop that sleeps a hard-coded literal re-introduces the
ad-hoc schedules the policy replaced: it cannot be tuned from one place,
never participates in the backoff budget, and — with a zero or constant
delay — hammers the failing resource in lock-step across workers.
Likewise a ``while True`` retry loop whose handlers neither ``raise`` nor
``break`` can spin forever on a persistent fault.

Heuristics (AST-only):

* a ``time.sleep``/``sleep`` call whose argument expression contains a
  non-zero numeric literal, lexically inside a loop that also contains a
  ``try``/``except`` (the shape of a retry loop) — delays there must come
  from a :class:`BackoffPolicy` schedule, threaded in as a variable;
* a ``while True`` loop in which *no* ``try``'s except handlers contain
  a ``raise``/``break``/``return`` — an unbounded retry with no
  exhaustion path.  One terminating handler anywhere in the loop counts
  as the exhaustion path (nested fallback ``try`` blocks that merely
  reset state are then legitimate).

Bound delay *variables* (``sleep(delay)``) are fine: the rule polices
where the number comes from, not the sleep itself.  Tests are exempt by
configuration (they pin tiny literal waits on purpose).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..registry import FileContext, Finding, Rule, register_rule
from .common import ImportTable, qualified_name

__all__ = ["BackoffDisciplineRule"]

#: Dotted names treated as blocking sleeps.
_SLEEP_NAMES = {"sleep", "time.sleep"}


def _contains_numeric_literal(node: ast.expr) -> bool:
    """Whether *node* contains a non-zero int/float literal (bools excluded)."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Constant):
            continue
        value = sub.value
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)) and value != 0:
            return True
    return False


def _is_sleep_call(node: ast.Call, imports: ImportTable) -> bool:
    name = qualified_name(node.func, imports)
    if name in _SLEEP_NAMES:
        return True
    # ``from time import sleep as pause`` resolves through the import
    # table above; a bare unresolved ``sleep`` Name is the fallback.
    return isinstance(node.func, ast.Name) and node.func.id == "sleep"


def _handler_terminates(handler: ast.ExceptHandler) -> bool:
    """Whether an except handler can leave the retry loop (raise/break/return)."""
    for sub in ast.walk(handler):
        if isinstance(sub, (ast.Raise, ast.Break, ast.Return)):
            return True
    return False


def _loop_has_try(loop: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Try) for sub in ast.walk(loop) if sub is not loop
    )


def _is_while_true(node: ast.While) -> bool:
    return isinstance(node.test, ast.Constant) and node.test.value is True


@register_rule
class BackoffDisciplineRule(Rule):
    """Flag literal sleeps and unbounded ``while True`` in retry loops."""

    code = "REP011"
    name = "backoff-discipline"
    description = (
        "retry loops must draw delays from a BackoffPolicy schedule and "
        "have an exhaustion path; no literal sleeps, no unbounded retries"
    )
    default_include = ("src",)
    default_exclude = ("tests",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportTable(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.While, ast.For)):
                continue
            if not _loop_has_try(node):
                continue
            yield from self._check_retry_loop(ctx, node, imports)

    # ------------------------------------------------------------------

    def _check_retry_loop(
        self, ctx: FileContext, loop: ast.AST, imports: ImportTable
    ) -> Iterator[Finding]:
        # Heuristic (a): literal-bearing sleeps anywhere in the loop body.
        for sub in ast.walk(loop):
            if not (isinstance(sub, ast.Call) and _is_sleep_call(sub, imports)):
                continue
            if any(_contains_numeric_literal(arg) for arg in sub.args):
                yield self.finding(
                    ctx,
                    sub,
                    "literal sleep inside a retry loop; draw the delay "
                    "from a BackoffPolicy schedule (repro.resilience."
                    "distributed) so cap/budget/jitter apply",
                )
        # Heuristic (b): while True with purely-resumptive handlers.  A
        # single terminating handler anywhere in the loop is taken as the
        # exhaustion path (nested fallback ``try`` blocks may then merely
        # reset state).
        if not (isinstance(loop, ast.While) and _is_while_true(loop)):
            return
        handlers = [
            handler
            for sub in ast.walk(loop)
            if isinstance(sub, ast.Try)
            for handler in sub.handlers
        ]
        if handlers and not any(_handler_terminates(h) for h in handlers):
            yield self.finding(
                ctx,
                loop,
                "unbounded 'while True' retry: no except handler can "
                "raise or break, so a persistent fault loops forever; "
                "count failures and re-raise on exhaustion",
            )
