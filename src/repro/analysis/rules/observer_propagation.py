"""REP009 — ``observer=`` must propagate through every call chain.

The observability layer (PR 5) threads a single ``Observer`` through
every seam: engine → runtime → shards → merge.  The failure mode is
silent — a function that *accepts* ``observer=`` but calls an
observer-accepting callee without forwarding it doesn't crash, it just
drops that subtree's spans and metrics on the floor, and the trace
quietly loses a branch.

This is the call-graph rule: for every project function with an
``observer`` parameter, every call site inside it is resolved through
:class:`~repro.analysis.resolve.ProjectGraph` (module functions,
``self.`` methods via the class hierarchy, and class constructors —
including synthesized dataclass ``__init__``).  If the resolved callee
accepts ``observer`` and the call passes it neither by keyword nor
positionally (nor via ``**kwargs``), the call is flagged.

Only *provable* drops are reported: calls whose callee cannot be
resolved inside the project, or that spread ``*args``, pass.  A callee
that genuinely must not observe can be suppressed with a justified
``# repro: noqa(REP009)``.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..graph import ClassInfo, FunctionInfo
from ..registry import Finding, ProjectContext, ProjectRule, register_rule

__all__ = ["ObserverPropagationRule"]

_PARAM = "observer"


@register_rule
class ObserverPropagationRule(ProjectRule):
    """Flag observer-accepting callees invoked without the observer."""

    code = "REP009"
    name = "observer-propagation"
    description = (
        "a function accepting observer= that calls an observer-accepting "
        "callee without forwarding it silently drops the callee's spans "
        "and metrics"
    )
    default_include = ("src",)
    default_exclude = ("tests",)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        for rel_path in project.target_files:
            module = graph.module_for_path(rel_path)
            if module is None:
                continue
            for fn in module.functions.values():
                if not fn.accepts(_PARAM):
                    continue
                for site in graph.calls_from(module.name, fn.qualname):
                    dropped = self._dropped_callee(graph, site)
                    if dropped is None:
                        continue
                    yield self.finding_at(
                        rel_path,
                        site.lineno,
                        site.col,
                        f"'{fn.qualname}' accepts {_PARAM}= but calls "
                        f"'{dropped}' (which accepts {_PARAM}=) without "
                        "forwarding it — the callee's spans and metrics "
                        f"will be lost; pass {_PARAM}={_PARAM} through",
                    )

    @staticmethod
    def _dropped_callee(graph, site) -> Optional[str]:
        """Display name of the callee dropping the observer, or ``None``."""
        if _PARAM in site.keywords or site.has_star_kwargs:
            return None
        target = graph.resolve_call(site)
        callee: Optional[FunctionInfo] = None
        bound = False
        display = site.callee
        if isinstance(target, FunctionInfo):
            callee = target
            # ``self.method(...)`` / ``cls.method(...)`` bind the first
            # positional implicitly; ``Class.method(...)`` does not.
            bound = site.callee.split(".", 1)[0] in ("self", "cls")
        elif isinstance(target, ClassInfo):
            callee = graph.constructor(target)
            bound = True  # ``self`` is implicit in a constructor call
            display = target.name
        if callee is None or not callee.accepts(_PARAM):
            return None
        index = callee.positional_index(_PARAM)
        if index is not None:
            effective = site.nargs + (1 if bound else 0)
            if effective > index:
                return None  # covered positionally
            if site.has_star_args:
                return None  # cannot prove the spread misses it
        return display
