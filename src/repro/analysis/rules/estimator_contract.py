"""REP005 — sketch subclasses must honor the :class:`Sketch` contract.

Estimates across sketches are only meaningful when both sides share hash/ξ
families (same seed) and shape — the whole point of
``Sketch.check_compatible``.  A subclass that implements ``inner_product``
or overrides ``merge`` without (transitively) calling ``check_compatible``
silently produces garbage join estimates when handed a foreign sketch.
The rule also requires the full abstract interface so a partially-
implemented sketch fails review rather than failing at runtime.

The transitive part matters in practice: ``AgmsSketch.inner_product``
delegates to ``row_inner_products``, which performs the check — so the
rule builds a small per-class ``self.*`` call graph and asks whether
``check_compatible`` is reachable from the override.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..registry import FileContext, Finding, Rule, register_rule

__all__ = ["EstimatorContractRule"]

_REQUIRED_METHODS = (
    "update",
    "second_moment",
    "inner_product",
    "copy_empty",
    "_state",
)

_CHECKED_METHODS = ("inner_product", "merge")


def _base_names(cls: ast.ClassDef) -> set:
    names: set[str] = set()
    for base in cls.bases:
        if isinstance(base, ast.Attribute):
            names.add(base.attr)
        elif isinstance(base, ast.Name):
            names.add(base.id)
    return names


def _self_calls(func: ast.FunctionDef) -> set:
    """Methods invoked as ``self.<name>(...)``, plus ``super:<name>`` markers."""
    called: set[str] = set()
    for node in ast.walk(func):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        receiver = node.func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            called.add(node.func.attr)
        elif (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
        ):
            called.add(f"super:{node.func.attr}")
    return called


#: Callees that terminate the search: the check itself, or a delegation to a
#: base-class method that performs it (Sketch.merge / Sketch.check_compatible).
_SATISFYING_CALLEES = {
    "check_compatible",
    "super:check_compatible",
    "super:merge",
    "super:inner_product",
}


def _reaches_check(start: str, call_graph: dict) -> bool:
    """Whether ``check_compatible`` is reachable from *start* in the class."""
    seen: set[str] = set()
    frontier = [start]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        for callee in call_graph.get(current, set()):
            if callee in _SATISFYING_CALLEES:
                return True
            if not callee.startswith("super:"):
                frontier.append(callee)
    return False


@register_rule
class EstimatorContractRule(Rule):
    """Enforce the Sketch interface and compatibility checks."""

    code = "REP005"
    name = "estimator-contract"
    description = (
        "Sketch subclasses must implement the full interface and route "
        "inner_product/merge through check_compatible"
    )
    default_include = ("src",)
    default_exclude = ("src/repro/sketches/base.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        base_class = ctx.options.get("base_class", "Sketch")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name == base_class or base_class not in _base_names(node):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            is_abstract = any(
                isinstance(dec, ast.Name)
                and dec.id in {"abstractmethod", "ABC"}
                for method in methods.values()
                for dec in method.decorator_list
            ) or "ABC" in _base_names(node)
            if not is_abstract:
                for required in _REQUIRED_METHODS:
                    if required not in methods:
                        yield self.finding(
                            ctx,
                            node,
                            f"sketch class {node.name!r} does not implement "
                            f"{required!r} from the Sketch interface "
                            "(sketches/base.py)",
                        )

            call_graph = {
                name: _self_calls(method) for name, method in methods.items()
            }
            for checked in _CHECKED_METHODS:
                method = methods.get(checked)
                if method is None:
                    continue  # inherited implementation already checks
                if not _reaches_check(checked, call_graph):
                    yield self.finding(
                        ctx,
                        method,
                        f"{node.name}.{checked} never calls "
                        "check_compatible (directly or via a helper); "
                        "estimates across incompatible sketches are "
                        "meaningless",
                    )
