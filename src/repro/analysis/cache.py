"""Content-hash incremental cache for the analyzer.

Re-running the checker over an unchanged tree should cost file hashing,
not re-analysis.  The cache keys every entry on **content**, never on
mtimes:

* a *per-file* entry stores one file's post-suppression per-file-rule
  findings, keyed by the SHA-256 of its source bytes;
* a *project* entry stores the whole-program (``ProjectRule``) findings,
  keyed by the tree hash — the SHA-256 over every analyzed file's
  ``(rel_path, sha)`` pair — because a project finding in one file can be
  caused by an edit in another, so any changed file invalidates them all;
* the entire cache is scoped by a **fingerprint** combining the cache
  schema version, every registered rule's ``(code, version, class)``,
  the resolved configuration, and the selected rule set.  Editing a
  rule, bumping its ``version``, changing ``pyproject.toml``, or running
  with a different ``--select``/``--ignore`` set starts from an empty
  cache instead of serving stale findings.

The on-disk form is one JSON index per cache directory, written
atomically (temp file + ``os.replace``).  A missing, unreadable, or
mismatched index is treated as empty — the cache can only ever trade
speed, never correctness.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Optional

from .registry import Finding, all_rules

__all__ = [
    "AnalysisCache",
    "CACHE_SCHEMA_VERSION",
    "file_sha",
    "ruleset_fingerprint",
    "tree_sha",
]

#: Bumped whenever the cache layout (or the meaning of an entry) changes.
CACHE_SCHEMA_VERSION = 1

_INDEX_NAME = "repro-analysis-cache.json"


def file_sha(source: str) -> str:
    """Content hash of one source file (the per-file cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def tree_sha(shas: dict) -> str:
    """Content hash of the whole tree (the project-entry cache key)."""
    digest = hashlib.sha256()
    for rel_path in sorted(shas):
        digest.update(f"{rel_path}\x00{shas[rel_path]}\x01".encode("utf-8"))
    return digest.hexdigest()


def _config_token(config) -> str:
    rules = {
        code: {
            "enabled": rc.enabled,
            "severity": rc.severity.value if rc.severity else None,
            "include": list(rc.include),
            "exclude": list(rc.exclude),
            "options": {k: repr(v) for k, v in sorted(rc.options.items())},
        }
        for code, rc in sorted(config.rules.items())
    }
    return json.dumps(
        {
            "paths": list(config.paths),
            "exclude": list(config.exclude),
            "rules": rules,
        },
        sort_keys=True,
    )


def ruleset_fingerprint(config, selected: Optional[Iterable] = None) -> str:
    """The cache scope: schema + rules + config + selection, hashed."""
    rules = [
        (rule.code, rule.version, f"{type(rule).__module__}.{type(rule).__name__}")
        for rule in all_rules()
    ]
    token = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "rules": rules,
            "config": _config_token(config),
            "selected": sorted(selected) if selected is not None else "*",
        },
        sort_keys=True,
    )
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class _Entry:
    """One cached result: findings plus the suppression count."""

    findings: list
    suppressed: int


class AnalysisCache:
    """The per-directory incremental cache (see module docstring)."""

    def __init__(self, directory, fingerprint: str) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self._files: dict = {}
        self._project: dict = {}
        self._dirty = False
        self._load()

    # ------------------------------------------------------------------
    # Loading / saving
    # ------------------------------------------------------------------

    @property
    def index_path(self) -> Path:
        """Where the JSON index lives inside the cache directory."""
        return self.directory / _INDEX_NAME

    def _load(self) -> None:
        try:
            payload = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return
        if payload.get("fingerprint") != self.fingerprint:
            return
        files = payload.get("files")
        if isinstance(files, dict):
            self._files = files
        project = payload.get("project")
        if isinstance(project, dict):
            self._project = project

    def save(self) -> None:
        """Atomically persist the index (no-op when nothing changed)."""
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "fingerprint": self.fingerprint,
                "files": self._files,
                "project": self._project,
            },
            sort_keys=True,
        )
        tmp = self.index_path.with_suffix(".tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, self.index_path)
        self._dirty = False

    # ------------------------------------------------------------------
    # Per-file entries
    # ------------------------------------------------------------------

    def get_file(self, rel_path: str, sha: str) -> Optional[_Entry]:
        """The cached per-file result, or ``None`` on any mismatch."""
        entry = self._files.get(rel_path)
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            self.misses += 1
            return None
        try:
            findings = [
                Finding.from_dict(f) for f in entry.get("findings", [])
            ]
            suppressed = int(entry.get("suppressed", 0))
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return _Entry(findings=findings, suppressed=suppressed)

    def put_file(
        self, rel_path: str, sha: str, findings, suppressed: int
    ) -> None:
        """Record one file's per-file-rule outcome."""
        self._files[rel_path] = {
            "sha": sha,
            "findings": [f.to_dict() for f in findings],
            "suppressed": int(suppressed),
        }
        self._dirty = True

    # ------------------------------------------------------------------
    # Project entry
    # ------------------------------------------------------------------

    def get_project(self, tree_key: str) -> Optional[_Entry]:
        """The cached whole-program result, or ``None`` on any mismatch."""
        if self._project.get("tree") != tree_key:
            self.misses += 1
            return None
        try:
            findings = [
                Finding.from_dict(f)
                for f in self._project.get("findings", [])
            ]
            suppressed = int(self._project.get("suppressed", 0))
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return _Entry(findings=findings, suppressed=suppressed)

    def put_project(self, tree_key: str, findings, suppressed: int) -> None:
        """Record the whole-program pass outcome for this tree hash."""
        self._project = {
            "tree": tree_key,
            "findings": [f.to_dict() for f in findings],
            "suppressed": int(suppressed),
        }
        self._dirty = True

    def __repr__(self) -> str:
        return (
            f"AnalysisCache({str(self.directory)!r}, files={len(self._files)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
