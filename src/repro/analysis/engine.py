"""Analysis driver: file discovery, suppressions, and rule dispatch.

Suppression syntax
------------------
Append a comment to the offending line::

    rng = np.random.default_rng()          # repro: noqa(REP001)
    x = a.sum() == b.sum()                 # repro: noqa(REP002, REP004)
    anything_goes()                        # repro: noqa

``# repro: noqa`` with no argument suppresses every rule on that line; the
parenthesized form suppresses only the listed codes.  Suppressions are
per-line (matched against the finding's reported line).
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path
from typing import Iterable, Optional

from .config import AnalysisConfig, load_config
from .registry import FileContext, Finding, Severity, all_rules

__all__ = [
    "AnalysisResult",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "discover_files",
    "parse_suppressions",
]

_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\(\s*(?P<codes>[A-Z0-9,\s]*?)\s*\))?",
    re.IGNORECASE,
)


@dataclasses.dataclass
class AnalysisResult:
    """Findings plus bookkeeping from one analyzer run."""

    findings: list
    files_checked: int
    suppressed: int = 0

    @property
    def errors(self) -> list:
        """Findings at :attr:`Severity.ERROR`."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        """0 clean / 1 findings — what the CLI and CI key off."""
        return 1 if self.findings else 0


def parse_suppressions(source: str) -> dict:
    """Map line number -> set of suppressed codes (empty set = all rules)."""
    suppressions: dict[int, set] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_PATTERN.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[lineno] = set()
        else:
            suppressions[lineno] = {
                code.strip().upper() for code in codes.split(",") if code.strip()
            }
    return suppressions


def _is_suppressed(finding: Finding, suppressions: dict) -> bool:
    codes = suppressions.get(finding.line)
    if codes is None:
        return False
    return not codes or finding.code in codes


def analyze_source(
    source: str,
    rel_path: str,
    config: Optional[AnalysisConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> AnalysisResult:
    """Analyze one in-memory source file (the unit tests' entry point)."""
    config = config or AnalysisConfig()
    selected = set(select) if select is not None else None
    try:
        base_ctx = FileContext.from_source(source, rel_path)
        suppressions = parse_suppressions(source)
        findings: list[Finding] = []
        suppressed = 0
        for rule in all_rules():
            if selected is not None and rule.code not in selected:
                continue
            rule_config = config.rule_config(rule.code)
            # Fall back to rule defaults when the config carries no paths
            # (e.g. a bare AnalysisConfig built in tests).
            include = rule_config.include or rule.default_include
            exclude = rule_config.exclude or rule.default_exclude
            effective = dataclasses.replace(
                rule_config, include=include, exclude=exclude
            )
            if not effective.applies_to(rel_path):
                continue
            ctx = dataclasses.replace(base_ctx, options=rule_config.options)
            severity = config.severity_for(rule.code)
            for finding in rule.check(ctx):
                finding = dataclasses.replace(finding, severity=severity)
                if _is_suppressed(finding, suppressions):
                    suppressed += 1
                else:
                    findings.append(finding)
        findings.sort()
        return AnalysisResult(
            findings=findings, files_checked=1, suppressed=suppressed
        )
    except SyntaxError as exc:
        finding = Finding(
            path=rel_path,
            line=exc.lineno or 1,
            column=(exc.offset or 1) - 1,
            code="REP000",
            message=f"file does not parse: {exc.msg}",
            severity=Severity.ERROR,
        )
        return AnalysisResult(findings=[finding], files_checked=1)


def analyze_file(
    path: Path,
    root: Path,
    config: Optional[AnalysisConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> AnalysisResult:
    """Analyze one on-disk file, reporting paths relative to *root*."""
    rel_path = path.resolve().relative_to(root.resolve()).as_posix()
    source = path.read_text(encoding="utf-8")
    return analyze_source(source, rel_path, config=config, select=select)


def discover_files(
    paths: Iterable[Path], root: Path, exclude: Iterable[str]
) -> list:
    """Expand *paths* into the sorted list of ``.py`` files to analyze."""
    from .config import path_matches

    files: set[Path] = set()
    root = root.resolve()
    for path in paths:
        path = Path(path)
        if not path.is_absolute():
            path = root / path
        if path.is_file() and path.suffix == ".py":
            files.add(path.resolve())
        elif path.is_dir():
            files.update(p.resolve() for p in path.rglob("*.py"))
    kept = []
    for path in sorted(files):
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            continue  # outside the analysis root
        if not path_matches(rel, exclude):
            kept.append(path)
    return kept


def analyze_paths(
    paths: Optional[Iterable] = None,
    root: Optional[Path] = None,
    config: Optional[AnalysisConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> AnalysisResult:
    """Analyze a tree: the library entry point behind the CLI and tests."""
    root = Path(root) if root is not None else Path.cwd()
    if config is None:
        config = load_config(root)
    targets = [Path(p) for p in paths] if paths else list(config.paths)
    files = discover_files(targets, root, config.exclude)
    findings: list[Finding] = []
    files_checked = 0
    suppressed = 0
    for path in files:
        result = analyze_file(path, root, config=config, select=select)
        findings.extend(result.findings)
        files_checked += result.files_checked
        suppressed += result.suppressed
    findings.sort()
    return AnalysisResult(
        findings=findings, files_checked=files_checked, suppressed=suppressed
    )
