"""Analysis driver: discovery, suppressions, two-pass rule dispatch.

The engine runs in two passes:

1. **Per-file** — every file is parsed and the per-file :class:`Rule`
   objects run on it in isolation.  This pass is embarrassingly parallel
   (``jobs=N`` fans it out over a process pool) and cacheable per file
   (content hash; see :mod:`repro.analysis.cache`).
2. **Whole-program** — the parsed modules are summarized
   (:func:`repro.analysis.graph.summarize_module`) and stitched into a
   :class:`repro.analysis.resolve.ProjectGraph`; the
   :class:`ProjectRule` objects then run once over the whole tree.  This
   pass is cached on the tree hash, because a cross-module finding in
   one file can be caused by an edit in another.

Suppression syntax
------------------
Append a comment to the offending line::

    rng = np.random.default_rng()          # repro: noqa(REP001)
    x = a.sum() == b.sum()                 # repro: noqa(REP002, REP004)
    anything_goes()                        # repro: noqa

``# repro: noqa`` with no argument suppresses every rule on that line; the
parenthesized form suppresses only the listed codes.  Suppressions are
per-line (matched against the finding's reported line) — with one
widening: a suppression on *any* physical line of a multi-line **simple**
statement (a call spanning several lines, a long assignment, …) covers
the whole statement, because rules report such findings at the
statement's first line while the comment naturally lands on the last.
Compound statements (``def``, ``if``, ``for``, …) are *not* widened, so
a trailing comment inside a function body never suppresses the whole
body.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Iterable, Optional

from .cache import AnalysisCache, file_sha, ruleset_fingerprint, tree_sha
from .config import AnalysisConfig, load_config
from .graph import summarize_module
from .registry import (
    FileContext,
    Finding,
    ProjectContext,
    Severity,
    all_rules,
    file_rules,
    project_rules,
)
from .resolve import ProjectGraph

__all__ = [
    "AnalysisResult",
    "analyze_source",
    "analyze_sources",
    "analyze_file",
    "analyze_paths",
    "discover_files",
    "parse_suppressions",
    "effective_suppressions",
]

_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\(\s*(?P<codes>[A-Z0-9,\s]*?)\s*\))?",
    re.IGNORECASE,
)

#: Statement types whose multi-line spans a trailing noqa comment covers.
#: Deliberately only *simple* statements — widening a compound statement
#: (FunctionDef, If, For, …) would let one comment mute its entire body.
_SIMPLE_STATEMENTS = (
    ast.Expr,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
)


@dataclasses.dataclass
class AnalysisResult:
    """Findings plus bookkeeping from one analyzer run."""

    findings: list
    files_checked: int
    suppressed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def errors(self) -> list:
        """Findings at :attr:`Severity.ERROR`."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        """0 clean / 1 findings — what the CLI and CI key off."""
        return 1 if self.findings else 0


def parse_suppressions(source: str) -> dict:
    """Map line number -> set of suppressed codes (empty set = all rules)."""
    suppressions: dict[int, set] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_PATTERN.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[lineno] = set()
        else:
            suppressions[lineno] = {
                code.strip().upper() for code in codes.split(",") if code.strip()
            }
    return suppressions


def effective_suppressions(
    source: str, tree: Optional[ast.Module] = None
) -> dict:
    """Per-line suppressions, widened across multi-line simple statements.

    A rule reports a finding for ``pool.submit(\\n  bad,\\n)`` at the
    statement's *first* line, but the natural place for the comment is the
    *last*.  For every multi-line simple statement, suppressions found on
    any of its physical lines are merged and applied to all of them.
    """
    base = parse_suppressions(source)
    if tree is None:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return base
    expanded = {line: set(codes) for line, codes in base.items()}
    for node in ast.walk(tree):
        if not isinstance(node, _SIMPLE_STATEMENTS):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if end <= node.lineno:
            continue
        span = range(node.lineno, end + 1)
        hits = [base[line] for line in span if line in base]
        if not hits:
            continue
        blanket = any(not codes for codes in hits)
        merged: set = set().union(*hits)
        for line in span:
            existing = expanded.get(line)
            if blanket or (existing is not None and not existing):
                expanded[line] = set()
            elif existing is None:
                expanded[line] = set(merged)
            else:
                expanded[line] = existing | merged
    return expanded


def _is_suppressed(finding: Finding, suppressions: dict) -> bool:
    codes = suppressions.get(finding.line)
    if codes is None:
        return False
    return not codes or finding.code in codes


def _selected_codes(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> Optional[set]:
    """The final code set, or ``None`` for "every registered rule"."""
    if select is None and ignore is None:
        return None
    codes = (
        set(select)
        if select is not None
        else {rule.code for rule in all_rules()}
    )
    if ignore:
        codes -= set(ignore)
    return codes


def _effective_rule_config(rule, config: AnalysisConfig):
    """Rule config with include/exclude falling back to rule defaults."""
    rule_config = config.rule_config(rule.code)
    include = rule_config.include or rule.default_include
    exclude = rule_config.exclude or rule.default_exclude
    return rule_config, dataclasses.replace(
        rule_config, include=include, exclude=exclude
    )


def _run_file_rules(
    base_ctx: FileContext,
    suppressions: dict,
    config: AnalysisConfig,
    selected: Optional[set],
):
    """Pass 1 over one parsed file: per-file rules only."""
    findings: list[Finding] = []
    suppressed = 0
    for rule in file_rules():
        if selected is not None and rule.code not in selected:
            continue
        rule_config, effective = _effective_rule_config(rule, config)
        if not effective.applies_to(base_ctx.rel_path):
            continue
        ctx = dataclasses.replace(base_ctx, options=rule_config.options)
        severity = config.severity_for(rule.code)
        for finding in rule.check(ctx):
            finding = dataclasses.replace(finding, severity=severity)
            if _is_suppressed(finding, suppressions):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def _run_project_rules(
    contexts: dict,
    suppressions_by_file: dict,
    config: AnalysisConfig,
    selected: Optional[set],
):
    """Pass 2 over the whole tree: build the graph, run project rules."""
    active = []
    for rule in project_rules():
        if selected is not None and rule.code not in selected:
            continue
        rule_config, effective = _effective_rule_config(rule, config)
        targets = tuple(
            sorted(rel for rel in contexts if effective.applies_to(rel))
        )
        if targets:
            active.append((rule, rule_config, targets))
    if not active:
        return [], 0
    infos = [
        summarize_module(contexts[rel].tree, rel) for rel in sorted(contexts)
    ]
    graph = ProjectGraph.build(infos)
    findings: list[Finding] = []
    suppressed = 0
    for rule, rule_config, targets in active:
        project = ProjectContext(
            files=contexts,
            graph=graph,
            target_files=targets,
            options=rule_config.options,
        )
        severity = config.severity_for(rule.code)
        for finding in rule.check_project(project):
            finding = dataclasses.replace(finding, severity=severity)
            file_suppressions = suppressions_by_file.get(finding.path, {})
            if _is_suppressed(finding, file_suppressions):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def _per_file(
    source: str,
    rel_path: str,
    config: AnalysisConfig,
    selected: Optional[set],
):
    """Parse one file and run pass 1 on it.

    Returns ``(findings, suppressed, ctx, suppressions)`` where ``ctx``
    is ``None`` when the file does not parse (the findings then carry the
    ``REP000`` syntax-error marker).
    """
    try:
        ctx = FileContext.from_source(source, rel_path)
    except SyntaxError as exc:
        finding = Finding(
            path=rel_path,
            line=exc.lineno or 1,
            column=(exc.offset or 1) - 1,
            code="REP000",
            message=f"file does not parse: {exc.msg}",
            severity=Severity.ERROR,
        )
        return [finding], 0, None, {}
    suppressions = effective_suppressions(source, ctx.tree)
    findings, suppressed = _run_file_rules(ctx, suppressions, config, selected)
    return findings, suppressed, ctx, suppressions


def _analyze_file_worker(args):
    """Process-pool entry point for pass 1 (top-level, plain-data args).

    Receives ``(source, rel_path, config, selected_or_None)`` and returns
    ``(rel_path, finding_dicts, suppressed)`` — everything picklable, so
    the analyzer passes its own REP007 check.
    """
    source, rel_path, config, selected = args
    # Rules register on import; a fresh worker interpreter needs them.
    from . import rules as _rules  # noqa: F401  (import for side effect)

    selected_set = set(selected) if selected is not None else None
    findings, suppressed, _, _ = _per_file(
        source, rel_path, config, selected_set
    )
    return rel_path, [f.to_dict() for f in findings], suppressed


def analyze_source(
    source: str,
    rel_path: str,
    config: Optional[AnalysisConfig] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> AnalysisResult:
    """Analyze one in-memory source file (the unit tests' entry point).

    Project rules run too, over a single-file project — so cross-module
    rules can be exercised on self-contained snippets.
    """
    config = config or AnalysisConfig()
    selected = _selected_codes(select, ignore)
    findings, suppressed, ctx, suppressions = _per_file(
        source, rel_path, config, selected
    )
    if ctx is not None:
        project_findings, project_suppressed = _run_project_rules(
            {rel_path: ctx}, {rel_path: suppressions}, config, selected
        )
        findings.extend(project_findings)
        suppressed += project_suppressed
    findings.sort()
    return AnalysisResult(
        findings=findings, files_checked=1, suppressed=suppressed
    )


def analyze_sources(
    sources: dict,
    config: Optional[AnalysisConfig] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> AnalysisResult:
    """Analyze a dict of ``rel_path -> source`` as one in-memory project.

    The cross-module test entry point: both passes run, with the project
    graph spanning every parseable file in *sources*.
    """
    config = config or AnalysisConfig()
    selected = _selected_codes(select, ignore)
    findings: list[Finding] = []
    suppressed = 0
    contexts: dict = {}
    suppressions_by_file: dict = {}
    for rel_path in sorted(sources):
        file_findings, file_suppressed, ctx, suppressions = _per_file(
            sources[rel_path], rel_path, config, selected
        )
        findings.extend(file_findings)
        suppressed += file_suppressed
        if ctx is not None:
            contexts[rel_path] = ctx
            suppressions_by_file[rel_path] = suppressions
    project_findings, project_suppressed = _run_project_rules(
        contexts, suppressions_by_file, config, selected
    )
    findings.extend(project_findings)
    suppressed += project_suppressed
    findings.sort()
    return AnalysisResult(
        findings=findings, files_checked=len(sources), suppressed=suppressed
    )


def analyze_file(
    path: Path,
    root: Path,
    config: Optional[AnalysisConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> AnalysisResult:
    """Analyze one on-disk file, reporting paths relative to *root*."""
    rel_path = path.resolve().relative_to(root.resolve()).as_posix()
    source = path.read_text(encoding="utf-8")
    return analyze_source(source, rel_path, config=config, select=select)


def discover_files(
    paths: Iterable[Path], root: Path, exclude: Iterable[str]
) -> list:
    """Expand *paths* into the sorted list of ``.py`` files to analyze."""
    from .config import path_matches

    files: set[Path] = set()
    root = root.resolve()
    for path in paths:
        path = Path(path)
        if not path.is_absolute():
            path = root / path
        if path.is_file() and path.suffix == ".py":
            files.add(path.resolve())
        elif path.is_dir():
            files.update(p.resolve() for p in path.rglob("*.py"))
    kept = []
    for path in sorted(files):
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            continue  # outside the analysis root
        if not path_matches(rel, exclude):
            kept.append(path)
    return kept


def analyze_paths(
    paths: Optional[Iterable] = None,
    root: Optional[Path] = None,
    config: Optional[AnalysisConfig] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[Path] = None,
) -> AnalysisResult:
    """Analyze a tree: the library entry point behind the CLI and tests.

    ``jobs > 1`` fans pass 1 out over a process pool; pass 2 always runs
    in the coordinator (it needs the whole graph).  ``cache_dir`` enables
    the content-hash incremental cache for both passes.
    """
    root = Path(root) if root is not None else Path.cwd()
    if config is None:
        config = load_config(root)
    else:
        # Rules register on import; an explicit config skips load_config.
        from . import rules as _rules  # noqa: F401  (import for side effect)
    selected = _selected_codes(select, ignore)
    targets = [Path(p) for p in paths] if paths else list(config.paths)
    files = discover_files(targets, root, config.exclude)
    resolved_root = root.resolve()
    order: list[str] = []
    sources: dict = {}
    for path in files:
        rel = path.resolve().relative_to(resolved_root).as_posix()
        order.append(rel)
        sources[rel] = path.read_text(encoding="utf-8")
    shas = {rel: file_sha(sources[rel]) for rel in order}

    cache = None
    if cache_dir is not None:
        cache = AnalysisCache(cache_dir, ruleset_fingerprint(config, selected))

    findings: list[Finding] = []
    suppressed = 0
    parsed: dict = {}  # rel_path -> (ctx_or_None, suppressions)
    pending: list[str] = []
    for rel in order:
        entry = cache.get_file(rel, shas[rel]) if cache else None
        if entry is not None:
            findings.extend(entry.findings)
            suppressed += entry.suppressed
        else:
            pending.append(rel)

    if pending and jobs is not None and jobs > 1:
        selected_arg = tuple(sorted(selected)) if selected is not None else None
        worker_args = [
            (sources[rel], rel, config, selected_arg) for rel in pending
        ]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for rel, finding_dicts, file_suppressed in pool.map(
                _analyze_file_worker, worker_args
            ):
                file_findings = [Finding.from_dict(f) for f in finding_dicts]
                findings.extend(file_findings)
                suppressed += file_suppressed
                if cache:
                    cache.put_file(rel, shas[rel], file_findings, file_suppressed)
    else:
        for rel in pending:
            file_findings, file_suppressed, ctx, suppressions = _per_file(
                sources[rel], rel, config, selected
            )
            findings.extend(file_findings)
            suppressed += file_suppressed
            parsed[rel] = (ctx, suppressions)
            if cache:
                cache.put_file(rel, shas[rel], file_findings, file_suppressed)

    tree_key = tree_sha(shas)
    entry = cache.get_project(tree_key) if cache else None
    if entry is not None:
        findings.extend(entry.findings)
        suppressed += entry.suppressed
    else:
        contexts: dict = {}
        suppressions_by_file: dict = {}
        for rel in order:
            if rel in parsed:
                ctx, suppressions = parsed[rel]
            else:
                try:
                    ctx = FileContext.from_source(sources[rel], rel)
                    suppressions = effective_suppressions(sources[rel], ctx.tree)
                except SyntaxError:
                    ctx, suppressions = None, {}
            if ctx is not None:
                contexts[rel] = ctx
                suppressions_by_file[rel] = suppressions
        project_findings, project_suppressed = _run_project_rules(
            contexts, suppressions_by_file, config, selected
        )
        findings.extend(project_findings)
        suppressed += project_suppressed
        if cache:
            cache.put_project(tree_key, project_findings, project_suppressed)

    if cache:
        cache.save()
    findings.sort()
    return AnalysisResult(
        findings=findings,
        files_checked=len(order),
        suppressed=suppressed,
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else 0,
    )
