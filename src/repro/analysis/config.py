"""Configuration for the invariant checker.

Defaults live *here*, in code, and mirror the ``[tool.repro.analysis]``
block in ``pyproject.toml``; the TOML block can override any of them.  That
way the checker behaves identically on Python 3.10 (no :mod:`tomllib`)
as long as the project block matches the shipped defaults, and a missing
``pyproject.toml`` is never fatal.

Path patterns
-------------
Include/exclude entries match against ``/``-separated paths relative to
the analysis root.  A pattern matches when it is

* an :mod:`fnmatch` glob matching the whole relative path
  (``src/repro/variance/*.py``), or
* an exact relative path (``src/repro/rng.py``), or
* a directory prefix (``tests`` matches everything under ``tests/``).
"""

from __future__ import annotations

import dataclasses
from fnmatch import fnmatch
from pathlib import Path
from typing import Optional

from .registry import RULE_REGISTRY, Severity

__all__ = [
    "RuleConfig",
    "AnalysisConfig",
    "load_config",
    "path_matches",
]


def path_matches(rel_path: str, patterns) -> bool:
    """True when *rel_path* matches any pattern (see module docstring)."""
    for pattern in patterns:
        pattern = pattern.rstrip("/")
        if not pattern:
            continue
        if (
            rel_path == pattern
            or rel_path.startswith(pattern + "/")
            or fnmatch(rel_path, pattern)
        ):
            return True
    return False


@dataclasses.dataclass
class RuleConfig:
    """Per-rule settings resolved from defaults + ``pyproject.toml``."""

    enabled: bool = True
    severity: Optional[Severity] = None
    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    options: dict = dataclasses.field(default_factory=dict)

    def applies_to(self, rel_path: str) -> bool:
        """Whether the rule should run on *rel_path*."""
        if not self.enabled:
            return False
        if self.include and not path_matches(rel_path, self.include):
            return False
        return not path_matches(rel_path, self.exclude)


@dataclasses.dataclass
class AnalysisConfig:
    """Resolved checker configuration."""

    paths: tuple[str, ...] = ("src", "tests")
    exclude: tuple[str, ...] = (
        "build",
        "dist",
        ".git",
        "__pycache__",
        "tests/analysis/fixtures",
    )
    rules: dict = dataclasses.field(default_factory=dict)

    def rule_config(self, code: str) -> RuleConfig:
        """The (possibly default) :class:`RuleConfig` for *code*."""
        return self.rules.get(code) or RuleConfig()

    def severity_for(self, code: str) -> Severity:
        """Effective severity: per-rule override or the rule's default."""
        override = self.rule_config(code).severity
        if override is not None:
            return override
        rule = RULE_REGISTRY.get(code)
        return rule.default_severity if rule else Severity.ERROR


def _read_pyproject_table(root: Path) -> dict:
    """The raw ``[tool.repro.analysis]`` table, or ``{}``.

    Gated on :mod:`tomllib`/``tomli`` so Python 3.10 without ``tomli``
    still runs with the in-code defaults.
    """
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return {}
    try:
        import tomllib
    except ImportError:  # pragma: no cover - 3.10 fallback
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            return {}
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("repro", {}).get("analysis", {})
    return table if isinstance(table, dict) else {}


def _rule_config_from_table(rule, table: dict) -> RuleConfig:
    """Merge one rule's defaults with its TOML sub-table."""
    severity = table.get("severity")
    return RuleConfig(
        enabled=bool(table.get("enabled", True)),
        severity=Severity(severity) if severity else None,
        include=tuple(table.get("include", rule.default_include)),
        exclude=tuple(table.get("exclude", rule.default_exclude)),
        options={
            key: value
            for key, value in table.items()
            if key not in {"enabled", "severity", "include", "exclude"}
        },
    )


def load_config(root: Path) -> AnalysisConfig:
    """Resolve the analyzer configuration for the tree rooted at *root*."""
    # Rules register on import; pull them in before building per-rule config.
    from . import rules as _rules  # noqa: F401  (import for side effect)

    table = _read_pyproject_table(root)
    config = AnalysisConfig(
        paths=tuple(table.get("paths", ("src", "tests"))),
        exclude=tuple(
            table.get(
                "exclude",
                (
                    "build",
                    "dist",
                    ".git",
                    "__pycache__",
                    "tests/analysis/fixtures",
                ),
            )
        ),
    )
    for code, rule in RULE_REGISTRY.items():
        sub = table.get(code.lower(), {})
        config.rules[code] = _rule_config_from_table(
            rule, sub if isinstance(sub, dict) else {}
        )
    return config
