"""Rule registry, findings, and severities for the invariant checker.

The checker is organized as a flat registry of rule objects, each owning
one ``REPnnn`` code, in two shapes:

* :class:`Rule` — per-file.  Receives a fully-parsed
  :class:`FileContext` and yields :class:`Finding` objects.
* :class:`ProjectRule` — whole-program.  Runs once per analysis over a
  :class:`ProjectContext` carrying every file's context plus the
  project-wide symbol table / call graph
  (:class:`repro.analysis.resolve.ProjectGraph`), so it can check
  *cross-module* invariants (pickle-safety across process seams,
  observer propagation through call chains, …).

The engine owns file discovery, suppression comments, caching, and
severity/exit-code policy, so rules stay small and testable in isolation.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
from typing import Callable, Iterator, Optional

__all__ = [
    "Severity",
    "Finding",
    "FileContext",
    "ProjectContext",
    "Rule",
    "ProjectRule",
    "RULE_REGISTRY",
    "register_rule",
    "all_rules",
    "file_rules",
    "project_rules",
    "get_rule",
]


class Severity(enum.Enum):
    """How seriously a finding is treated when computing the exit code."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str
    line: int
    column: int
    code: str
    message: str
    severity: Severity = Severity.ERROR

    def location(self) -> str:
        """``path:line:col`` rendering used by the text reporter."""
        return f"{self.path}:{self.line}:{self.column}"

    def to_dict(self) -> dict:
        """JSON-serializable form (stable key order is the reporter's job)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
            "severity": self.severity.value,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (cache/workers)."""
        return cls(
            path=payload["path"],
            line=int(payload["line"]),
            column=int(payload["column"]),
            code=payload["code"],
            message=payload["message"],
            severity=Severity(payload["severity"]),
        )


@dataclasses.dataclass
class FileContext:
    """Everything a rule may inspect about one source file.

    ``rel_path`` is the path relative to the analysis root using ``/``
    separators — all include/exclude patterns match against it.
    """

    rel_path: str
    source: str
    tree: ast.Module
    lines: tuple[str, ...]
    options: dict

    @classmethod
    def from_source(
        cls, source: str, rel_path: str, options: Optional[dict] = None
    ) -> "FileContext":
        """Parse *source* and build a context (raises ``SyntaxError``)."""
        tree = ast.parse(source, filename=rel_path)
        return cls(
            rel_path=rel_path,
            source=source,
            tree=tree,
            lines=tuple(source.splitlines()),
            options=dict(options or {}),
        )


@dataclasses.dataclass
class ProjectContext:
    """Everything a :class:`ProjectRule` may inspect about the tree.

    ``files`` maps every analyzed relative path to its parsed
    :class:`FileContext`; ``graph`` is the project-wide symbol table and
    call graph; ``target_files`` is the sorted subset of ``files`` the
    rule's include/exclude configuration selects (rules should *report*
    only inside it, but may consult any file or graph node to decide).
    """

    files: dict
    graph: "object"
    target_files: tuple = ()
    options: dict = dataclasses.field(default_factory=dict)

    def context(self, rel_path: str) -> Optional[FileContext]:
        """The parsed context of one file, or ``None`` if not analyzed."""
        return self.files.get(rel_path)


class Rule:
    """Base class for one invariant check.

    Subclasses set the class attributes and implement :meth:`check`.
    ``default_include``/``default_exclude`` are pattern lists (see
    :func:`repro.analysis.config.path_matches`) restricting which files the
    rule runs on; both can be overridden from ``pyproject.toml``.
    ``version`` participates in the incremental cache key — bump it
    whenever the rule's behaviour changes, or stale cached findings will
    survive a re-run.
    """

    code: str = "REP000"
    name: str = "unnamed"
    description: str = ""
    default_severity: Severity = Severity.ERROR
    #: Cache-key component; bump on any behavioural change.
    version: int = 1
    #: Patterns the rule is restricted to (empty = every analyzed file).
    default_include: tuple[str, ...] = ()
    #: Patterns the rule never runs on.
    default_exclude: tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for *ctx*.  Subclasses must override."""
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Build a finding anchored at *node* (helper for subclasses)."""
        return Finding(
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            severity=severity or self.default_severity,
        )

    def finding_at(
        self,
        path: str,
        line: int,
        column: int,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Build a finding at an explicit location (for graph-derived hits)."""
        return Finding(
            path=path,
            line=line,
            column=column,
            code=self.code,
            message=message,
            severity=severity or self.default_severity,
        )


class ProjectRule(Rule):
    """Base class for one *whole-program* invariant check.

    Subclasses implement :meth:`check_project` instead of :meth:`check`;
    the engine runs them once per analysis (pass 2), after the project
    graph is built, and applies suppressions/severities exactly as for
    per-file rules.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Project rules run via :meth:`check_project`, never per file."""
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Yield findings for the whole tree.  Subclasses must override."""
        raise NotImplementedError


#: Global code -> rule-instance registry, populated at import time by the
#: modules under :mod:`repro.analysis.rules`.
RULE_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: Callable[[], Rule]):
    """Class decorator: instantiate and register a :class:`Rule` subclass."""
    rule = cls()
    if not rule.code or rule.code in RULE_REGISTRY:
        raise ValueError(f"duplicate or empty rule code: {rule.code!r}")
    RULE_REGISTRY[rule.code] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    return [RULE_REGISTRY[code] for code in sorted(RULE_REGISTRY)]


def file_rules() -> list[Rule]:
    """Registered per-file rules, sorted by code."""
    return [r for r in all_rules() if not isinstance(r, ProjectRule)]


def project_rules() -> list[Rule]:
    """Registered whole-program rules, sorted by code."""
    return [r for r in all_rules() if isinstance(r, ProjectRule)]


def get_rule(code: str) -> Rule:
    """Look up one rule by its ``REPnnn`` code."""
    try:
        return RULE_REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown rule code {code!r}; known: {sorted(RULE_REGISTRY)}"
        ) from None
