"""Pass 1 of the whole-program analyzer: per-module summaries.

The project-level rules (REP007–REP010) reason about *cross-module*
facts — who calls whom, which parameters a callee accepts, which class
fields cross a process boundary.  This module extracts everything those
queries need from one parsed file into a :class:`ModuleInfo`: a plain,
picklable summary of the module's imports, function/class definitions,
and call sites.  :class:`repro.analysis.resolve.ProjectGraph` then stitches
the summaries of every analyzed file into one symbol table + call graph.

Naming conventions
------------------
``module``
    The dotted import path derived from the file's location relative to
    the analysis root (``src/repro/parallel/pool.py`` →
    ``repro.parallel.pool``; a package ``__init__.py`` maps to the
    package itself).
``qualname``
    A definition's dotted path *within* its module
    (``StreamRuntime.recover``, ``run_shard``, ``outer.inner`` for a
    nested function).  ``module + "." + qualname`` is the project-wide
    canonical name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from .astutils import ImportTable, qualified_name

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "module_name_for",
    "summarize_module",
]


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a ``/``-separated relative path.

    A leading ``src/`` is stripped (the repo's layout root), ``.py`` is
    dropped, and a trailing ``__init__`` collapses to the package name.
    """
    path = rel_path
    if path.startswith("src/"):
        path = path[len("src/") :]
    if path.endswith(".py"):
        path = path[: -len(".py")]
    parts = [p for p in path.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition, summarized as plain data."""

    module: str
    qualname: str
    name: str
    lineno: int
    col: int
    #: Positional parameter names in order (including ``self``/``cls``).
    positional: tuple = ()
    #: Keyword-only parameter names.
    kwonly: tuple = ()
    has_vararg: bool = False
    has_kwarg: bool = False
    #: Name of the class this is a method of, or ``None``.
    owner_class: Optional[str] = None
    #: Qualname of the enclosing function for nested defs, or ``None``.
    parent_function: Optional[str] = None
    #: Whether the body contains ``yield`` / ``yield from``.
    is_generator: bool = False
    decorators: tuple = ()

    @property
    def canonical(self) -> str:
        """Project-wide canonical name (``module.qualname``)."""
        return f"{self.module}.{self.qualname}"

    def accepts(self, param: str) -> bool:
        """Whether *param* can be passed by keyword to this function."""
        return param in self.positional or param in self.kwonly

    def positional_index(self, param: str) -> Optional[int]:
        """Index of *param* among positional parameters, or ``None``."""
        try:
            return self.positional.index(param)
        except ValueError:
            return None


@dataclass(frozen=True)
class ClassInfo:
    """One class definition: bases, annotated fields, and method names."""

    module: str
    name: str
    lineno: int
    col: int
    #: Base-class names canonicalized through the module's imports.
    bases: tuple = ()
    #: ``(field_name, annotation_source_text)`` pairs from the class body.
    fields: tuple = ()
    #: Method names defined directly on this class.
    methods: tuple = ()
    is_dataclass: bool = False

    @property
    def canonical(self) -> str:
        """Project-wide canonical name (``module.name``)."""
        return f"{self.module}.{self.name}"


@dataclass(frozen=True)
class CallSite:
    """One call expression, with the callee canonicalized where possible.

    ``callee`` is the dotted callee path resolved through the module's
    import aliases (``pool.submit`` stays receiver-relative; ``self.foo``
    / ``cls.foo`` keep their head so the graph can resolve them against
    the caller's class).  Calls whose function is not a name/attribute
    chain (e.g. ``fns[0]()``) are not recorded.
    """

    module: str
    #: Qualname of the enclosing function, or ``""`` at module level.
    caller: str
    lineno: int
    col: int
    callee: str
    nargs: int = 0
    keywords: tuple = ()
    has_star_args: bool = False
    has_star_kwargs: bool = False


@dataclass
class ModuleInfo:
    """Everything the project graph keeps about one analyzed module."""

    rel_path: str
    name: str
    #: Local alias -> canonical dotted path (relative imports resolved).
    imports: dict = field(default_factory=dict)
    #: qualname -> :class:`FunctionInfo` (methods keyed ``Class.method``).
    functions: dict = field(default_factory=dict)
    #: class name -> :class:`ClassInfo`.
    classes: dict = field(default_factory=dict)
    calls: tuple = ()

    @property
    def package(self) -> str:
        """The package this module lives in (itself for ``__init__``)."""
        if self.rel_path.endswith("/__init__.py"):
            return self.name
        head, _, _ = self.name.rpartition(".")
        return head


def _absolutize(dotted: str, package: str) -> str:
    """Resolve a possibly-relative dotted path against *package*."""
    if not dotted.startswith("."):
        return dotted
    level = len(dotted) - len(dotted.lstrip("."))
    remainder = dotted[level:]
    parts = package.split(".") if package else []
    if level > 1:
        parts = parts[: -(level - 1)] if level - 1 <= len(parts) else []
    base = ".".join(parts)
    if not remainder:
        return base
    return f"{base}.{remainder}" if base else remainder


class _OwnBodyYieldFinder(ast.NodeVisitor):
    """Detects yield/yield-from without descending into nested defs."""

    def __init__(self) -> None:
        self.found = False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Don't descend: a nested def's yields belong to the nested def."""

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Don't descend (async variant)."""

    def visit_Lambda(self, node: ast.Lambda) -> None:
        """Don't descend: lambdas cannot yield anyway."""

    def visit_Yield(self, node: ast.Yield) -> None:
        """Mark the enclosing function as a generator."""
        self.found = True

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        """Mark the enclosing function as a generator."""
        self.found = True


def _is_generator_function(node) -> bool:
    finder = _OwnBodyYieldFinder()
    for stmt in node.body:
        finder.visit(stmt)
    return finder.found


class _ModuleSummarizer(ast.NodeVisitor):
    """Single-pass extraction of functions, classes, and call sites."""

    def __init__(self, info: ModuleInfo, imports: ImportTable, package: str):
        self.info = info
        self.imports = imports
        self.package = package
        #: Stack of (kind, name) scope frames; kind in {"class", "function"}.
        self.scope: list = []
        self.calls: list = []

    # -- helpers -------------------------------------------------------

    def _qualname(self, name: str) -> str:
        parts = [frame_name for _, frame_name in self.scope] + [name]
        return ".".join(parts)

    def _enclosing_function(self) -> Optional[str]:
        for index in range(len(self.scope) - 1, -1, -1):
            if self.scope[index][0] == "function":
                return ".".join(n for _, n in self.scope[: index + 1])
        return None

    def _caller_qualname(self) -> str:
        return ".".join(name for _, name in self.scope)

    def _resolve(self, dotted: str) -> str:
        if dotted.split(".", 1)[0] in ("self", "cls"):
            return dotted
        resolved = self.imports.resolve(dotted)
        return _absolutize(resolved, self.package)

    # -- definitions ---------------------------------------------------

    def _visit_def(self, node) -> None:
        qualname = self._qualname(node.name)
        owner = None
        if self.scope and self.scope[-1][0] == "class":
            owner = self.scope[-1][1]
        parent_fn = self._enclosing_function()
        args = node.args
        positional = tuple(
            a.arg for a in (*args.posonlyargs, *args.args)
        )
        self.info.functions[qualname] = FunctionInfo(
            module=self.info.name,
            qualname=qualname,
            name=node.name,
            lineno=node.lineno,
            col=node.col_offset,
            positional=positional,
            kwonly=tuple(a.arg for a in args.kwonlyargs),
            has_vararg=args.vararg is not None,
            has_kwarg=args.kwarg is not None,
            owner_class=owner,
            parent_function=parent_fn,
            is_generator=_is_generator_function(node),
            decorators=tuple(
                name
                for name in (
                    qualified_name(d.func if isinstance(d, ast.Call) else d)
                    for d in node.decorator_list
                )
                if name is not None
            ),
        )
        self.scope.append(("function", node.name))
        for stmt in node.body:
            self.visit(stmt)
        self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Record the function and walk its body in a nested scope."""
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Record the async function and walk its body."""
        self._visit_def(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Record the class (fields, bases, methods) and walk its body."""
        fields = []
        methods = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                fields.append(
                    (stmt.target.id, ast.unparse(stmt.annotation))
                )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
        decorators = [
            qualified_name(d.func if isinstance(d, ast.Call) else d)
            for d in node.decorator_list
        ]
        resolved_decorators = [
            self._resolve(d) for d in decorators if d is not None
        ]
        is_dataclass = any(
            d.endswith("dataclass") or d.endswith("dataclasses.dataclass")
            for d in resolved_decorators
        )
        self.info.classes[node.name] = ClassInfo(
            module=self.info.name,
            name=node.name,
            lineno=node.lineno,
            col=node.col_offset,
            bases=tuple(
                self._resolve(base)
                for base in (qualified_name(b) for b in node.bases)
                if base is not None
            ),
            fields=tuple(fields),
            methods=tuple(methods),
            is_dataclass=is_dataclass,
        )
        self.scope.append(("class", node.name))
        for stmt in node.body:
            self.visit(stmt)
        self.scope.pop()

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        """Record the call site (when the callee is a name chain)."""
        callee = qualified_name(node.func)
        if callee is not None:
            self.calls.append(
                CallSite(
                    module=self.info.name,
                    caller=self._caller_qualname(),
                    lineno=node.lineno,
                    col=node.col_offset,
                    callee=self._resolve(callee),
                    nargs=sum(
                        1 for a in node.args if not isinstance(a, ast.Starred)
                    ),
                    keywords=tuple(
                        kw.arg for kw in node.keywords if kw.arg is not None
                    ),
                    has_star_args=any(
                        isinstance(a, ast.Starred) for a in node.args
                    ),
                    has_star_kwargs=any(
                        kw.arg is None for kw in node.keywords
                    ),
                )
            )
        self.generic_visit(node)


def summarize_module(tree: ast.Module, rel_path: str) -> ModuleInfo:
    """Extract one file's :class:`ModuleInfo` from its parsed AST."""
    name = module_name_for(rel_path)
    imports = ImportTable(tree)
    info = ModuleInfo(rel_path=rel_path, name=name)
    package = (
        name if rel_path.endswith("/__init__.py") else name.rpartition(".")[0]
    )
    summarizer = _ModuleSummarizer(info, imports, package)
    for stmt in tree.body:
        summarizer.visit(stmt)
    info.imports = {
        alias: _absolutize(target, package)
        for alias, target in imports.aliases.items()
    }
    info.calls = tuple(summarizer.calls)
    return info
