"""Command-line entry point: ``python -m repro.analysis`` / ``repro-analysis``.

Exit codes: 0 clean tree, 1 findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .config import load_config
from .engine import analyze_paths
from .registry import RULE_REGISTRY, all_rules
from .reporters import render_json, render_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description=(
            "Repo-specific AST invariant checker: determinism (REP001), "
            "dtype safety (REP002), API consistency (REP003), float "
            "equality (REP004), estimator contract (REP005)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: paths from "
        "[tool.repro.analysis] in pyproject.toml)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root containing pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "-f",
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="include suppression counts"
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(
            f"{rule.code}  {rule.name:<20} [{rule.default_severity.value}] "
            f"{rule.description}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the checker; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    select = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",")}
        unknown = select - set(RULE_REGISTRY)
        # Rules register on config load; pre-load so the check is accurate.
        if unknown:
            load_config(Path(args.root))
            unknown = select - set(RULE_REGISTRY)
        if unknown:
            parser.error(f"unknown rule code(s): {sorted(unknown)}")

    root = Path(args.root)
    if not root.is_dir():
        parser.error(f"--root {args.root!r} is not a directory")

    # A typo'd path must not pass green: "checked 0 file(s)" from a CI line
    # like `repro-analysis scr tests` would silently disable enforcement.
    for raw in args.paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if not path.exists():
            parser.error(f"path {raw!r} does not exist under root {args.root!r}")

    result = analyze_paths(paths=args.paths or None, root=root, select=select)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
