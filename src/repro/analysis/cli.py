"""Command-line entry point: ``python -m repro.analysis`` / ``repro-analysis``.

Exit codes: 0 clean tree, 1 findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .config import load_config
from .engine import analyze_paths
from .registry import RULE_REGISTRY, all_rules
from .reporters import render_json, render_sarif, render_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description=(
            "Repo-specific invariant checker: per-file AST rules "
            "(REP001–REP006) plus whole-program rules over the project "
            "call graph — pickle-safety across process seams (REP007), "
            "kernel-seam bypass (REP008), observer propagation (REP009), "
            "checkpoint schema symmetry (REP010).  See --list-rules."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: paths from "
        "[tool.repro.analysis] in pyproject.toml)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root containing pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "-f",
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule codes to skip (applied after --select)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run the per-file pass over N worker processes (default: serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-hash incremental cache directory; unchanged files "
        "and unchanged trees skip re-analysis (default: no cache)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="include suppression counts"
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(
            f"{rule.code}  {rule.name:<20} [{rule.default_severity.value}] "
            f"{rule.description}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the checker; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    select = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",")}
    ignore = None
    if args.ignore:
        ignore = {code.strip().upper() for code in args.ignore.split(",")}
    for label, codes in (("--select", select), ("--ignore", ignore)):
        if not codes:
            continue
        unknown = codes - set(RULE_REGISTRY)
        # Rules register on config load; pre-load so the check is accurate.
        if unknown:
            load_config(Path(args.root))
            unknown = codes - set(RULE_REGISTRY)
        if unknown:
            parser.error(f"unknown {label} rule code(s): {sorted(unknown)}")

    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be a positive integer")

    root = Path(args.root)
    if not root.is_dir():
        parser.error(f"--root {args.root!r} is not a directory")

    # A typo'd path must not pass green: "checked 0 file(s)" from a CI line
    # like `repro-analysis scr tests` would silently disable enforcement.
    for raw in args.paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if not path.exists():
            parser.error(f"path {raw!r} does not exist under root {args.root!r}")

    result = analyze_paths(
        paths=args.paths or None,
        root=root,
        select=select,
        ignore=ignore,
        jobs=args.jobs,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
    )
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
