"""Text, JSON, and SARIF renderings of an :class:`AnalysisResult`.

The JSON form is *stable*: findings sorted by (path, line, column, code),
keys emitted in a fixed order, counts included — so CI diffs and the
reporter tests can compare output byte-for-byte.  The SARIF form targets
the 2.1.0 schema GitHub code scanning ingests, so CI can upload the
report and findings annotate PR diffs in place.
"""

from __future__ import annotations

import json

from .engine import AnalysisResult
from .registry import Severity, all_rules

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "REPORT_SCHEMA_VERSION",
    "SARIF_VERSION",
]

#: Bumped whenever the JSON layout changes shape.
REPORT_SCHEMA_VERSION = 1


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """Human-oriented ``path:line:col: CODE [severity] message`` listing."""
    lines = [
        f"{finding.location()}: {finding.code} "
        f"[{finding.severity.value}] {finding.message}"
        for finding in result.findings
    ]
    errors = len(result.errors)
    warnings = len(result.findings) - errors
    summary = (
        f"checked {result.files_checked} file(s): "
        f"{errors} error(s), {warnings} warning(s)"
    )
    if verbose or result.suppressed:
        summary += f", {result.suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Stable machine-oriented report (see module docstring)."""
    payload = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "counts": {
            "error": sum(
                1 for f in result.findings if f.severity is Severity.ERROR
            ),
            "warning": sum(
                1 for f in result.findings if f.severity is Severity.WARNING
            ),
        },
        "findings": [finding.to_dict() for finding in sorted(result.findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: The SARIF schema version the report declares.
SARIF_VERSION = "2.1.0"

_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(result: AnalysisResult) -> str:
    """SARIF 2.1.0 report for GitHub code scanning upload.

    One run, one driver; the full rule catalogue is embedded so every
    ``ruleId`` in the results resolves, and locations use 1-based
    columns as the spec requires (findings carry 0-based columns).
    """
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": rule.default_severity.value
            },
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": finding.code,
            "level": finding.severity.value,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column + 1,
                        },
                    }
                }
            ],
        }
        for finding in sorted(result.findings)
    ]
    payload = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
