"""Text and JSON renderings of an :class:`AnalysisResult`.

The JSON form is *stable*: findings sorted by (path, line, column, code),
keys emitted in a fixed order, counts included — so CI diffs and the
reporter tests can compare output byte-for-byte.
"""

from __future__ import annotations

import json

from .engine import AnalysisResult
from .registry import Severity

__all__ = ["render_text", "render_json", "REPORT_SCHEMA_VERSION"]

#: Bumped whenever the JSON layout changes shape.
REPORT_SCHEMA_VERSION = 1


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """Human-oriented ``path:line:col: CODE [severity] message`` listing."""
    lines = [
        f"{finding.location()}: {finding.code} "
        f"[{finding.severity.value}] {finding.message}"
        for finding in result.findings
    ]
    errors = len(result.errors)
    warnings = len(result.findings) - errors
    summary = (
        f"checked {result.files_checked} file(s): "
        f"{errors} error(s), {warnings} warning(s)"
    )
    if verbose or result.suppressed:
        summary += f", {result.suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Stable machine-oriented report (see module docstring)."""
    payload = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "counts": {
            "error": sum(
                1 for f in result.findings if f.severity is Severity.ERROR
            ),
            "warning": sum(
                1 for f in result.findings if f.severity is Severity.WARNING
            ),
        },
        "findings": [finding.to_dict() for finding in sorted(result.findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
