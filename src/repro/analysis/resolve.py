"""Pass 2 substrate: the project-wide symbol table and call graph.

:class:`ProjectGraph` stitches the per-module summaries of
:mod:`repro.analysis.graph` into one queryable structure.  Project rules
ask it the interprocedural questions the per-file rules cannot answer:

* :meth:`ProjectGraph.lookup` — resolve a canonical dotted name to the
  :class:`~.graph.FunctionInfo` / :class:`~.graph.ClassInfo` that defines
  it, following package re-exports (``from .backend import get_backend``
  in ``kernels/__init__.py`` makes ``repro.kernels.get_backend`` resolve
  to ``repro.kernels.backend.get_backend``).
* :meth:`ProjectGraph.resolve_call` — resolve one recorded
  :class:`~.graph.CallSite` to its target, including ``self.``/``cls.``
  method calls (walking project base classes) and constructor calls
  (synthesizing the implicit ``__init__`` of a dataclass from its
  fields).
* :meth:`ProjectGraph.callers_of` — the reverse call graph.
* :meth:`ProjectGraph.reaches` — transitive reachability over project
  functions ("does ``FagmsSketch.update`` ever reach
  ``repro.kernels.backend.get_backend``?").
* :meth:`ProjectGraph.unpicklable_annotation` — whether a type
  annotation provably names something that cannot cross a process
  boundary (locks, callables, generators, open files), recursing through
  project dataclass fields.
"""

from __future__ import annotations

import ast
from typing import Optional, Union

from .graph import CallSite, ClassInfo, FunctionInfo, ModuleInfo

__all__ = ["ProjectGraph", "Symbol", "UNPICKLABLE_TYPES"]

#: A resolved project definition.
Symbol = Union[FunctionInfo, ClassInfo]

#: Canonical type names that provably cannot cross a process boundary,
#: mapped to the human phrase the findings use.
UNPICKLABLE_TYPES = {
    "threading.Lock": "a threading lock",
    "threading.RLock": "a threading lock",
    "threading.Condition": "a threading condition",
    "threading.Semaphore": "a threading semaphore",
    "threading.BoundedSemaphore": "a threading semaphore",
    "threading.Event": "a threading event",
    "threading.Barrier": "a threading barrier",
    "_thread.lock": "a thread lock",
    "_thread.LockType": "a thread lock",
    "multiprocessing.Lock": "a multiprocessing lock",
    "multiprocessing.RLock": "a multiprocessing lock",
    "typing.Callable": "a callable",
    "collections.abc.Callable": "a callable",
    "typing.Generator": "a generator",
    "collections.abc.Generator": "a generator",
    "typing.Iterator": "an iterator",
    "collections.abc.Iterator": "an iterator",
    "typing.IO": "an open file handle",
    "typing.TextIO": "an open file handle",
    "typing.BinaryIO": "an open file handle",
    "io.IOBase": "an open file handle",
    "io.RawIOBase": "an open file handle",
    "io.TextIOBase": "an open file handle",
    "io.TextIOWrapper": "an open file handle",
    "io.BufferedReader": "an open file handle",
    "io.BufferedWriter": "an open file handle",
    "socket.socket": "a socket",
}

#: Typing containers whose *arguments* decide pickle-safety.
_TRANSPARENT_GENERICS = {
    "typing.Optional",
    "typing.Union",
    "typing.Final",
    "typing.ClassVar",
    "typing.Annotated",
    "typing.List",
    "typing.Tuple",
    "typing.Dict",
    "typing.Set",
    "typing.FrozenSet",
    "typing.Sequence",
    "typing.Mapping",
    "collections.abc.Sequence",
    "collections.abc.Mapping",
    "tuple",
    "list",
    "dict",
    "set",
    "frozenset",
}


class ProjectGraph:
    """Symbol table + call graph over every analyzed module."""

    def __init__(self, modules: dict) -> None:
        #: Dotted module name -> :class:`~.graph.ModuleInfo`.
        self.modules = dict(modules)
        self._by_rel_path = {
            info.rel_path: info for info in self.modules.values()
        }
        self._callers: Optional[dict] = None

    @classmethod
    def build(cls, infos) -> "ProjectGraph":
        """Build a graph from an iterable of :class:`~.graph.ModuleInfo`."""
        return cls({info.name: info for info in infos})

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------

    def module(self, name: str) -> Optional[ModuleInfo]:
        """The module summary registered under dotted *name*, if any."""
        return self.modules.get(name)

    def module_for_path(self, rel_path: str) -> Optional[ModuleInfo]:
        """The module summary for a ``/``-separated relative path."""
        return self._by_rel_path.get(rel_path)

    def canonical_in(self, module: ModuleInfo, dotted: str) -> str:
        """Canonicalize a dotted name as written inside *module*.

        Resolves through the module's import aliases first, then through
        its own top-level definitions (a class naming a same-module base
        or field type without any import).
        """
        head, _, rest = dotted.partition(".")
        if head in module.imports:
            base = module.imports[head]
        elif head in module.classes or head in module.functions:
            base = f"{module.name}.{head}"
        else:
            base = head
        return f"{base}.{rest}" if rest else base

    def resolve_in_module(
        self, module_name: str, dotted: str
    ) -> Optional[Symbol]:
        """:meth:`lookup`, retrying *dotted* as local to *module_name*."""
        symbol = self.lookup(dotted)
        if symbol is not None:
            return symbol
        return self.lookup(f"{module_name}.{dotted}")

    def lookup(self, canonical: str, _seen=None) -> Optional[Symbol]:
        """Resolve a canonical dotted name to its project definition.

        Follows package re-exports through ``__init__`` import tables
        (cycle-guarded), so both ``repro.kernels.get_backend`` and
        ``repro.kernels.backend.get_backend`` resolve to the same
        :class:`~.graph.FunctionInfo`.  Returns ``None`` for names
        defined outside the analyzed tree.
        """
        if _seen is None:
            _seen = set()
        if canonical in _seen:
            return None
        _seen.add(canonical)
        parts = canonical.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:split])
            info = self.modules.get(module_name)
            if info is None:
                continue
            remainder = ".".join(parts[split:])
            symbol = info.functions.get(remainder)
            if symbol is not None:
                return symbol
            klass = info.classes.get(remainder)
            if klass is not None:
                return klass
            head = parts[split]
            target = info.imports.get(head)
            if target is not None:
                rest = ".".join(parts[split + 1 :])
                rejoined = f"{target}.{rest}" if rest else target
                return self.lookup(rejoined, _seen)
            return None
        return None

    def lookup_function(self, canonical: str) -> Optional[FunctionInfo]:
        """:meth:`lookup` restricted to functions."""
        symbol = self.lookup(canonical)
        return symbol if isinstance(symbol, FunctionInfo) else None

    def lookup_class(self, canonical: str) -> Optional[ClassInfo]:
        """:meth:`lookup` restricted to classes."""
        symbol = self.lookup(canonical)
        return symbol if isinstance(symbol, ClassInfo) else None

    def method(self, klass: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Resolve a method on *klass*, walking project base classes."""
        seen = set()
        queue = [klass]
        while queue:
            current = queue.pop(0)
            if current.canonical in seen:
                continue
            seen.add(current.canonical)
            owner_module = self.modules.get(current.module)
            if owner_module is not None:
                found = owner_module.functions.get(f"{current.name}.{name}")
                if found is not None:
                    return found
            for base in current.bases:
                base_symbol = self.resolve_in_module(current.module, base)
                if isinstance(base_symbol, ClassInfo):
                    queue.append(base_symbol)
        return None

    def constructor(self, klass: ClassInfo) -> Optional[FunctionInfo]:
        """The class's ``__init__`` — synthesized for plain dataclasses."""
        init = self.method(klass, "__init__")
        if init is not None:
            return init
        if klass.is_dataclass:
            return FunctionInfo(
                module=klass.module,
                qualname=f"{klass.name}.__init__",
                name="__init__",
                lineno=klass.lineno,
                col=klass.col,
                positional=("self",)
                + tuple(name for name, _ in klass.fields),
                owner_class=klass.name,
            )
        return None

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------

    def resolve_call(self, site: CallSite) -> Optional[Symbol]:
        """The project definition a call site targets, if resolvable."""
        head, _, rest = site.callee.partition(".")
        if head in ("self", "cls"):
            if not rest or "." in rest or not site.caller:
                return None
            class_name = site.caller.split(".", 1)[0]
            module = self.modules.get(site.module)
            if module is None:
                return None
            klass = module.classes.get(class_name)
            if klass is None:
                return None
            return self.method(klass, rest)
        return self.resolve_in_module(site.module, site.callee)

    def _caller_index(self) -> dict:
        if self._callers is None:
            index: dict = {}
            for info in self.modules.values():
                for site in info.calls:
                    resolved = self.resolve_call(site)
                    if resolved is not None:
                        index.setdefault(resolved.canonical, []).append(site)
            self._callers = {
                canonical: tuple(sites)
                for canonical, sites in index.items()
            }
        return self._callers

    def callers_of(self, canonical: str) -> tuple:
        """Every recorded call site resolving to *canonical*."""
        return self._caller_index().get(canonical, ())

    def calls_from(self, module_name: str, qualname: str) -> tuple:
        """Call sites inside one function (nested defs included)."""
        info = self.modules.get(module_name)
        if info is None:
            return ()
        prefix = qualname + "."
        return tuple(
            site
            for site in info.calls
            if site.caller == qualname or site.caller.startswith(prefix)
        )

    def reaches(
        self, start: FunctionInfo, target: str, max_depth: int = 8
    ) -> bool:
        """Whether *start* transitively calls canonical name *target*.

        Edges follow calls resolvable to project functions (including
        ``self.`` method calls); *target* matches either a call site's
        canonicalized text or a resolved definition's canonical name, so
        re-exported spellings count.
        """
        visited = set()
        frontier = [start]
        for _ in range(max_depth):
            if not frontier:
                return False
            next_frontier = []
            for fn in frontier:
                if fn.canonical in visited:
                    continue
                visited.add(fn.canonical)
                for site in self.calls_from(fn.module, fn.qualname):
                    if site.callee == target:
                        return True
                    resolved = self.resolve_call(site)
                    if resolved is None:
                        continue
                    if resolved.canonical == target:
                        return True
                    if (
                        isinstance(resolved, FunctionInfo)
                        and resolved.canonical not in visited
                    ):
                        next_frontier.append(resolved)
            frontier = next_frontier
        return False

    # ------------------------------------------------------------------
    # Pickle safety
    # ------------------------------------------------------------------

    def unpicklable_annotation(
        self, module: ModuleInfo, annotation: str, _depth: int = 0
    ) -> Optional[str]:
        """Why *annotation* provably cannot cross a process boundary.

        Returns a human phrase (``"a threading lock"``) when the
        annotation names a type from :data:`UNPICKLABLE_TYPES` — directly,
        inside ``Optional``/``Union``/container generics, or transitively
        through the fields of a project dataclass — and ``None`` when
        pickle-safety cannot be disproven (unknown types are *not*
        flagged; the rule only reports certain violations).
        """
        if _depth > 6:
            return None
        try:
            node = ast.parse(annotation, mode="eval").body
        except SyntaxError:
            return None
        return self._unpicklable_expr(module, node, _depth)

    def _unpicklable_expr(
        self, module: ModuleInfo, node: ast.expr, depth: int
    ) -> Optional[str]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                return self.unpicklable_annotation(
                    module, node.value, depth + 1
                )
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._unpicklable_expr(
                module, node.left, depth
            ) or self._unpicklable_expr(module, node.right, depth)
        if isinstance(node, ast.Subscript):
            base = self._annotation_canonical(module, node.value)
            if base is None:
                return None
            if base in UNPICKLABLE_TYPES:
                return UNPICKLABLE_TYPES[base]
            if base in _TRANSPARENT_GENERICS:
                inner = node.slice
                elements = (
                    inner.elts if isinstance(inner, ast.Tuple) else [inner]
                )
                for element in elements:
                    reason = self._unpicklable_expr(module, element, depth)
                    if reason is not None:
                        return reason
                return None
            return self._named_type_reason(module, base, depth)
        canonical = self._annotation_canonical(module, node)
        if canonical is None:
            return None
        if canonical in UNPICKLABLE_TYPES:
            return UNPICKLABLE_TYPES[canonical]
        return self._named_type_reason(module, canonical, depth)

    def _annotation_canonical(
        self, module: ModuleInfo, node: ast.expr
    ) -> Optional[str]:
        parts: list = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return self.canonical_in(module, ".".join(reversed(parts)))

    def _named_type_reason(
        self, module: ModuleInfo, canonical: str, depth: int
    ) -> Optional[str]:
        klass = self.lookup_class(canonical)
        if klass is None or not klass.is_dataclass:
            return None
        owner = self.modules.get(klass.module)
        if owner is None:
            return None
        for field_name, annotation in klass.fields:
            reason = self.unpicklable_annotation(
                owner, annotation, depth + 1
            )
            if reason is not None:
                return (
                    f"{reason} (field {field_name!r} of dataclass "
                    f"{klass.name})"
                )
        return None

    def __repr__(self) -> str:
        return (
            f"ProjectGraph(modules={len(self.modules)}, "
            f"functions={sum(len(m.functions) for m in self.modules.values())})"
        )
