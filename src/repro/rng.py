"""Random-number utilities shared across the library.

Everything random in :mod:`repro` — samplers, sketch hash families, data
generators, Monte-Carlo harnesses — is seeded through this module so that
experiments are reproducible end to end.  The conventions are:

* Public constructors accept ``seed`` as either ``None`` (fresh OS entropy),
  an ``int``, a :class:`numpy.random.SeedSequence`, or an already-built
  :class:`numpy.random.Generator`; :func:`as_generator` normalizes them.
* Components that need several independent random substreams (e.g. one per
  sketch row) derive them with :func:`spawn`, which uses numpy's
  ``SeedSequence.spawn`` mechanism and therefore guarantees statistical
  independence between substreams regardless of the root seed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["SeedLike", "as_generator", "as_seed_sequence", "spawn", "derive_seed"]

#: Anything acceptable as a ``seed=`` argument throughout the library.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalize *seed* into a :class:`numpy.random.Generator`.

    A ``Generator`` passed in is returned unchanged (shared state), which
    lets callers thread a single generator through a whole experiment.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Normalize *seed* into a :class:`numpy.random.SeedSequence`.

    Generators cannot be converted back into seed sequences; callers that
    need spawnable entropy should pass ``None``/``int``/``SeedSequence``.
    A ``Generator`` input is accepted by drawing a fresh 64-bit seed from it,
    preserving reproducibility of the overall experiment.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63)))
    return np.random.SeedSequence(seed)


def spawn(seed: SeedLike, n: int) -> list[np.random.SeedSequence]:
    """Derive *n* statistically independent child seed sequences from *seed*."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    return as_seed_sequence(seed).spawn(n)


def derive_seed(seed: SeedLike, *, index: int = 0) -> int:
    """Derive a deterministic 63-bit integer seed from *seed*.

    Used when an integer seed must be stored (e.g. in a sketch's metadata for
    compatibility checks) rather than a live generator object.
    """
    children = as_seed_sequence(seed).spawn(index + 1)
    return int(children[index].generate_state(1, dtype=np.uint64)[0] >> np.uint64(1))
