"""Cross-seed replication: how stable are a figure's numbers?

A single harness run reports Monte-Carlo means under one root seed; a
reviewer's first question is how much those numbers move under a different
seed.  :func:`replicate` answers it: run any figure builder under several
root seeds and report, per (row-key, numeric column), the across-seed mean
and spread.

Works with every builder in :mod:`~repro.experiments.figures` and
:mod:`~repro.experiments.extended` because they all key their rows on the
leading non-measured columns and take the seed from the
:class:`~repro.experiments.config.ExperimentScale`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from .config import ExperimentScale
from .report import FigureResult

__all__ = ["replicate"]

#: Columns treated as measurements (replicated); all earlier columns are
#: treated as the row key.
_MEASURE_PREFIXES = (
    "mean_",
    "median_",
    "std_",
    "sampling_",
    "sketch_",
    "interaction_",
    "coverage",
    "empirical_",
    "theoretical_",
    "ratio",
)


def _is_measure(column: str) -> bool:
    return any(column.startswith(prefix) for prefix in _MEASURE_PREFIXES)


def replicate(
    builder: Callable[[ExperimentScale], FigureResult],
    scale: ExperimentScale,
    seeds: Sequence[int],
) -> FigureResult:
    """Run *builder* under each root seed; report across-seed mean ± std.

    Returns a :class:`FigureResult` whose rows are the union of the
    builders' row keys, with each measured column replaced by
    ``<column>_mean`` and ``<column>_std`` across seeds.
    """
    if len(seeds) < 2:
        raise ConfigurationError("replication needs at least 2 seeds")
    results = [builder(scale.with_(seed=int(seed))) for seed in seeds]
    columns = results[0].columns
    for result in results[1:]:
        if result.columns != columns:
            raise ConfigurationError(
                "builder returned differing column sets across seeds"
            )
    key_width = 0
    while key_width < len(columns) and not _is_measure(columns[key_width]):
        key_width += 1
    if key_width == len(columns):
        raise ConfigurationError(
            f"no measured columns recognized in {columns}"
        )
    measures = columns[key_width:]

    collected: dict[tuple, list[tuple]] = {}
    order: list[tuple] = []
    for result in results:
        for row in result.rows:
            key = row[:key_width]
            if key not in collected:
                collected[key] = []
                order.append(key)
            collected[key].append(row[key_width:])

    out_rows = []
    for key in order:
        values = np.asarray(collected[key], dtype=np.float64)
        if values.shape[0] != len(seeds):
            raise ConfigurationError(
                f"row key {key} missing from some seeds' results"
            )
        row: list = list(key)
        for j in range(values.shape[1]):
            row.append(float(values[:, j].mean()))
            row.append(float(values[:, j].std(ddof=1)))
        out_rows.append(tuple(row))

    out_columns = list(columns[:key_width])
    for measure in measures:
        out_columns += [f"{measure}_mean", f"{measure}_std"]
    base = results[0]
    return FigureResult(
        figure=f"{base.figure} ×{len(seeds)} seeds",
        title=f"{base.title} — cross-seed replication",
        columns=tuple(out_columns),
        rows=tuple(out_rows),
        parameters={**base.parameters, "seeds": len(seeds)},
    )
