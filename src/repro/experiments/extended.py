"""Extended experiments beyond the paper's eight figures.

Two studies the paper's theory predicts but does not plot, used here both
as validation and as practical guidance:

* :func:`ext1_error_vs_buckets` — the **averaging floor** (Eq. 22): over a
  fixed sample, growing the bucket count ``n`` drives the error down only
  to the sampling-covariance floor ``sqrt(Cov)/truth``; past that, buckets
  are wasted.  The study reports the measured error per ``n`` alongside
  the theoretical floor.
* :func:`ext2_interval_coverage` — **empirical coverage** of the
  theory-backed CLT confidence intervals for all three schemes: the
  fraction of trials whose interval contains the truth should match the
  nominal confidence.

Both return :class:`~repro.experiments.report.FigureResult` like the main
figure builders, and both have benchmark wrappers under ``benchmarks/``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..core.estimators import (
    estimate_self_join_size,
    self_join_interval,
    sketch_over_sample,
)
from ..rng import as_generator, as_seed_sequence
from ..sampling.base import SampleInfo, Sampler
from ..sampling.bernoulli import BernoulliSampler
from ..sampling.unbiasing import self_join_correction
from ..sampling.with_replacement import WithReplacementSampler
from ..sampling.without_replacement import WithoutReplacementSampler
from ..sketches.fagms import FagmsSketch
from ..streams.synthetic import zipf_frequency_vector
from ..variance.covariance import basic_self_join_covariance
from ..variance.generic import moment_model_for
from .config import ExperimentScale
from .report import FigureResult
from .runner import run_trials

__all__ = [
    "ext1_error_vs_buckets",
    "ext2_interval_coverage",
    "ext3_theory_vs_monte_carlo",
]

DEFAULT_BUCKET_SWEEP = (64, 256, 1_024, 4_096, 16_384)


def _scale_or_default(scale: Optional[ExperimentScale]) -> ExperimentScale:
    return scale if scale is not None else ExperimentScale.default()


def ext1_error_vs_buckets(
    scale: Optional[ExperimentScale] = None,
    *,
    buckets_sweep: Sequence[int] = DEFAULT_BUCKET_SWEEP,
    p: float = 0.05,
    skew: float = 1.0,
) -> FigureResult:
    """Ext 1: self-join error vs bucket count over a fixed Bernoulli rate.

    Columns include the theoretical error floor
    ``z₀.₅·sqrt(Cov)/truth``-style normalized covariance, showing where the
    measured curve flattens (Eq. 22: averaging cannot beat the shared
    sampling noise).
    """
    scale = _scale_or_default(scale)
    root = as_seed_sequence(scale.seed + 90)
    workload = zipf_frequency_vector(
        scale.n_tuples,
        scale.domain_size,
        skew,
        seed=root.spawn(1)[0],
        shuffle_values=False,
    )
    truth = workload.f2
    info = SampleInfo(
        scheme="bernoulli",
        population_size=workload.total,
        sample_size=max(1, int(p * workload.total)),
        probability=p,
    )
    correction = self_join_correction(info)
    covariance = float(
        basic_self_join_covariance(
            moment_model_for(info),
            workload,
            correction.scale,
            correction=correction.random_coefficient,
        )
    )
    floor = math.sqrt(covariance) / truth  # one-sigma normalized floor
    sampler = BernoulliSampler(p)
    rows = []
    for buckets in buckets_sweep:
        def trial(rng, buckets=buckets):
            sketch = FagmsSketch(buckets, seed=int(rng.integers(2**63)))
            sample, draw = sampler.sample_frequencies(workload, rng)
            sketch.update_frequency_vector(sample)
            return estimate_self_join_size(sketch, draw).value

        stats = run_trials(trial, truth, scale.trials, seed=scale.seed + 91)
        rows.append((buckets, stats.mean_error, stats.median_error, floor))
    return FigureResult(
        figure="Ext 1",
        title="Self-join error vs bucket count at fixed Bernoulli rate "
        "(the Eq. 22 averaging floor)",
        columns=("buckets", "mean_rel_error", "median_rel_error", "sampling_floor_1sigma"),
        rows=tuple(rows),
        parameters={
            "p": p,
            "skew": skew,
            "n_tuples": scale.n_tuples,
            "trials": scale.trials,
        },
        notes="Expected shape: error falls ~1/sqrt(buckets), then flattens "
        "at the sampling floor; more buckets cannot help past it.",
    )


def ext2_interval_coverage(
    scale: Optional[ExperimentScale] = None,
    *,
    confidence: float = 0.95,
    fraction: float = 0.1,
) -> FigureResult:
    """Ext 2: empirical coverage of the theory-backed CLT intervals.

    For each scheme, runs the full pipeline repeatedly and counts how often
    the interval of :func:`repro.core.estimators.self_join_interval`
    contains the truth.  Expected: coverage ≈ the nominal confidence.
    """
    scale = _scale_or_default(scale)
    root = as_seed_sequence(scale.seed + 92)
    workload = zipf_frequency_vector(
        scale.n_tuples,
        scale.domain_size,
        1.0,
        seed=root.spawn(1)[0],
        shuffle_values=False,
    )
    truth = workload.f2
    samplers: list[Sampler] = [
        BernoulliSampler(fraction),
        WithReplacementSampler(fraction=fraction),
        WithoutReplacementSampler(fraction=fraction),
    ]
    trials = max(scale.trials, 20)
    rows = []
    for sampler in samplers:
        hits = 0
        seeds = as_seed_sequence(scale.seed + 93).spawn(trials)
        for index, child in enumerate(seeds):
            rng = as_generator(child)
            sketch = FagmsSketch(scale.buckets, seed=int(rng.integers(2**63)))
            info = sketch_over_sample(workload, sampler, sketch, seed=rng)
            estimate = estimate_self_join_size(sketch, info)
            interval = self_join_interval(
                estimate,
                workload,
                info,
                n=scale.buckets,
                confidence=confidence,
            )
            hits += interval.contains(truth)
            _ = index
        rows.append((sampler.scheme, trials, hits / trials, confidence))
    return FigureResult(
        figure="Ext 2",
        title="Empirical coverage of theory-backed CLT intervals (self-join)",
        columns=("scheme", "trials", "coverage", "nominal"),
        rows=tuple(rows),
        parameters={
            "fraction": fraction,
            "buckets": scale.buckets,
            "n_tuples": scale.n_tuples,
        },
        notes="Expected: coverage close to (typically at or above) nominal — "
        "the CLT bound is mildly conservative for the median-combined rows.",
    )


def ext3_theory_vs_monte_carlo(
    scale: Optional[ExperimentScale] = None,
    *,
    fraction: float = 0.1,
    skew: float = 1.0,
) -> FigureResult:
    """Ext 3: measured variance of the real pipeline vs Props 10/12 theory.

    For each scheme, runs the end-to-end sketch-over-sample pipeline many
    times, computes the empirical variance of the estimator, and reports
    the ratio against the exact theoretical combined variance.  Expected
    ratios near 1 for AGMS-like behaviour; values *below* 1 for skewed
    data reflect F-AGMS's empirically-better-than-theory behaviour (the
    paper's §VII-A citing its ref [4]) — the theory is derived for AGMS ξ
    averaging, while F-AGMS isolates heavy hitters in buckets.
    """
    scale = _scale_or_default(scale)
    root = as_seed_sequence(scale.seed + 94)
    workload = zipf_frequency_vector(
        scale.n_tuples,
        scale.domain_size,
        skew,
        seed=root.spawn(1)[0],
        shuffle_values=False,
    )
    from ..variance.generic import combined_self_join_variance

    samplers: list[Sampler] = [
        BernoulliSampler(fraction),
        WithReplacementSampler(fraction=fraction),
        WithoutReplacementSampler(fraction=fraction),
    ]
    trials = max(scale.trials, 40)
    rows = []
    for sampler in samplers:
        estimates = np.empty(trials)
        seeds = as_seed_sequence(scale.seed + 95).spawn(trials)
        info = None
        for index, child in enumerate(seeds):
            rng = as_generator(child)
            sketch = FagmsSketch(scale.buckets, seed=int(rng.integers(2**63)))
            info = sketch_over_sample(workload, sampler, sketch, seed=rng)
            estimates[index] = estimate_self_join_size(sketch, info).value
        correction = self_join_correction(info)
        theoretical = float(
            combined_self_join_variance(
                moment_model_for(info),
                workload,
                correction.scale,
                scale.buckets,
                correction=correction.random_coefficient,
            )
        )
        empirical = float(estimates.var(ddof=1))
        rows.append(
            (sampler.scheme, empirical, theoretical, empirical / theoretical)
        )
    return FigureResult(
        figure="Ext 3",
        title="Empirical pipeline variance vs exact combined-variance theory",
        columns=("scheme", "empirical_var", "theoretical_var", "ratio"),
        rows=tuple(rows),
        parameters={
            "fraction": fraction,
            "skew": skew,
            "buckets": scale.buckets,
            "trials": trials,
        },
        notes="Ratios ≤ 1 expected: the theory is exact for AGMS averaging; "
        "F-AGMS does at least as well (much better on skewed data).",
    )
