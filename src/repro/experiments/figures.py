"""Builders that regenerate each of the paper's eight figures.

Every function returns a :class:`~repro.experiments.report.FigureResult`
whose rows are the series the corresponding figure plots.  Figures 1–2 are
analytic (exact variance decomposition, no randomness beyond the data
draw); Figures 3–8 are Monte Carlo over independent trials, exactly like
Section VII: F-AGMS sketches, the frequency-domain sampling fast path, and
mean relative error across trials.

Default sweep parameters mirror the paper (skews 0–5, sampling rates down
to 0.001, sample fractions 1%–100%); the data sizes come from the
:class:`~repro.experiments.config.ExperimentScale` argument.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.estimators import estimate_join_size, estimate_self_join_size
from ..errors import ConfigurationError
from ..frequency import FrequencyVector
from ..rng import as_seed_sequence
from ..sampling.base import SampleInfo, Sampler
from ..sampling.bernoulli import BernoulliSampler
from ..sampling.with_replacement import WithReplacementSampler
from ..sampling.without_replacement import WithoutReplacementSampler
from ..sketches.fagms import FagmsSketch
from ..streams.synthetic import zipf_frequency_vector
from ..streams.tpch import generate_tpch
from ..variance.decomposition import decompose_combined_variance
from .config import ExperimentScale
from .report import FigureResult
from .runner import run_trials

__all__ = [
    "fig1_join_variance_decomposition",
    "fig2_self_join_variance_decomposition",
    "fig3_join_error_bernoulli",
    "fig4_self_join_error_bernoulli",
    "fig5_join_error_wr",
    "fig6_self_join_error_wr",
    "fig7_join_error_wor_tpch",
    "fig8_self_join_error_wor_tpch",
]

DEFAULT_SKEWS = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
DEFAULT_PROBABILITIES = (1.0, 0.1, 0.01, 0.001)
DECOMPOSITION_PROBABILITIES = (0.1, 0.01, 0.001)
DEFAULT_FRACTIONS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)
WR_SKEWS = (0.5, 1.0)


def _scale_or_default(scale: Optional[ExperimentScale]) -> ExperimentScale:
    return scale if scale is not None else ExperimentScale.default()


def _zipf_pair(
    scale: ExperimentScale, skew: float, tag: int, *, aligned: bool
) -> tuple[FrequencyVector, FrequencyVector]:
    """Two independently drawn Zipf frequency vectors (F and G).

    The paper states only that "the tuples in the two relations are
    generated completely independent"; that leaves the rank→value mapping
    ambiguous, and the two readings reproduce different figures:

    * ``aligned=False`` — each relation gets its own random rank→value
      permutation, so heavy hitters land on unrelated values and the join
      is small.  This is the configuration under which the paper's Fig 1
      claims hold exactly (the sketch variance dominates the join variance
      at any sampling rate, the interaction term dominates at low skew).
    * ``aligned=True`` — both relations use the identity mapping (value =
      frequency rank), giving a large Zipf-correlated join.  This is the
      configuration under which the Monte-Carlo error magnitudes of
      Figs 3/5 are moderate and the "sampling rate barely matters" claim
      is visible at laptop scale.

    See EXPERIMENTS.md ("join-pair convention") for the full discussion.
    """
    root = as_seed_sequence(scale.seed + tag)
    for seed_f, seed_g in zip(root.spawn(40)[::2], root.spawn(40)[1::2]):
        f = zipf_frequency_vector(
            scale.n_tuples,
            scale.domain_size,
            skew,
            seed=seed_f,
            shuffle_values=not aligned,
        )
        g = zipf_frequency_vector(
            scale.n_tuples,
            scale.domain_size,
            skew,
            seed=seed_g,
            shuffle_values=not aligned,
        )
        # At small scales and very high skew, two independently permuted
        # relations can miss each other entirely; every consumer needs a
        # non-empty join, so redraw (rare) empty-join pairs.
        if f.join_size(g) > 0:
            return f, g
    raise ConfigurationError(
        f"could not draw a Zipf pair with a non-empty join at skew {skew}; "
        "increase n_tuples or domain_size"
    )


def _zipf_single(scale: ExperimentScale, skew: float, tag: int) -> FrequencyVector:
    root = as_seed_sequence(scale.seed + tag)
    return zipf_frequency_vector(
        scale.n_tuples,
        scale.domain_size,
        skew,
        seed=root.spawn(1)[0],
        shuffle_values=False,
    )


# ----------------------------------------------------------------------
# Monte-Carlo trial closures
# ----------------------------------------------------------------------


def _join_trial(
    f: FrequencyVector,
    g: FrequencyVector,
    sampler_f: Sampler,
    sampler_g: Sampler,
    buckets: int,
):
    """One sketch-over-samples join estimate, fully driven by a trial RNG."""

    def run(rng: np.random.Generator) -> float:
        sketch_f = FagmsSketch(buckets, seed=int(rng.integers(2**63)))
        sketch_g = sketch_f.copy_empty()
        sample_f, info_f = sampler_f.sample_frequencies(f, rng)
        sample_g, info_g = sampler_g.sample_frequencies(g, rng)
        sketch_f.update_frequency_vector(sample_f)
        sketch_g.update_frequency_vector(sample_g)
        return estimate_join_size(sketch_f, info_f, sketch_g, info_g).value

    return run


def _self_join_trial(f: FrequencyVector, sampler: Sampler, buckets: int):
    """One sketch-over-samples self-join estimate."""

    def run(rng: np.random.Generator) -> float:
        sketch = FagmsSketch(buckets, seed=int(rng.integers(2**63)))
        sample, info = sampler.sample_frequencies(f, rng)
        sketch.update_frequency_vector(sample)
        return estimate_self_join_size(sketch, info).value

    return run


# ----------------------------------------------------------------------
# Figures 1–2: analytic variance decomposition (Bernoulli)
# ----------------------------------------------------------------------


def fig1_join_variance_decomposition(
    scale: Optional[ExperimentScale] = None,
    *,
    skews: Sequence[float] = DEFAULT_SKEWS,
    probabilities: Sequence[float] = DECOMPOSITION_PROBABILITIES,
) -> FigureResult:
    """Fig 1: relative contribution of the three variance terms (join).

    Exact evaluation of Prop 13's decomposition on Zipf data; the paper's
    qualitative claims: the interaction term dominates at low skew, the
    sketch term at high skew.
    """
    scale = _scale_or_default(scale)
    rows = []
    for skew in skews:
        f, g = _zipf_pair(scale, skew, tag=1, aligned=False)
        for p in probabilities:
            info = SampleInfo(
                scheme="bernoulli",
                population_size=f.total,
                sample_size=max(1, int(round(p * f.total))),
                probability=p,
            )
            parts = decompose_combined_variance(
                f, info, scale.buckets, g=g, info_g=info
            )
            s_sampling, s_sketch, s_interaction = parts.shares()
            rows.append((skew, p, s_sampling, s_sketch, s_interaction))
    return FigureResult(
        figure="Fig 1",
        title="Size-of-join variance decomposition (Bernoulli)",
        columns=("skew", "p", "sampling_share", "sketch_share", "interaction_share"),
        rows=tuple(rows),
        parameters={
            "n_tuples": scale.n_tuples,
            "domain": scale.domain_size,
            "n(buckets)": scale.buckets,
        },
    )


def fig2_self_join_variance_decomposition(
    scale: Optional[ExperimentScale] = None,
    *,
    skews: Sequence[float] = DEFAULT_SKEWS,
    probabilities: Sequence[float] = DECOMPOSITION_PROBABILITIES,
) -> FigureResult:
    """Fig 2: relative contribution of the three variance terms (self-join).

    Exact evaluation of Prop 14's decomposition; the paper: the sampling
    term dominates for skewed data.
    """
    scale = _scale_or_default(scale)
    rows = []
    for skew in skews:
        f = _zipf_single(scale, skew, tag=2)
        for p in probabilities:
            info = SampleInfo(
                scheme="bernoulli",
                population_size=f.total,
                sample_size=max(1, int(round(p * f.total))),
                probability=p,
            )
            parts = decompose_combined_variance(f, info, scale.buckets)
            s_sampling, s_sketch, s_interaction = parts.shares()
            rows.append((skew, p, s_sampling, s_sketch, s_interaction))
    return FigureResult(
        figure="Fig 2",
        title="Self-join size variance decomposition (Bernoulli)",
        columns=("skew", "p", "sampling_share", "sketch_share", "interaction_share"),
        rows=tuple(rows),
        parameters={
            "n_tuples": scale.n_tuples,
            "domain": scale.domain_size,
            "n(buckets)": scale.buckets,
        },
    )


# ----------------------------------------------------------------------
# Figures 3–4: Bernoulli sampling, error vs skew
# ----------------------------------------------------------------------


def fig3_join_error_bernoulli(
    scale: Optional[ExperimentScale] = None,
    *,
    skews: Sequence[float] = DEFAULT_SKEWS,
    probabilities: Sequence[float] = DEFAULT_PROBABILITIES,
) -> FigureResult:
    """Fig 3: size-of-join relative error vs skew, Bernoulli sampling.

    ``p = 1.0`` is the plain sketch baseline.  The paper's shape: curves
    for all p essentially coincide up to skew ≈ 3.
    """
    scale = _scale_or_default(scale)
    rows = []
    for skew in skews:
        f, g = _zipf_pair(scale, skew, tag=3, aligned=True)
        truth = f.join_size(g)
        for p in probabilities:
            trial = _join_trial(f, g, BernoulliSampler(p), BernoulliSampler(p), scale.buckets)
            stats = run_trials(trial, truth, scale.trials, seed=scale.seed + 31)
            rows.append((skew, p, stats.mean_error, stats.median_error))
    return FigureResult(
        figure="Fig 3",
        title="Size-of-join relative error vs skew (Bernoulli)",
        columns=("skew", "p", "mean_rel_error", "median_rel_error"),
        rows=tuple(rows),
        parameters=_mc_parameters(scale),
    )


def fig4_self_join_error_bernoulli(
    scale: Optional[ExperimentScale] = None,
    *,
    skews: Sequence[float] = DEFAULT_SKEWS,
    probabilities: Sequence[float] = DEFAULT_PROBABILITIES,
) -> FigureResult:
    """Fig 4: self-join relative error vs skew, Bernoulli sampling.

    The paper's shape: curves coincide up to skew ≈ 1; sampling hurts for
    high skew.
    """
    scale = _scale_or_default(scale)
    rows = []
    for skew in skews:
        f = _zipf_single(scale, skew, tag=4)
        truth = f.self_join_size()
        for p in probabilities:
            trial = _self_join_trial(f, BernoulliSampler(p), scale.buckets)
            stats = run_trials(trial, truth, scale.trials, seed=scale.seed + 41)
            rows.append((skew, p, stats.mean_error, stats.median_error))
    return FigureResult(
        figure="Fig 4",
        title="Self-join size relative error vs skew (Bernoulli)",
        columns=("skew", "p", "mean_rel_error", "median_rel_error"),
        rows=tuple(rows),
        parameters=_mc_parameters(scale),
    )


# ----------------------------------------------------------------------
# Figures 5–6: sampling with replacement, error vs sample fraction
# ----------------------------------------------------------------------


def fig5_join_error_wr(
    scale: Optional[ExperimentScale] = None,
    *,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    skews: Sequence[float] = WR_SKEWS,
) -> FigureResult:
    """Fig 5: size-of-join error vs WR sample fraction.

    The paper's shape: error decreases with the fraction and stabilizes at
    around 10% of the population size.
    """
    scale = _scale_or_default(scale)
    rows = []
    for skew in skews:
        f, g = _zipf_pair(scale, skew, tag=5, aligned=True)
        truth = f.join_size(g)
        for fraction in fractions:
            sampler = WithReplacementSampler(fraction=fraction)
            trial = _join_trial(f, g, sampler, sampler, scale.buckets)
            stats = run_trials(trial, truth, scale.trials, seed=scale.seed + 51)
            rows.append((fraction, skew, stats.mean_error, stats.median_error))
    return FigureResult(
        figure="Fig 5",
        title="Size-of-join relative error vs sample fraction (WR)",
        columns=("fraction", "skew", "mean_rel_error", "median_rel_error"),
        rows=tuple(rows),
        parameters=_mc_parameters(scale),
    )


def fig6_self_join_error_wr(
    scale: Optional[ExperimentScale] = None,
    *,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    skews: Sequence[float] = WR_SKEWS,
) -> FigureResult:
    """Fig 6: self-join error vs WR sample fraction (same shape as Fig 5)."""
    scale = _scale_or_default(scale)
    rows = []
    for skew in skews:
        f = _zipf_single(scale, skew, tag=6)
        truth = f.self_join_size()
        for fraction in fractions:
            sampler = WithReplacementSampler(fraction=fraction)
            trial = _self_join_trial(f, sampler, scale.buckets)
            stats = run_trials(trial, truth, scale.trials, seed=scale.seed + 61)
            rows.append((fraction, skew, stats.mean_error, stats.median_error))
    return FigureResult(
        figure="Fig 6",
        title="Self-join size relative error vs sample fraction (WR)",
        columns=("fraction", "skew", "mean_rel_error", "median_rel_error"),
        rows=tuple(rows),
        parameters=_mc_parameters(scale),
    )


# ----------------------------------------------------------------------
# Figures 7–8: sampling without replacement on TPC-H
# ----------------------------------------------------------------------


def fig7_join_error_wor_tpch(
    scale: Optional[ExperimentScale] = None,
    *,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> FigureResult:
    """Fig 7: ``lineitem ⋈ orders`` error vs WOR sampling rate (TPC-H).

    The paper's (surprising) shape: smallest error around a 10% rate, then
    *increasing* with the rate — an F-AGMS bucket-contention effect
    (Section VII-D).
    """
    scale = _scale_or_default(scale)
    tables = generate_tpch(
        scale_factor=scale.tpch_orders / 1_500_000,
        seed=scale.seed + 70,
    )
    f = tables.lineitem.frequency_vector()
    g = tables.orders.frequency_vector()
    truth = tables.exact_join_size()
    rows = []
    for fraction in fractions:
        sampler = WithoutReplacementSampler(fraction=fraction)
        trial = _join_trial(f, g, sampler, sampler, scale.buckets)
        stats = run_trials(trial, truth, scale.trials, seed=scale.seed + 71)
        rows.append((fraction, stats.mean_error, stats.median_error))
    return FigureResult(
        figure="Fig 7",
        title="TPC-H lineitem ⋈ orders relative error vs sampling rate (WOR)",
        columns=("fraction", "mean_rel_error", "median_rel_error"),
        rows=tuple(rows),
        parameters=_tpch_parameters(scale, tables.n_lineitems, tables.n_orders),
    )


def fig8_self_join_error_wor_tpch(
    scale: Optional[ExperimentScale] = None,
    *,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> FigureResult:
    """Fig 8: F₂ of ``lineitem.l_orderkey`` vs WOR sampling rate (TPC-H).

    The paper's shape: error decreases and stabilizes for rates ≥ 10%.
    """
    scale = _scale_or_default(scale)
    tables = generate_tpch(
        scale_factor=scale.tpch_orders / 1_500_000,
        seed=scale.seed + 80,
    )
    f = tables.lineitem.frequency_vector()
    truth = tables.exact_lineitem_f2()
    rows = []
    for fraction in fractions:
        sampler = WithoutReplacementSampler(fraction=fraction)
        trial = _self_join_trial(f, sampler, scale.buckets)
        stats = run_trials(trial, truth, scale.trials, seed=scale.seed + 81)
        rows.append((fraction, stats.mean_error, stats.median_error))
    return FigureResult(
        figure="Fig 8",
        title="TPC-H F2(l_orderkey) relative error vs sampling rate (WOR)",
        columns=("fraction", "mean_rel_error", "median_rel_error"),
        rows=tuple(rows),
        parameters=_tpch_parameters(scale, tables.n_lineitems, tables.n_orders),
    )


# ----------------------------------------------------------------------


def _mc_parameters(scale: ExperimentScale) -> dict:
    return {
        "n_tuples": scale.n_tuples,
        "domain": scale.domain_size,
        "buckets": scale.buckets,
        "trials": scale.trials,
    }


def _tpch_parameters(scale: ExperimentScale, lineitems: int, orders: int) -> dict:
    return {
        "lineitem": lineitems,
        "orders": orders,
        "buckets": scale.buckets,
        "trials": scale.trials,
    }
