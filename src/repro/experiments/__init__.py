"""Experiment harness: regenerate every figure of the paper's Section VII.

The paper's evaluation has eight figures (no numbered tables):

===  ==================================================================
Fig  What it shows
===  ==================================================================
1    variance decomposition, size of join, Bernoulli, vs skew
2    variance decomposition, self-join size, Bernoulli, vs skew
3    relative error, size of join, Bernoulli, vs skew (several p)
4    relative error, self-join size, Bernoulli, vs skew (several p)
5    relative error, size of join, WR, vs sample fraction
6    relative error, self-join size, WR, vs sample fraction
7    relative error, size of join lineitem⋈orders (TPC-H), WOR, vs rate
8    relative error, F₂ of lineitem.l_orderkey (TPC-H), WOR, vs rate
===  ==================================================================

Each ``figN_*`` function in :mod:`~repro.experiments.figures` returns a
:class:`~repro.experiments.report.FigureResult` whose ``format()`` prints
the same series the paper plots.  Scales default to laptop-friendly values
(see :class:`~repro.experiments.config.ExperimentScale`); pass
``ExperimentScale.paper()`` to approach the paper's sizes.
"""

from .config import ExperimentScale
from .figures import (
    fig1_join_variance_decomposition,
    fig2_self_join_variance_decomposition,
    fig3_join_error_bernoulli,
    fig4_self_join_error_bernoulli,
    fig5_join_error_wr,
    fig6_self_join_error_wr,
    fig7_join_error_wor_tpch,
    fig8_self_join_error_wor_tpch,
)
from .extended import (
    ext1_error_vs_buckets,
    ext2_interval_coverage,
    ext3_theory_vs_monte_carlo,
)
from .replication import replicate
from .report import FigureResult, format_table
from .runner import TrialStats, relative_error, run_trials
from .sweeps import error_sweep

__all__ = [
    "error_sweep",
    "replicate",
    "ext1_error_vs_buckets",
    "ext2_interval_coverage",
    "ext3_theory_vs_monte_carlo",
    "ExperimentScale",
    "TrialStats",
    "run_trials",
    "relative_error",
    "FigureResult",
    "format_table",
    "fig1_join_variance_decomposition",
    "fig2_self_join_variance_decomposition",
    "fig3_join_error_bernoulli",
    "fig4_self_join_error_bernoulli",
    "fig5_join_error_wr",
    "fig6_self_join_error_wr",
    "fig7_join_error_wor_tpch",
    "fig8_self_join_error_wor_tpch",
]
