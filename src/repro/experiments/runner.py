"""Monte-Carlo trial runner and error statistics.

The paper reports ``|estimate − truth| / truth`` averaged over at least 100
independent experiments.  :func:`run_trials` executes a caller-supplied
estimator closure under independent seeds and collects exactly that
statistic (plus medians and spread, which the discussion sections use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, as_generator, spawn

__all__ = ["TrialStats", "run_trials", "relative_error"]


def relative_error(estimate: float, truth: float) -> float:
    """The paper's error metric ``|estimate − truth| / truth``."""
    if truth == 0:
        raise ConfigurationError("relative error undefined for a zero true value")
    return abs(estimate - truth) / abs(truth)


@dataclass(frozen=True)
class TrialStats:
    """Relative-error statistics across independent trials."""

    errors: np.ndarray
    truth: float

    @property
    def trials(self) -> int:
        """Number of trials."""
        return int(self.errors.size)

    @property
    def mean_error(self) -> float:
        """Mean relative error (the paper's reported statistic)."""
        return float(self.errors.mean())

    @property
    def median_error(self) -> float:
        """Median relative error (robust companion statistic)."""
        return float(np.median(self.errors))

    @property
    def std_error(self) -> float:
        """Standard deviation of the relative error across trials."""
        return float(self.errors.std(ddof=1)) if self.errors.size > 1 else 0.0

    @property
    def max_error(self) -> float:
        """Worst relative error observed."""
        return float(self.errors.max())

    def __repr__(self) -> str:
        return (
            f"TrialStats(trials={self.trials}, mean={self.mean_error:.4g}, "
            f"median={self.median_error:.4g}, max={self.max_error:.4g})"
        )


def run_trials(
    estimator: Callable[[np.random.Generator], float],
    truth: float,
    trials: int,
    seed: SeedLike = None,
) -> TrialStats:
    """Run *estimator* under *trials* independent seeds.

    *estimator* receives a fresh :class:`numpy.random.Generator` per trial
    (driving both the sampling draw and the sketch families) and returns a
    point estimate; the relative error of each is recorded.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    seeds = spawn(seed, trials)
    errors = np.empty(trials, dtype=np.float64)
    for index, child in enumerate(seeds):
        estimate = estimator(as_generator(child))
        errors[index] = relative_error(estimate, truth)
    return TrialStats(errors=errors, truth=float(truth))
