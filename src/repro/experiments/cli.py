"""Command-line entry point for regenerating the paper's figures.

Usage (any of)::

    python -m repro.experiments fig3
    python -m repro.experiments fig7 --scale default
    python -m repro.experiments all --scale small --csv-dir results/
    python -m repro.experiments fig5 --out fig5.txt --csv fig5.csv

Figures are printed as aligned text tables (the same series the paper
plots); ``--csv``/``--csv-dir`` additionally write machine-readable data.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from .config import ExperimentScale
from .extended import (
    ext1_error_vs_buckets,
    ext2_interval_coverage,
    ext3_theory_vs_monte_carlo,
)
from .figures import (
    fig1_join_variance_decomposition,
    fig2_self_join_variance_decomposition,
    fig3_join_error_bernoulli,
    fig4_self_join_error_bernoulli,
    fig5_join_error_wr,
    fig6_self_join_error_wr,
    fig7_join_error_wor_tpch,
    fig8_self_join_error_wor_tpch,
)
from .report import FigureResult

__all__ = ["main", "FIGURES"]

FIGURES: dict[str, Callable[[ExperimentScale], FigureResult]] = {
    "fig1": fig1_join_variance_decomposition,
    "fig2": fig2_self_join_variance_decomposition,
    "fig3": fig3_join_error_bernoulli,
    "fig4": fig4_self_join_error_bernoulli,
    "fig5": fig5_join_error_wr,
    "fig6": fig6_self_join_error_wr,
    "fig7": fig7_join_error_wor_tpch,
    "fig8": fig8_self_join_error_wor_tpch,
    "ext1": ext1_error_vs_buckets,
    "ext2": ext2_interval_coverage,
    "ext3": ext3_theory_vs_monte_carlo,
}

_SCALES = {
    "small": ExperimentScale.small,
    "default": ExperimentScale.default,
    "paper": ExperimentScale.paper,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures of 'Sketching Sampled Data Streams'.",
    )
    parser.add_argument(
        "figure",
        choices=[*FIGURES, "all"],
        help="which figure to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        choices=tuple(_SCALES),
        default="small",
        help="experiment scale preset (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the root seed"
    )
    parser.add_argument(
        "--trials", type=int, default=None, help="override the trial count"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the text table(s) to this file",
    )
    parser.add_argument(
        "--csv", type=Path, default=None, help="write one figure's data as CSV"
    )
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="write every generated figure's data as CSV into this directory",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    scale = _SCALES[args.scale]()
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.trials is not None:
        overrides["trials"] = args.trials
    if overrides:
        scale = scale.with_(**overrides)

    names = list(FIGURES) if args.figure == "all" else [args.figure]
    if args.csv is not None and len(names) != 1:
        print("--csv applies to a single figure; use --csv-dir for 'all'",
              file=sys.stderr)
        return 2

    outputs = []
    for name in names:
        result = FIGURES[name](scale)
        text = result.format()
        print(text)
        print()
        outputs.append(text)
        if args.csv is not None:
            result.save_csv(args.csv)
        if args.csv_dir is not None:
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            result.save_csv(args.csv_dir / f"{name}.csv")
    if args.out is not None:
        args.out.write_text("\n\n".join(outputs) + "\n")
    return 0
