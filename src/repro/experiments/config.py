"""Scaling knobs for the experiment harness.

The paper's experiments run at 10⁷–10⁸ tuples over a 10⁶-value domain with
5,000–10,000 sketch buckets and ≥100 trials — hours of laptop time in pure
Python.  All experiment functions therefore take an
:class:`ExperimentScale` and three presets are provided:

* :meth:`ExperimentScale.small` — seconds; used by the test-suite and the
  default for ``pytest benchmarks/``;
* :meth:`ExperimentScale.default` — a couple of minutes; enough for every
  qualitative shape the paper reports (EXPERIMENTS.md was produced at this
  scale);
* :meth:`ExperimentScale.paper` — the paper's sizes (slow; provided for
  completeness).

The shapes under study are scale-free in the regimes plotted: what matters
is the *ratio* of buckets to distinct values and the sampling fractions,
both preserved across presets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError

__all__ = ["ExperimentScale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Size parameters shared by all experiments.

    Attributes
    ----------
    n_tuples:
        Stream length per synthetic relation.
    domain_size:
        Attribute domain size ``|I|``.
    buckets:
        F-AGMS buckets (the paper's "number of averaged basic estimators").
    trials:
        Independent repetitions averaged into each reported error.
    tpch_orders:
        Orders generated for the TPC-H experiments (Figs 7–8).
    seed:
        Root seed; every trial derives an independent substream.
    """

    n_tuples: int = 100_000
    domain_size: int = 10_000
    buckets: int = 1_000
    trials: int = 30
    tpch_orders: int = 20_000
    seed: int = 20090329  # ICDE 2009 begins

    def __post_init__(self) -> None:
        for field in ("n_tuples", "domain_size", "buckets", "trials", "tpch_orders"):
            if getattr(self, field) < 1:
                raise ConfigurationError(f"{field} must be >= 1")

    @classmethod
    def small(cls) -> "ExperimentScale":
        """Seconds-scale preset for tests and quick benchmark runs."""
        return cls(
            n_tuples=20_000,
            domain_size=2_000,
            buckets=500,
            trials=10,
            tpch_orders=4_000,
        )

    @classmethod
    def default(cls) -> "ExperimentScale":
        """Minutes-scale preset; reproduces every qualitative shape."""
        return cls()

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The paper's sizes (10⁷ tuples, 10⁶ domain, 5,000 buckets)."""
        return cls(
            n_tuples=10_000_000,
            domain_size=1_000_000,
            buckets=5_000,
            trials=100,
            tpch_orders=1_500_000,
        )

    def with_(self, **overrides) -> "ExperimentScale":
        """A copy with some fields replaced."""
        return replace(self, **overrides)
