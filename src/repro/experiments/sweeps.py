"""Generic parameter sweeps for custom experiments.

The figure builders cover the paper's eight plots; this module is the
reusable machinery for *new* questions of the same shape — "how does the
error behave as X and Y vary?" — without writing the loop every time::

    from repro.experiments.sweeps import error_sweep

    def setup(p, buckets):
        sampler = BernoulliSampler(p)
        def trial(rng):
            sketch = FagmsSketch(buckets, seed=int(rng.integers(2**63)))
            sample, info = sampler.sample_frequencies(workload, rng)
            sketch.update_frequency_vector(sample)
            return estimate_self_join_size(sketch, info).value
        return trial, workload.f2

    result = error_sweep(
        setup,
        grid={"p": [1.0, 0.1, 0.01], "buckets": [500, 2000]},
        trials=30,
        seed=7,
    )
    print(result.format())

The sweep evaluates the cartesian product of the grid, one
:class:`~repro.experiments.runner.TrialStats` per cell, and returns a
:class:`~repro.experiments.report.FigureResult` ready for printing or CSV
export.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, spawn
from .report import FigureResult
from .runner import run_trials

__all__ = ["error_sweep"]

#: A setup callable: receives one grid point as keyword arguments and
#: returns ``(trial_fn, truth)``.
SetupFn = Callable[..., tuple[Callable[[np.random.Generator], float], float]]


def error_sweep(
    setup: SetupFn,
    grid: Mapping[str, Sequence],
    trials: int,
    seed: SeedLike = None,
    *,
    title: str = "parameter sweep",
) -> FigureResult:
    """Run a relative-error Monte-Carlo sweep over a parameter grid.

    Parameters
    ----------
    setup:
        Called once per grid point with the point's parameters as keyword
        arguments; must return ``(trial_fn, truth)`` where ``trial_fn``
        maps a per-trial RNG to a point estimate.
    grid:
        Mapping of parameter name to the values to sweep.  The cartesian
        product of all values is evaluated, in the mapping's key order.
    trials:
        Monte-Carlo repetitions per grid point.
    seed:
        Root seed; every grid point gets an independent substream, so
        adding grid values does not perturb other points' results.

    Returns
    -------
    FigureResult
        Columns: the grid parameter names followed by
        ``mean_rel_error``, ``median_rel_error``, ``std_rel_error``.
    """
    if not grid:
        raise ConfigurationError("sweep grid must contain at least one parameter")
    names = list(grid)
    value_lists = [list(grid[name]) for name in names]
    for name, values in zip(names, value_lists):
        if not values:
            raise ConfigurationError(f"grid parameter {name!r} has no values")
    points = list(product(*value_lists))
    seeds = spawn(seed, len(points))

    rows = []
    for point, point_seed in zip(points, seeds):
        parameters = dict(zip(names, point))
        trial, truth = setup(**parameters)
        stats = run_trials(trial, truth, trials, seed=point_seed)
        rows.append(
            (*point, stats.mean_error, stats.median_error, stats.std_error)
        )
    return FigureResult(
        figure="sweep",
        title=title,
        columns=(*names, "mean_rel_error", "median_rel_error", "std_rel_error"),
        rows=tuple(rows),
        parameters={"trials": trials},
    )
