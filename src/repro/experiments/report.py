"""Tabular reporting of experiment results.

The benchmarks regenerate the paper's figures as *text tables*: one row per
(x, series) point with the same axes the paper plots.  A
:class:`FigureResult` carries the table plus enough metadata to render it;
:func:`format_table` does plain fixed-width alignment so results read well
in terminal output and in ``bench_output.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ConfigurationError

__all__ = ["FigureResult", "format_table"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    columns: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width text table with right-aligned numeric columns."""
    if not columns:
        raise ConfigurationError("a table needs at least one column")
    rendered = [[_format_cell(value) for value in row] for row in rows]
    for row in rendered:
        if len(row) != len(columns):
            raise ConfigurationError(
                f"row width {len(row)} does not match {len(columns)} columns"
            )
    widths = [
        max(len(str(column)), *(len(row[i]) for row in rendered), 1)
        if rendered
        else len(str(column))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass(frozen=True)
class FigureResult:
    """The regenerated data behind one of the paper's figures."""

    figure: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: str = ""
    parameters: dict = field(default_factory=dict)

    def format(self) -> str:
        """Render the figure data as an aligned text table."""
        header = f"[{self.figure}] {self.title}"
        if self.parameters:
            params = ", ".join(f"{k}={v}" for k, v in sorted(self.parameters.items()))
            header += f"\n({params})"
        body = format_table(self.columns, self.rows, title=header)
        if self.notes:
            body += f"\n{self.notes}"
        return body

    def series(self, series_value) -> list[tuple]:
        """Rows belonging to one series (matching the second column)."""
        return [row for row in self.rows if row[1] == series_value]

    def column(self, name: str) -> list:
        """All values of the named column, in row order."""
        try:
            index = self.columns.index(name)
        except ValueError as exc:
            raise ConfigurationError(
                f"unknown column {name!r}; available: {self.columns}"
            ) from exc
        return [row[index] for row in self.rows]

    def to_markdown(self) -> str:
        """The figure data as a GitHub-flavoured markdown table."""
        header = "| " + " | ".join(str(c) for c in self.columns) + " |"
        rule = "|" + "|".join("---" for _ in self.columns) + "|"
        lines = [f"**{self.figure}** — {self.title}", "", header, rule]
        for row in self.rows:
            lines.append("| " + " | ".join(_format_cell(v) for v in row) + " |")
        if self.notes:
            lines += ["", f"*{self.notes}*"]
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The figure data as CSV (header row + one line per point)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to *path*."""
        from pathlib import Path

        Path(path).write_text(self.to_csv())
