"""``python -m repro.experiments`` — regenerate the paper's figures."""

import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (| head …).
        sys.exit(0)
