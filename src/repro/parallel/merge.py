"""Deterministic merge reduction over per-shard sketches.

Sketches are linear, so ``sketch(A ∪ B) = sketch(A) + sketch(B)`` whenever
both sides share the hash families — the coordinator only has to add the
per-shard counter arrays.  :func:`merge_tree` does this as a **fixed-order
balanced binary reduction**: shards are paired ``(0,1), (2,3), ...`` level
by level until one sketch remains.  The order is a pure function of the
shard count, never of arrival timing, so repeated runs reduce in exactly
the same association.

For the unweighted (``p = 1``) path the association doesn't even matter
numerically: kernel backends accumulate integer-valued deltas exactly (see
:mod:`repro.kernels`), so every counter is an exactly-represented integer
and float64 addition over them is associative.  The fixed order is still
worth having — it keeps the Horvitz–Thompson-weighted (``p < 1``) path
reproducible run to run, where float rounding *does* depend on
association.

:func:`reduce_counter_tree` is the array-level twin of
:func:`merge_tree`: it reduces a stacked ``(shards, ...)`` block of raw
counter arrays in the **same pairing at every level**, so the two produce
bit-identical floats.  The coordinator uses it to fold shared-memory
counter slots without materializing one sketch object per shard.

:func:`combine_shard_infos` and :func:`sample_size_vector` aggregate the
per-shard sampling ledgers for the combined-estimator correction and for
per-shard variance accounting (see
:func:`repro.variance.sampling.sharded_bernoulli_self_join_variance`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sampling.base import SampleInfo
from ..sketches.base import Sketch

__all__ = [
    "merge_tree",
    "reduce_counter_tree",
    "combine_shard_infos",
    "sample_size_vector",
]


def merge_tree(sketches: Sequence[Sketch]) -> Sketch:
    """Reduce compatible sketches into one, in a fixed balanced order.

    The inputs are not mutated; the result is a fresh sketch.  Every pair
    is validated through :meth:`~repro.sketches.base.Sketch.check_mergeable`,
    so mixing incompatible shards raises
    :class:`~repro.errors.MergeError` instead of corrupting counters.
    """
    if not sketches:
        raise ConfigurationError("merge_tree needs at least one sketch")
    level = [sketch.copy() for sketch in sketches]
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level) - 1, 2):
            left, right = level[i], level[i + 1]
            left.merge(right)
            next_level.append(left)
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    return level[0]


def reduce_counter_tree(stack) -> np.ndarray:
    """Sum a ``(shards, ...)`` counter stack in :func:`merge_tree`'s order.

    Level by level, slot ``i`` absorbs slot ``i+1`` for even ``i`` and an
    odd trailing slot is carried to the end of the next level — exactly
    the association :func:`merge_tree` executes through
    :meth:`~repro.sketches.base.Sketch.merge`, so the result is
    bit-identical to merging the corresponding sketches (which matters
    for the float-rounded Horvitz–Thompson-weighted path; the integer
    path is associative anyway).  The input is never mutated; each level
    runs as one vectorized pairwise add.
    """
    stack = np.asarray(stack)
    if stack.ndim < 1 or stack.shape[0] == 0:
        raise ConfigurationError("reduce_counter_tree needs at least one slot")
    work = np.array(stack, copy=True)
    count = work.shape[0]
    while count > 1:
        pairs = count // 2
        work[:pairs] = work[0 : 2 * pairs : 2] + work[1 : 2 * pairs : 2]
        if count % 2:
            work[pairs] = work[2 * pairs]
        count = pairs + count % 2
    return work[0]


def combine_shard_infos(infos: Sequence[SampleInfo]) -> SampleInfo:
    """Aggregate per-shard Bernoulli ledgers into one whole-stream ledger.

    All shards of one sharded scan run at a common rate ``p`` (the
    coordinator hands every worker the same schedule), so the union of the
    per-shard Bernoulli samples is itself a Bernoulli(p) sample of the
    whole stream: population sizes and sample sizes simply add.  Shards
    that report different rates cannot be summarized by a single
    :class:`~repro.sampling.base.SampleInfo` and raise instead.
    """
    if not infos:
        raise ConfigurationError("combine_shard_infos needs at least one shard")
    schemes = {info.scheme for info in infos}
    if schemes != {"bernoulli"}:
        raise ConfigurationError(
            f"combine_shard_infos only handles Bernoulli shards, got {sorted(schemes)}"
        )
    rates = {info.probability for info in infos}
    if len(rates) > 1:
        raise ConfigurationError(
            f"shards ran at different keep-rates {sorted(rates)}; "
            "a single combined SampleInfo would misstate the design"
        )
    return SampleInfo(
        scheme="bernoulli",
        population_size=sum(info.population_size for info in infos),
        sample_size=sum(info.sample_size for info in infos),
        probability=infos[0].probability,
    )


def sample_size_vector(infos: Sequence[SampleInfo]) -> np.ndarray:
    """Per-shard realized sample sizes, in shard order (variance accounting)."""
    return np.asarray([info.sample_size for info in infos], dtype=np.int64)
