"""Per-shard execution: the function that runs inside each pool worker.

A shard travels to its worker as a :class:`ShardTask` — plain data only
(key array, serialized sketch header, rate, and the *spawned* seed-sequence
coordinates for this shard's shedder), so the task pickles cheaply and the
worker reconstructs everything deterministically.  The worker drives a
:class:`~repro.resilience.runtime.StreamRuntime` over the shard's chunks,
inheriting the whole resilience stack for free:

* each shard checkpoints through its own
  :class:`~repro.resilience.checkpoint.CheckpointManager` under
  ``<checkpoint_dir>/shard-NNN``;
* a killed worker is re-run with ``resume=True`` and recovers from its
  newest snapshot, replaying the shard from the start — already-applied
  chunks are skipped by sequence number, so the resumed counters are
  bit-identical to an uninterrupted shard run;
* the chaos harness (:mod:`repro.resilience.chaos`) plugs straight in for
  kill-a-worker tests.

Results travel back as a :class:`ShardResult` — counters plus the shard's
sample accounting (seen/kept/rate), which the coordinator aggregates into
per-shard :class:`~repro.sampling.base.SampleInfo` records for the
combined-estimator correction.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from ..errors import CheckpointError, ConfigurationError
from ..kernels import set_backend
from ..observability.metrics import MetricsSnapshot
from ..observability.observer import Observer, as_observer, worker_observer
from ..resilience.chaos import ChaosInjector
from ..resilience.runtime import StreamRuntime, envelope_stream
from ..sampling.base import SampleInfo
from ..sketches.serialization import build_sketch
from ..streams.base import iter_chunks

__all__ = ["ShardTask", "ShardResult", "run_shard", "PartialUpdateTask", "run_partial_update"]


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to sketch one shard, as plain data.

    ``seed_entropy``/``seed_spawn_key`` are the coordinates of a child
    :class:`numpy.random.SeedSequence` *already spawned by the
    coordinator* — the worker reconstructs it verbatim, so every shard's
    shedder draws from an independent, reproducible substream no matter
    which process (or how many retries) executes it.

    ``observe``/``trace_parent`` follow the same pattern for
    observability: when the coordinator carries a live observer it ships
    ``observe=True`` plus its root span's context as the plain tuple
    ``(trace_id, span_id, process)``; the worker builds a private
    :func:`~repro.observability.worker_observer` from those coordinates
    and ships its observations back inside the :class:`ShardResult`.
    """

    index: int
    keys: np.ndarray
    header: dict
    p: float = 1.0
    seed_entropy: Optional[int] = None
    seed_spawn_key: tuple = ()
    chunk_size: int = 4096
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 16
    resume: bool = False
    backend: Optional[str] = None
    observe: bool = False
    trace_parent: tuple = ()


@dataclass(frozen=True)
class ShardResult:
    """One shard's sketch state plus its sampling ledger.

    ``metrics``/``spans`` carry the worker observer's frozen
    observations when the task asked for them (``observe=True``); the
    coordinator absorbs them in fixed shard order.
    """

    index: int
    counters: np.ndarray
    seen: int
    kept: int
    p: float
    metrics: Optional[MetricsSnapshot] = None
    spans: tuple = ()

    def info(self) -> SampleInfo:
        """This shard's sample accounting as a :class:`SampleInfo`."""
        return SampleInfo(
            scheme="bernoulli",
            population_size=self.seen,
            sample_size=self.kept,
            probability=self.p,
        )


def _shard_seed(task: ShardTask):
    if task.seed_entropy is None:
        return None
    return np.random.SeedSequence(
        task.seed_entropy, spawn_key=tuple(task.seed_spawn_key)
    )


def _shard_checkpoint_dir(task: ShardTask) -> Optional[Path]:
    if task.checkpoint_dir is None:
        return None
    return Path(task.checkpoint_dir) / f"shard-{task.index:03d}"


def _build_runtime(task: ShardTask, observer: Optional[Observer]) -> StreamRuntime:
    directory = _shard_checkpoint_dir(task)
    if task.resume:
        if directory is None:
            raise ConfigurationError(
                "cannot resume a shard that was run without a checkpoint_dir"
            )
        try:
            return StreamRuntime.recover(
                directory,
                checkpoint_every=task.checkpoint_every,
                observer=observer,
            )
        except CheckpointError:
            # Killed before the first snapshot landed — start clean.
            pass
    return StreamRuntime(
        build_sketch(task.header),
        p=task.p,
        seed=_shard_seed(task),
        checkpoint_dir=directory,
        checkpoint_every=task.checkpoint_every,
        observer=observer,
    )


def run_shard(task: ShardTask, *, injector: Optional[ChaosInjector] = None) -> ShardResult:
    """Sketch one shard end to end; runs inside a pool worker.

    With *injector* set (tests only), envelopes pass through the chaos
    harness and a :class:`~repro.resilience.chaos.SimulatedCrash` may
    escape mid-shard — exactly what a killed worker looks like to the
    coordinator, which then resubmits the task with ``resume=True``.
    """
    if task.backend is not None:
        set_backend(task.backend)
    observer = (
        worker_observer(task.index, task.trace_parent) if task.observe else None
    )
    obs = as_observer(observer)
    runtime = _build_runtime(task, observer)
    keys = np.asarray(task.keys, dtype=np.int64)
    envelopes = envelope_stream(iter_chunks(keys, task.chunk_size))
    if injector is not None:
        envelopes = injector.wrap(envelopes)
    with obs.span("worker.shard", index=task.index, rows=int(keys.size)):
        runtime.run(envelopes)
    snapshot = obs.export() if observer is not None else None
    return ShardResult(
        index=task.index,
        counters=np.array(runtime.sketch._state(), copy=True),
        seen=runtime.sketcher.seen,
        kept=runtime.sketcher.kept,
        p=runtime.sketcher.rate,
        metrics=None if snapshot is None else snapshot.metrics,
        spans=() if snapshot is None else snapshot.spans,
    )


# ----------------------------------------------------------------------
# Lightweight path for engine integration: no shedding, no checkpoints —
# just "sketch these keys and hand back the counters".
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PartialUpdateTask:
    """A plain bulk-update of one shard into a fresh sketch."""

    index: int
    keys: np.ndarray
    header: dict
    backend: Optional[str] = None


def run_partial_update(task: PartialUpdateTask) -> np.ndarray:
    """Sketch one shard without shedding; returns the counter array."""
    if task.backend is not None:
        set_backend(task.backend)
    sketch = build_sketch(task.header)
    keys = np.asarray(task.keys, dtype=np.int64)
    if keys.size:
        sketch.update(keys)
    return np.array(sketch._state(), copy=True)
