"""Per-shard execution: the function that runs inside each pool worker.

A shard travels to its worker as a :class:`ShardTask` — plain data only
(key array, serialized sketch header, rate, and the *spawned* seed-sequence
coordinates for this shard's shedder), so the task pickles cheaply and the
worker reconstructs everything deterministically.  The worker drives a
:class:`~repro.resilience.runtime.StreamRuntime` over the shard's chunks,
inheriting the whole resilience stack for free:

* each shard checkpoints through its own
  :class:`~repro.resilience.checkpoint.CheckpointManager` under
  ``<checkpoint_dir>/shard-NNN``;
* a killed worker is re-run with ``resume=True`` and recovers from its
  newest snapshot, replaying the shard from the start — already-applied
  chunks are skipped by sequence number, so the resumed counters are
  bit-identical to an uninterrupted shard run;
* the chaos harness (:mod:`repro.resilience.chaos`) plugs straight in for
  kill-a-worker tests.

Results travel back as a :class:`ShardResult` — counters plus the shard's
sample accounting (seen/kept/rate), which the coordinator aggregates into
per-shard :class:`~repro.sampling.base.SampleInfo` records for the
combined-estimator correction.

Shared-memory transport
-----------------------
When the coordinator allocates :class:`~.shm.SharedBlock` segments, tasks
carry only plain descriptors: ``shm_keys``/``keys_range`` locate the
shard's slice of one shared key block, and ``shm_counters`` names a
``(shards,) + state_shape`` counter block in which slot ``index`` is this
shard's output.  The worker attaches both, points its sketch's counter
storage *directly at the slot* (:meth:`~repro.sketches.base.Sketch._bind_state`),
sketches in place, and returns a :class:`ShardResult` with
``counters=None`` — neither the keys nor the counters ever pass through
the multiprocessing pipe.  Retried shards re-bind the slot, overwriting
whatever a crashed attempt left there, so resume stays bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from ..errors import CheckpointError, ConfigurationError
from ..kernels import set_backend
from ..observability.metrics import MetricsSnapshot
from ..observability.observer import Observer, as_observer, worker_observer
from ..resilience.chaos import ChaosInjector
from ..resilience.runtime import StreamRuntime, envelope_stream
from ..sampling.base import SampleInfo
from ..sketches.serialization import build_sketch
from ..streams.base import iter_chunks
from .shm import SharedBlock

__all__ = ["ShardTask", "ShardResult", "run_shard", "PartialUpdateTask", "run_partial_update"]


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to sketch one shard, as plain data.

    ``seed_entropy``/``seed_spawn_key`` are the coordinates of a child
    :class:`numpy.random.SeedSequence` *already spawned by the
    coordinator* — the worker reconstructs it verbatim, so every shard's
    shedder draws from an independent, reproducible substream no matter
    which process (or how many retries) executes it.

    ``observe``/``trace_parent`` follow the same pattern for
    observability: when the coordinator carries a live observer it ships
    ``observe=True`` plus its root span's context as the plain tuple
    ``(trace_id, span_id, process)``; the worker builds a private
    :func:`~repro.observability.worker_observer` from those coordinates
    and ships its observations back inside the :class:`ShardResult`.

    With shared-memory transport ``keys`` is ``None`` and
    ``shm_keys``/``keys_range``/``shm_counters`` are the plain
    :attr:`~.shm.SharedBlock.descriptor` tuples locating the shard's
    input slice and output counter slot.  ``shm_slot`` overrides the
    output slot for *exclusive* dispatches (hedges, retries after a
    deadline abandonment) whose predecessor may still be writing slot
    ``index``; ``-1`` means "use ``index``".

    ``attempt`` is the supervisor's per-shard dispatch ordinal (0 for
    the first launch, unique across retries and hedges).  The shard's
    *work* never depends on it — results stay bit-identical across
    attempts — but the chaos harness keys fault plans on it.

    ``shm_heartbeat``/``heartbeat_slot`` name one int64 slot of a shared
    heartbeat block this dispatch increments per delivered envelope; the
    supervisor reads it to tell a hung worker from a slow one.
    """

    index: int
    keys: Optional[np.ndarray]
    header: dict
    p: float = 1.0
    seed_entropy: Optional[int] = None
    seed_spawn_key: tuple = ()
    chunk_size: int = 4096
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 16
    resume: bool = False
    backend: Optional[str] = None
    observe: bool = False
    trace_parent: tuple = ()
    shm_keys: tuple = ()
    keys_range: tuple = ()
    shm_counters: tuple = ()
    attempt: int = 0
    shm_slot: int = -1
    shm_heartbeat: tuple = ()
    heartbeat_slot: int = -1


@dataclass(frozen=True)
class ShardResult:
    """One shard's sketch state plus its sampling ledger.

    ``metrics``/``spans`` carry the worker observer's frozen
    observations when the task asked for them (``observe=True``); the
    coordinator absorbs them in fixed shard order.

    ``counters`` is ``None`` while the counters still live in a shared
    counter block — the coordinator backfills the field from the block
    before exposing results.
    """

    index: int
    counters: Optional[np.ndarray]
    seen: int
    kept: int
    p: float
    metrics: Optional[MetricsSnapshot] = None
    spans: tuple = ()

    def info(self) -> SampleInfo:
        """This shard's sample accounting as a :class:`SampleInfo`."""
        return SampleInfo(
            scheme="bernoulli",
            population_size=self.seen,
            sample_size=self.kept,
            probability=self.p,
        )


def _shard_seed(task: ShardTask):
    if task.seed_entropy is None:
        return None
    return np.random.SeedSequence(
        task.seed_entropy, spawn_key=tuple(task.seed_spawn_key)
    )


def _shard_checkpoint_dir(task: ShardTask) -> Optional[Path]:
    if task.checkpoint_dir is None:
        return None
    return Path(task.checkpoint_dir) / f"shard-{task.index:03d}"


def _build_runtime(task: ShardTask, observer: Optional[Observer]) -> StreamRuntime:
    directory = _shard_checkpoint_dir(task)
    if task.resume:
        if directory is None:
            raise ConfigurationError(
                "cannot resume a shard that was run without a checkpoint_dir"
            )
        try:
            return StreamRuntime.recover(
                directory,
                checkpoint_every=task.checkpoint_every,
                observer=observer,
            )
        except CheckpointError:
            # Killed before the first snapshot landed — start clean.
            pass
    return StreamRuntime(
        build_sketch(task.header),
        p=task.p,
        seed=_shard_seed(task),
        checkpoint_dir=directory,
        checkpoint_every=task.checkpoint_every,
        observer=observer,
    )


def _heartbeat_stream(envelopes, beats: np.ndarray, slot: int):
    """Tick the dispatch's heartbeat slot once per delivered envelope."""
    delivered = 0
    for envelope in envelopes:
        delivered += 1
        beats[slot] = delivered
        yield envelope


def run_shard(task: ShardTask, *, injector: Optional[ChaosInjector] = None) -> ShardResult:
    """Sketch one shard end to end; runs inside a pool worker.

    With *injector* set (tests only), envelopes pass through the chaos
    harness and a :class:`~repro.resilience.chaos.SimulatedCrash` may
    escape mid-shard — exactly what a killed worker looks like to the
    coordinator, which then resubmits the task with ``resume=True``.
    """
    if task.backend is not None:
        set_backend(task.backend)
    observer = (
        worker_observer(task.index, task.trace_parent) if task.observe else None
    )
    obs = as_observer(observer)
    key_block = counter_block = heartbeat_block = None
    try:
        if task.shm_keys:
            key_block = SharedBlock.attach(task.shm_keys)
            start, stop = task.keys_range
            keys = key_block.array[start:stop]
        else:
            keys = np.asarray(task.keys, dtype=np.int64)
        runtime = _build_runtime(task, observer)
        in_place = bool(task.shm_counters)
        slot = task.shm_slot if task.shm_slot >= 0 else task.index
        if in_place:
            counter_block = SharedBlock.attach(task.shm_counters)
            # Point the sketch's storage at this dispatch's slot: updates
            # land in the transport buffer directly, and a resumed sketch
            # copies its recovered counters over whatever a crashed
            # attempt left there.
            runtime.sketch._bind_state(counter_block.array[slot])
        envelopes = envelope_stream(iter_chunks(keys, task.chunk_size))
        if injector is not None:
            envelopes = injector.wrap(envelopes)
        if task.shm_heartbeat and task.heartbeat_slot >= 0:
            heartbeat_block = SharedBlock.attach(task.shm_heartbeat)
            envelopes = _heartbeat_stream(
                envelopes, heartbeat_block.array, task.heartbeat_slot
            )
        with obs.span("worker.shard", index=task.index, rows=int(keys.size)):
            runtime.run(envelopes)
        if in_place:
            counters = None
            state = runtime.sketch._state()
            runtime.sketch._adopt_state(np.empty(state.shape, state.dtype))
        else:
            counters = np.array(runtime.sketch._state(), copy=True)
        snapshot = obs.export() if observer is not None else None
        return ShardResult(
            index=task.index,
            counters=counters,
            seen=runtime.sketcher.seen,
            kept=runtime.sketcher.kept,
            p=runtime.sketcher.rate,
            metrics=None if snapshot is None else snapshot.metrics,
            spans=() if snapshot is None else snapshot.spans,
        )
    finally:
        # Drop every view into the segments before unmapping them.
        keys = envelopes = state = None  # noqa: F841
        for block in (key_block, counter_block, heartbeat_block):
            if block is not None:
                block.close()


# ----------------------------------------------------------------------
# Lightweight path for engine integration: no shedding, no checkpoints —
# just "sketch these keys and hand back the counters".
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PartialUpdateTask:
    """A plain bulk-update of one key range into a fresh sketch.

    With shared-memory transport ``keys`` is ``None``;
    ``shm_keys``/``keys_range`` locate the input slice of the shared key
    block and ``shm_counters`` names the counter block whose slot
    ``index`` receives this task's output.
    """

    index: int
    keys: Optional[np.ndarray]
    header: dict
    backend: Optional[str] = None
    shm_keys: tuple = ()
    keys_range: tuple = ()
    shm_counters: tuple = ()


def run_partial_update(task: PartialUpdateTask) -> Optional[np.ndarray]:
    """Sketch one key range without shedding.

    Returns the counter array — or ``None`` with shared-memory transport,
    where the counters were written straight into the task's slot of the
    shared counter block.
    """
    if task.backend is not None:
        set_backend(task.backend)
    sketch = build_sketch(task.header)
    key_block = counter_block = None
    try:
        if task.shm_keys:
            key_block = SharedBlock.attach(task.shm_keys)
            start, stop = task.keys_range
            keys = key_block.array[start:stop]
        else:
            keys = np.asarray(task.keys, dtype=np.int64)
        in_place = bool(task.shm_counters)
        if in_place:
            counter_block = SharedBlock.attach(task.shm_counters)
            # _bind_state (not _adopt_state): copying the fresh sketch's
            # zeros in also re-zeroes a slot a resubmitted task inherits.
            sketch._bind_state(counter_block.array[task.index])
        if keys.size:
            sketch.update(keys)
        if not in_place:
            return np.array(sketch._state(), copy=True)
        state = sketch._state()
        sketch._adopt_state(np.empty(state.shape, state.dtype))
        return None
    finally:
        keys = state = None  # noqa: F841 - drop shm views before unmapping
        for block in (key_block, counter_block):
            if block is not None:
                block.close()
