"""Shared-memory transport blocks for the sharded sketching engine.

Shipping a shard to a worker used to mean pickling its key array into the
task and pickling the resulting counter array back — two full copies per
shard through the multiprocessing pipe.  :class:`SharedBlock` replaces
both directions with ``multiprocessing.shared_memory``: the coordinator
allocates one key block and one counter block up front, workers attach by
name and read/write numpy views in place, and only tiny descriptors
(name, shape, dtype string) travel through the pipe.

Lifecycle contract (tested in ``tests/parallel/test_shm.py``):

* the **coordinator owns** every block it creates and destroys it in a
  ``finally`` — normal completion, worker crash, and
  :class:`~repro.errors.RetryExhaustedError` all leave ``/dev/shm`` clean;
* **workers only attach**: on Python >= 3.13 :meth:`SharedBlock.attach`
  passes ``track=False`` so the attach has no resource-tracker side
  effects at all.  Older interpreters register attached segments too,
  but pool workers share the coordinator's tracker process (fork
  inherits its pipe, spawn is handed the fd), so the re-registration is
  a set-level no-op there — crucially, the attach must *not* unregister,
  or it would erase the coordinator's own registration from the shared
  cache;
* ``close()`` tolerates live exported views (numpy arrays still holding
  the buffer raise :class:`BufferError` on ``memoryview.release``); the
  segment's backing file is removed by ``unlink()`` regardless, so a
  stray view delays memory reclamation but never leaks a name.

Names come from the stdlib's own allocator (``SharedMemory(create=True)``
with no explicit name), so block identity never depends on any ambient
entropy source.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from ..errors import ConfigurationError

__all__ = ["SharedBlock"]


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without stealing its lifetime.

    Python >= 3.13 supports ``track=False``; older interpreters register
    the attach with the resource tracker, which pool workers share with
    the coordinator — the registration lands in the same cache set the
    coordinator's ``create`` already populated, so it is a no-op, and the
    coordinator's ``unlink`` remains the single point that unregisters.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class SharedBlock:
    """A named shared-memory segment viewed as one numpy array.

    Build with :meth:`create` (coordinator side — owns the segment and
    must eventually call :meth:`destroy`) or :meth:`attach` (worker side —
    must call :meth:`close` when done).  The picklable identity is
    :attr:`descriptor`, a plain ``(name, shape, dtype)`` tuple.
    """

    __slots__ = ("_segment", "_shape", "_dtype", "_owner", "_closed", "_unlinked")

    def __init__(self, segment, shape, dtype, owner: bool) -> None:
        self._segment = segment
        self._shape = tuple(int(dim) for dim in shape)
        self._dtype = np.dtype(dtype)
        self._owner = owner
        self._closed = False
        self._unlinked = False

    # ------------------------------------------------------------------

    @classmethod
    def create(cls, shape, dtype) -> "SharedBlock":
        """Allocate a zero-filled block (the caller becomes its owner)."""
        shape = tuple(int(dim) for dim in np.atleast_1d(np.asarray(shape, dtype=np.int64)))
        if any(dim < 0 for dim in shape):
            raise ConfigurationError(f"block shape must be non-negative, got {shape}")
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        segment = shared_memory.SharedMemory(create=True, size=nbytes)
        block = cls(segment, shape, dtype, owner=True)
        block.array.fill(0)
        return block

    @classmethod
    def attach(cls, descriptor) -> "SharedBlock":
        """Open an existing block from its :attr:`descriptor` tuple."""
        name, shape, dtype = descriptor
        return cls(_attach_segment(name), shape, dtype, owner=False)

    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The segment's system-wide name."""
        return self._segment.name

    @property
    def descriptor(self) -> tuple:
        """Plain-data identity ``(name, shape, dtype_str)`` for task pickling."""
        return (self._segment.name, self._shape, self._dtype.str)

    @property
    def array(self) -> np.ndarray:
        """The live numpy view over the whole segment."""
        if self._closed:
            raise ConfigurationError(f"shared block {self.name!r} is closed")
        return np.ndarray(self._shape, dtype=self._dtype, buffer=self._segment.buf)

    @property
    def nbytes(self) -> int:
        """Bytes of payload the block carries."""
        return int(np.prod(self._shape, dtype=np.int64)) * self._dtype.itemsize

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping; safe to call twice.

        A numpy view that outlives its block keeps the exported buffer
        alive; ``memoryview.release`` then raises :class:`BufferError`.
        The mapping is reclaimed when the view dies, so the error is
        swallowed — the unlink (the part that can actually leak) is the
        owner's job and never depends on close succeeding.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - depends on caller's views
            pass

    def unlink(self) -> None:
        """Remove the segment's backing name (owner side); idempotent.

        Teardown runs in ``finally`` blocks, usually while the original
        failure is propagating — so a second ``unlink`` (crashed
        coordinator re-running cleanup, resource tracker got there
        first, the name already gone from ``/dev/shm``) must be a no-op,
        never a fresh ``FileNotFoundError`` that masks the real error.
        """
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._segment.unlink()
        except FileNotFoundError:  # already removed out from under us
            pass

    def destroy(self) -> None:
        """Owner teardown: close the mapping and unlink the name.

        Idempotent, and the unlink (the part that can actually leak a
        ``/dev/shm`` name) runs even if closing the local mapping fails.
        """
        try:
            self.close()
        finally:
            if self._owner:
                self.unlink()

    def __enter__(self) -> "SharedBlock":
        return self

    def __exit__(self, *exc_info) -> None:
        self.destroy() if self._owner else self.close()

    def __reduce__(self):
        raise TypeError(
            "SharedBlock is not picklable; ship block.descriptor and "
            "SharedBlock.attach() it in the worker"
        )

    def __repr__(self) -> str:
        role = "owner" if self._owner else "attached"
        return (
            f"SharedBlock(name={self.name!r}, shape={self._shape}, "
            f"dtype={self._dtype.name}, {role})"
        )
