"""Sharded multiprocess sketching with deterministic merge reduction.

The paper's sketches are *linear*: the sketch of a union of streams is the
sum of the per-stream sketches, provided every site uses the same hash
families.  This subpackage turns that algebraic fact into an execution
engine:

1. :mod:`.partition` splits the key stream deterministically — by hashed
   key (``"hash"``, domain-partitioning, bit-identical to a sequential
   scan) or into contiguous ranges (``"range"``).
2. :mod:`.pool` runs a fixed-size ``multiprocessing`` worker pool (with an
   inline ``workers=0`` fallback) whose workers pin the coordinator's
   kernel backend.
3. :mod:`.shm` moves shard keys and counters through named
   ``multiprocessing.shared_memory`` segments (:class:`~.shm.SharedBlock`)
   instead of the pickle pipe whenever a process boundary is crossed.
4. :mod:`.worker` executes one shard per task on the resilient
   :class:`~repro.resilience.runtime.StreamRuntime` — per-shard Bernoulli
   shedding with independently spawned seed substreams, per-shard
   checkpoints, resume-on-retry — writing counters straight into the
   shard's shared slot.
5. :mod:`.merge` reduces the per-shard sketches in a fixed-order balanced
   merge tree (:func:`~.merge.merge_tree`, or its bit-identical
   array-level twin :func:`~.merge.reduce_counter_tree` over shared
   counter slots) and aggregates the per-shard sampling ledgers.
6. :mod:`.coordinator` ties it together behind
   :func:`~.coordinator.run_sharded_sketch` (full engine) and
   :func:`~.coordinator.parallel_update` (chunked work-stealing bulk
   update).

See ``docs/PARALLEL.md`` for the sharding model, the determinism
guarantees, and the failure semantics.
"""

from .coordinator import (
    DegradedScanResult,
    ShardedScanResult,
    parallel_update,
    run_sharded_sketch,
)
from .merge import (
    combine_shard_infos,
    merge_tree,
    reduce_counter_tree,
    sample_size_vector,
)
from .partition import (
    ShardPlan,
    hash_partition,
    make_shard_plan,
    range_partition,
    shard_ids,
)
from .pool import WorkerPool, available_cpus
from .shm import SharedBlock
from .worker import PartialUpdateTask, ShardResult, ShardTask, run_partial_update, run_shard

__all__ = [
    "DegradedScanResult",
    "PartialUpdateTask",
    "ShardPlan",
    "ShardResult",
    "ShardTask",
    "ShardedScanResult",
    "SharedBlock",
    "WorkerPool",
    "available_cpus",
    "combine_shard_infos",
    "hash_partition",
    "make_shard_plan",
    "merge_tree",
    "parallel_update",
    "range_partition",
    "reduce_counter_tree",
    "run_partial_update",
    "run_shard",
    "run_sharded_sketch",
    "sample_size_vector",
    "shard_ids",
]
