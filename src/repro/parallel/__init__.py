"""Sharded multiprocess sketching with deterministic merge reduction.

The paper's sketches are *linear*: the sketch of a union of streams is the
sum of the per-stream sketches, provided every site uses the same hash
families.  This subpackage turns that algebraic fact into an execution
engine:

1. :mod:`.partition` splits the key stream deterministically — by hashed
   key (``"hash"``, domain-partitioning, bit-identical to a sequential
   scan) or into contiguous ranges (``"range"``).
2. :mod:`.pool` runs a fixed-size ``multiprocessing`` worker pool (with an
   inline ``workers=0`` fallback) whose workers pin the coordinator's
   kernel backend.
3. :mod:`.worker` executes one shard per task on the resilient
   :class:`~repro.resilience.runtime.StreamRuntime` — per-shard Bernoulli
   shedding with independently spawned seed substreams, per-shard
   checkpoints, resume-on-retry.
4. :mod:`.merge` reduces the per-shard sketches in a fixed-order balanced
   merge tree and aggregates the per-shard sampling ledgers.
5. :mod:`.coordinator` ties it together behind
   :func:`~.coordinator.run_sharded_sketch` (full engine) and
   :func:`~.coordinator.parallel_update` (plain fan-out bulk update).

See ``docs/PARALLEL.md`` for the sharding model, the determinism
guarantees, and the failure semantics.
"""

from .coordinator import ShardedScanResult, parallel_update, run_sharded_sketch
from .merge import combine_shard_infos, merge_tree, sample_size_vector
from .partition import (
    ShardPlan,
    hash_partition,
    make_shard_plan,
    range_partition,
    shard_ids,
)
from .pool import WorkerPool, available_cpus
from .worker import PartialUpdateTask, ShardResult, ShardTask, run_partial_update, run_shard

__all__ = [
    "PartialUpdateTask",
    "ShardPlan",
    "ShardResult",
    "ShardTask",
    "ShardedScanResult",
    "WorkerPool",
    "available_cpus",
    "combine_shard_infos",
    "hash_partition",
    "make_shard_plan",
    "merge_tree",
    "parallel_update",
    "range_partition",
    "run_partial_update",
    "run_shard",
    "run_sharded_sketch",
    "sample_size_vector",
    "shard_ids",
]
