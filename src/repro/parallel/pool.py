"""Worker-pool lifecycle for the sharded sketching engine.

:class:`WorkerPool` is a thin, typed wrapper over
:class:`concurrent.futures.ProcessPoolExecutor` that fixes the three
decisions the rest of :mod:`repro.parallel` relies on:

* **Start method** — ``fork`` when the platform offers it (cheap, and the
  child inherits the already-imported library), otherwise ``spawn``.
  Shard *results* travel back as plain arrays + scalars, so either start
  method yields identical bytes.
* **Backend pinning** — every worker runs an initializer that activates
  the same kernel backend as the coordinator (or an explicit override),
  so per-shard counters are computed by the same code path that a
  sequential scan would use.
* **Inline fallback** — ``workers=0`` degrades to synchronous in-process
  execution with the exact same API.  Tests use this to prove that the
  process boundary itself adds nothing: inline and multiprocess runs of
  the same shard plan produce bit-identical merged sketches.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Optional

from ..errors import ConfigurationError
from ..kernels import backend_name, set_backend

__all__ = ["WorkerPool", "available_cpus"]


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pick_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _initialize_worker(backend: str) -> None:
    """Runs once in every worker process: pin the kernel backend."""
    set_backend(backend)


class _InlineFuture:
    """Synchronous stand-in for a Future (``workers=0`` fallback)."""

    __slots__ = ("_value", "_error")

    def __init__(self, fn, args, kwargs):
        self._value = None
        self._error = None
        try:
            self._value = fn(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - mirrors Future semantics
            self._error = exc

    def result(self, timeout=None):
        if self._error is not None:
            raise self._error
        return self._value

    def done(self) -> bool:
        return True  # computed eagerly at submit time

    def cancel(self) -> bool:
        return False  # already ran; mirrors Future semantics


class WorkerPool:
    """A fixed-size pool of sketching workers.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``0`` runs tasks inline in the
        calling process (deterministic fallback used heavily in tests);
        ``None`` uses :func:`available_cpus`.
    backend:
        Kernel backend name pinned in every worker.  Defaults to the
        coordinator's currently active backend.
    """

    __slots__ = ("_workers", "_backend", "_executor", "_revivals")

    def __init__(self, workers: Optional[int] = None, *, backend: Optional[str] = None):
        if workers is None:
            workers = available_cpus()
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self._workers = int(workers)
        self._backend = backend_name() if backend is None else backend
        self._executor = None
        self._revivals = 0
        if self._workers > 0:
            self._executor = self._make_executor()

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self._workers,
            mp_context=_pick_context(),
            initializer=_initialize_worker,
            initargs=(self._backend,),
        )

    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Configured worker count (0 means inline execution)."""
        return self._workers

    @property
    def backend(self) -> str:
        """Kernel backend pinned in every worker."""
        return self._backend

    @property
    def inline(self) -> bool:
        """True when tasks run synchronously in the calling process."""
        return self._executor is None

    @property
    def revivals(self) -> int:
        """Times a crashed (``BrokenProcessPool``) executor was replaced."""
        return self._revivals

    def submit(self, fn: Callable, *args, **kwargs):
        """Schedule ``fn(*args, **kwargs)``; returns a Future-like handle.

        A SIGKILLed worker breaks a ``ProcessPoolExecutor`` permanently:
        every pending future fails with ``BrokenProcessPool`` and so does
        every later ``submit``.  The failed futures are the supervisor's
        problem (they consume retry attempts like any other shard
        failure); the poisoned executor is ours — it is replaced with a
        fresh one so the retry has somewhere to run.
        """
        if self._executor is None:
            return _InlineFuture(fn, args, kwargs)
        try:
            return self._executor.submit(fn, *args, **kwargs)
        except BrokenProcessPool:
            self._executor.shutdown(wait=False)
            self._executor = self._make_executor()
            self._revivals += 1
            return self._executor.submit(fn, *args, **kwargs)

    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply *fn* to every item, preserving input order in the result."""
        futures = [self.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight tasks."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._workers = 0

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = "inline" if self.inline else "processes"
        return f"WorkerPool(workers={self._workers}, backend={self._backend!r}, mode={mode})"
