"""The coordinator: shard, dispatch, retry, reduce, correct.

:func:`run_sharded_sketch` is the top-level entry point of the parallel
engine.  It partitions the key stream deterministically
(:mod:`.partition`), spawns one independent seed substream per shard from
the root seed (``SeedSequence.spawn`` — reproducible no matter which
process executes which shard), dispatches :class:`~.worker.ShardTask`\\ s
over a :class:`~.pool.WorkerPool`, retries failed shards (resuming from
their per-shard checkpoints when checkpointing is on), reduces the
per-shard sketches through the fixed-order :func:`~.merge.merge_tree`,
and aggregates the per-shard :class:`~repro.sampling.base.SampleInfo`
ledgers for the combined-estimator correction.

Determinism contract (tested in ``tests/parallel/``):

* **hash mode** — the merged sketch is *bit-identical* to a sequential
  scan of the whole stream, for every sketch type and kernel backend,
  because shards partition the key domain and integer counter deltas add
  exactly in any association.
* **range mode** — a key may straddle shards, so with shedding the merged
  sketch is a different (equally valid) random realization: identical in
  distribution to the sequential shedding scan, and identical run-to-run
  for a fixed root seed and shard count.
* The process boundary adds nothing: an inline pool (``workers=0``) and a
  process pool produce bit-identical results for the same plan.

Transport: when the pool is process-backed (or ``shared_memory=True``
forces it), shard keys and counters move through
:class:`~.shm.SharedBlock` segments instead of the multiprocessing pipe —
one shared key block the workers slice, one ``(shards,) + state_shape``
counter block whose slots the workers' sketches write *in place*.  Tasks
and results then carry only descriptors and scalars; the coordinator
backfills :attr:`~.worker.ShardResult.counters` from the block, reduces
the slots with :func:`~.merge.reduce_counter_tree` (bit-identical to
:func:`~.merge.merge_tree` by construction), and destroys both segments
in a ``finally`` so crashes and exhausted retries never leak ``/dev/shm``
entries.

:func:`parallel_update` is the lightweight sibling used by the engine
layer: no shedding, no checkpoints — the key stream is cut into more
chunks than workers and the pool's task queue hands them to whichever
worker frees up first (work-stealing, no static shard assignment), each
chunk accumulating into its own shared counter slot.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import Optional

import numpy as np

from ..errors import ConfigurationError, EstimationError
from ..observability.observer import (
    Observer,
    ObserverSnapshot,
    as_observer,
)
from ..resilience.distributed import BackoffPolicy, ShardSupervisor
from ..resilience.distributed import (
    widened_join_variance,
    widened_self_join_variance,
)
from ..rng import SeedLike, as_seed_sequence
from ..sampling.base import SampleInfo
from ..sketches.base import Sketch
from ..sketches.serialization import build_sketch, sketch_header
from ..variance.bounds import ConfidenceInterval, chebyshev_interval, clt_interval
from .merge import combine_shard_infos, reduce_counter_tree, sample_size_vector
from .partition import SHARD_MODES, ShardPlan, make_shard_plan
from .pool import WorkerPool, available_cpus
from .shm import SharedBlock
from .worker import (
    PartialUpdateTask,
    ShardResult,
    ShardTask,
    run_partial_update,
    run_shard,
)

__all__ = [
    "ShardedScanResult",
    "DegradedScanResult",
    "run_sharded_sketch",
    "parallel_update",
]


def _pick_interval(
    estimate: float, variance: float, confidence: float, method: str
) -> ConfidenceInterval:
    if method == "chebyshev":
        return chebyshev_interval(estimate, variance, confidence=confidence)
    if method == "clt":
        return clt_interval(estimate, variance, confidence=confidence)
    raise ConfigurationError(
        f'interval method must be "chebyshev" or "clt", got {method!r}'
    )


@dataclass(frozen=True)
class ShardedScanResult:
    """Everything a sharded scan produced, reduced and ready to query."""

    sketch: Sketch
    shard_results: tuple
    plan: ShardPlan
    header: dict
    retries: int
    hedges: int = 0

    # ------------------------------------------------------------------
    # Sampling ledger
    # ------------------------------------------------------------------

    @property
    def mode(self) -> str:
        """The shard mode the scan ran under (``"hash"`` or ``"range"``)."""
        return self.plan.mode

    @property
    def p(self) -> float:
        """The common Bernoulli keep-rate the shards ran at."""
        return self.info().probability

    def infos(self) -> list:
        """Per-shard :class:`~repro.sampling.base.SampleInfo`, in shard order."""
        return [result.info() for result in self.shard_results]

    def info(self) -> SampleInfo:
        """The whole-stream sampling ledger (per-shard ledgers aggregated)."""
        return combine_shard_infos(self.infos())

    def sample_sizes(self) -> np.ndarray:
        """Per-shard realized sample sizes (variance accounting input)."""
        return sample_size_vector(self.infos())

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------

    def self_join_size(self) -> float:
        """Unbiased full-stream ``F₂`` estimate from the merged sketch.

        Workers insert kept tuples Horvitz–Thompson-weighted, so the merged
        counters estimate the *unsampled* stream directly; the additive
        correction ``A = N·(1−p)/p`` (Prop 14's piecewise form, computed
        from the aggregated ledger) removes the sampling-noise inflation
        of the second moment.
        """
        info = self.info()
        correction = info.population_size * (1.0 - info.probability) / info.probability
        return self.sketch.second_moment() - correction

    def join_size(self, other: "ShardedScanResult") -> float:
        """Unbiased join-size estimate against another sharded scan.

        HT-weighted counters need no trailing ``1/(pq)`` scale (Prop 13's
        weighted form): the plain inner product is already unbiased.
        Joining against a :class:`DegradedScanResult` delegates to its
        shard-aware estimator (the correction is symmetric).
        """
        if isinstance(other, DegradedScanResult):
            return other.join_size(self)
        return self.sketch.inner_product(other.sketch)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def surviving_shards(self) -> tuple:
        """Shard indices that produced a result, ascending."""
        return tuple(result.index for result in self.shard_results)

    def _result_for(self, index: int) -> ShardResult:
        for result in self.shard_results:
            if result.index == index:
                return result
        raise ConfigurationError(
            f"shard {index} has no result (lost or out of range)"
        )

    def shard_sketch(self, index: int) -> Sketch:
        """Rebuild shard *index*'s individual sketch (families + counters)."""
        result = self._result_for(index)
        sketch = build_sketch(self.header)
        sketch._state()[...] = result.counters
        return sketch

    def _partial_merge(self, indices) -> Sketch:
        """Merged sketch over a subset of shards, in fixed reduce order."""
        stack = np.stack([self._result_for(i).counters for i in indices])
        sketch = build_sketch(self.header)
        sketch._state()[...] = reduce_counter_tree(stack)
        return sketch

    def __repr__(self) -> str:
        return (
            f"ShardedScanResult(shards={len(self.shard_results)}, "
            f"mode={self.mode!r}, retries={self.retries}, "
            f"sketch={self.sketch!r})"
        )


@dataclass(frozen=True)
class DegradedScanResult(ShardedScanResult):
    """A sharded scan that lost shards but degraded instead of failing.

    Returned by :func:`run_sharded_sketch` under ``degradation="degrade"``
    when at least one shard exhausted its retries.  ``shard_results``
    holds only the *survivors* (each :class:`~.worker.ShardResult` keeps
    its original shard ``index``); ``lost_shards``/``failures`` record
    what was given up and why.

    The estimators exploit the paper's own sampling math: under hash
    partitioning the surviving shards observe a Bernoulli
    ``q = survived_fraction`` sample of the *key space*, so the survivor
    estimate scaled by ``1/q`` stays unbiased and the price is a
    quantified variance increase — exposed through
    :meth:`self_join_interval` / :meth:`join_interval`, whose widened
    bounds come from
    :func:`repro.resilience.distributed.widened_self_join_variance`.
    """

    lost_shards: tuple = ()
    failures: tuple = ()

    @property
    def lost_fraction(self) -> float:
        """Fraction of the key space on shards that were given up."""
        return len(self.lost_shards) / self.plan.shards

    @property
    def survived_fraction(self) -> float:
        """Key-survival probability ``q`` of the degraded run."""
        return 1.0 - self.lost_fraction

    # ------------------------------------------------------------------
    # Estimates (scaled to the full stream)
    # ------------------------------------------------------------------

    def population_estimate(self) -> float:
        """Estimated full-stream tuple count (survivor count over ``q``)."""
        return self.info().population_size / self.survived_fraction

    def self_join_size(self) -> float:
        """Unbiased full-stream ``F₂`` estimate despite the lost shards."""
        return super().self_join_size() / self.survived_fraction

    def self_join_interval(
        self,
        confidence: float = 0.95,
        *,
        method: str = "chebyshev",
        extra_variance: float = 0.0,
    ) -> ConfidenceInterval:
        """Confidence interval honestly widened for the lost key space.

        The variance bound adds the key-loss term ``(1-q)/q·F₄`` and the
        ``1/q``-scaled shedding variance (both via conservative plug-ins;
        see :func:`~repro.resilience.distributed.widened_self_join_variance`).
        *extra_variance* lets callers add their sketch's own estimator
        variance (e.g. ``averaged_agms_self_join_variance``) on top.
        """
        estimate = self.self_join_size()
        variance = widened_self_join_variance(
            estimate,
            survived_fraction=self.survived_fraction,
            probability=self.p,
            population=self.population_estimate(),
        )
        return _pick_interval(
            estimate, variance + float(extra_variance), confidence, method
        )

    def _common_survivors(self, other: "ShardedScanResult") -> tuple:
        if self.plan.shards != other.plan.shards:
            raise ConfigurationError(
                f"cannot join scans with different shard counts "
                f"({self.plan.shards} vs {other.plan.shards})"
            )
        if self.mode != "hash" or other.mode != "hash":
            raise ConfigurationError(
                "degraded joins need hash-partitioned scans on both sides "
                "(key-space alignment is what makes the correction valid)"
            )
        common = sorted(
            set(self.surviving_shards()) & set(other.surviving_shards())
        )
        if not common:
            raise EstimationError(
                "no shard survived on both sides; nothing to estimate from"
            )
        return tuple(common)

    def join_size(self, other: "ShardedScanResult") -> float:
        """Unbiased join-size estimate from the commonly surviving shards.

        Both sides are re-merged over the shards *both* runs still have
        (a lost shard on either side removes that key-space slice from
        the product), and the inner product is scaled by the common
        survival fraction.
        """
        common = self._common_survivors(other)
        q = len(common) / self.plan.shards
        left = self._partial_merge(common)
        right = other._partial_merge(common)
        return left.inner_product(right) / q

    def join_interval(
        self,
        other: "ShardedScanResult",
        confidence: float = 0.95,
        *,
        method: str = "chebyshev",
        extra_variance: float = 0.0,
    ) -> ConfidenceInterval:
        """Widened confidence interval for :meth:`join_size`."""
        common = self._common_survivors(other)
        q = len(common) / self.plan.shards
        estimate = self.join_size(other)
        population_f = sum(
            self._result_for(i).info().population_size for i in common
        ) / q
        population_g = sum(
            other._result_for(i).info().population_size for i in common
        ) / q
        variance = widened_join_variance(
            estimate,
            survived_fraction=q,
            probability_f=self.p,
            probability_g=other.p,
            population_f=population_f,
            population_g=population_g,
        )
        return _pick_interval(
            estimate, variance + float(extra_variance), confidence, method
        )

    def __repr__(self) -> str:
        return (
            f"DegradedScanResult(survivors={len(self.shard_results)}/"
            f"{self.plan.shards}, lost={self.lost_shards}, "
            f"retries={self.retries}, sketch={self.sketch!r})"
        )


def _default_shards(shards: Optional[int], pool: Optional[WorkerPool]) -> int:
    if shards is not None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        return int(shards)
    if pool is not None and pool.workers > 0:
        return pool.workers
    return max(1, available_cpus())


def _spawn_shard_seeds(seed: SeedLike, shards: int) -> list:
    root = as_seed_sequence(seed)
    return root.spawn(shards)


def _use_shared_memory(shared_memory: Optional[bool], pool: WorkerPool) -> bool:
    """Resolve the ``shared_memory`` tri-state against the pool's nature.

    ``None`` (the default) enables shared-memory transport exactly when
    results would otherwise be pickled across a process boundary; inline
    pools keep plain in-process arrays unless a caller forces the segment
    path (tests exercise the lifecycle that way).
    """
    if shared_memory is None:
        return not pool.inline
    return bool(shared_memory)


def _shared_key_block(parts) -> tuple:
    """One int64 key segment holding every shard's slice, plus the ranges."""
    total = int(sum(part.size for part in parts))
    block = SharedBlock.create((total,), np.int64)
    view = block.array
    ranges = []
    offset = 0
    for part in parts:
        stop = offset + int(part.size)
        view[offset:stop] = part
        ranges.append((offset, stop))
        offset = stop
    return block, ranges


def _read_heartbeat(beats: np.ndarray, slot: int) -> int:
    return int(beats[slot])


class _DispatchHandle:
    """What the coordinator's dispatcher hands the supervisor per attempt."""

    __slots__ = ("future", "progress", "slot")

    def __init__(self, future, progress, slot) -> None:
        self.future = future
        self.progress = progress
        self.slot = slot


def run_sharded_sketch(
    keys,
    template: Sketch,
    *,
    shards: Optional[int] = None,
    mode: str = "hash",
    p: float = 1.0,
    seed: SeedLike = None,
    pool: Optional[WorkerPool] = None,
    chunk_size: int = 4096,
    checkpoint_dir=None,
    checkpoint_every: int = 16,
    max_retries: int = 2,
    injector=None,
    observer: Optional[Observer] = None,
    shared_memory: Optional[bool] = None,
    deadline: Optional[float] = None,
    hedge_after: Optional[float] = None,
    max_hedges: int = 1,
    degradation: str = "fail",
    backoff: Optional[BackoffPolicy] = None,
    poll_interval: float = 0.005,
    _worker=run_shard,
) -> ShardedScanResult:
    """Sketch *keys* across shards and reduce to one corrected result.

    Parameters
    ----------
    keys:
        The full key stream (1-D integer array).
    template:
        A sketch defining the families/shape every shard must share.  The
        template itself is *not* mutated; its header is shipped to the
        workers and each shard builds a fresh zeroed copy.
    shards:
        Shard count; defaults to the pool's worker count (or the CPU
        count for an inline/absent pool).
    mode:
        ``"hash"`` (bit-identical to sequential) or ``"range"``
        (contiguous slices; equivalent in distribution under shedding).
    p, seed:
        Bernoulli keep-rate and the *root* seed; each shard sheds with an
        independently spawned substream of it.
    pool:
        A :class:`~.pool.WorkerPool`; ``None`` runs shards inline.
    checkpoint_dir, checkpoint_every:
        When set, every shard checkpoints under
        ``<checkpoint_dir>/shard-NNN`` and failed shards resume from
        their newest snapshot instead of restarting.
    max_retries:
        Re-dispatch attempts per shard before giving up with
        :class:`~repro.errors.RetryExhaustedError`.
    injector:
        Test-only :class:`~repro.resilience.chaos.ChaosInjector` threaded
        into every shard run; requires an inline pool (the injector's
        fault budget must be shared across retries).
    observer:
        Optional :class:`~repro.observability.Observer`.  The coordinator
        opens a ``parallel.scan`` root span, ships its context to every
        worker (each builds a private shard observer), and absorbs the
        workers' observations back in fixed shard order — so one observer
        ends up with the merged metrics and the full multi-process trace.
    shared_memory:
        ``None`` (default) moves keys and counters through
        :class:`~.shm.SharedBlock` segments whenever the pool crosses a
        process boundary; ``True``/``False`` force the transport either
        way.  The choice never changes a single counter bit — only how
        the bytes travel.
    deadline:
        Seconds a dispatch may go without progress (heartbeat ticks over
        a process pool, wall clock otherwise) before the supervisor
        abandons it as hung and retries; consumes a retry attempt.
    hedge_after, max_hedges:
        Straggler hedging: after *hedge_after* seconds without a result
        the supervisor launches a duplicate dispatch (up to *max_hedges*
        per shard); first result wins, the loser is cancelled.  Shard
        work is deterministic, so hedging can never change a bit.
    degradation:
        ``"fail"`` (default) raises
        :class:`~repro.errors.RetryExhaustedError` when a shard exhausts
        its retries; ``"degrade"`` (hash mode only) records the loss and
        returns a :class:`DegradedScanResult` built from the surviving
        shards, with estimates corrected for the lost key fraction.
    backoff:
        A shared :class:`~repro.resilience.distributed.BackoffPolicy`
        spacing retries (per-shard schedules spawned from its seed).
        ``None`` retries immediately, as the engine always has.
    poll_interval:
        Supervisor polling cadence while deadlines/hedges are armed.
    """
    obs = as_observer(observer)
    shards = _default_shards(shards, pool)
    if degradation not in ("fail", "degrade"):
        raise ConfigurationError(
            f'degradation must be "fail" or "degrade", got {degradation!r}'
        )
    if degradation == "degrade" and mode != "hash":
        raise ConfigurationError(
            'degradation="degrade" needs mode="hash": only hash '
            "partitioning makes a lost shard a Bernoulli sample of the "
            "key space (range shards are a biased slice)"
        )
    with obs.span("parallel.scan", mode=mode, shards=shards):
        with obs.span("parallel.partition"):
            plan = make_shard_plan(keys, shards, mode=mode)
        header = sketch_header(template)
        seeds = _spawn_shard_seeds(seed, plan.shards)
        trace_parent = ()
        if obs.enabled:
            context = obs.trace_context()
            trace_parent = (
                context.trace_id,
                context.span_id,
                context.process,
            )
        owns_pool = pool is None
        if owns_pool:
            pool = WorkerPool(0)
        if injector is not None and not pool.inline:
            raise ConfigurationError(
                "a chaos injector shares mutable fault budgets with the "
                "coordinator and therefore needs an inline pool (workers=0)"
            )
        use_shm = _use_shared_memory(shared_memory, pool)
        supervised = deadline is not None or hedge_after is not None
        key_block = counter_block = heartbeat_block = None
        key_ranges = []
        # Exclusive dispatches (hedges; retries after a deadline
        # abandonment) may race a predecessor that is still writing, so
        # they bind spare counter slots past the per-shard ones.  A spare
        # slot is never reused within a run; when they run out the
        # dispatch falls back to piping its counters.
        spare_slots: list = []
        heartbeat_slots: list = []

        def make_task(
            index: int, attempt: int, resume: bool, slot, heartbeat_slot: int
        ) -> ShardTask:
            child = seeds[index]
            return ShardTask(
                index=index,
                keys=None if use_shm else plan.parts[index],
                header=header,
                p=p,
                seed_entropy=child.entropy,
                seed_spawn_key=tuple(child.spawn_key),
                chunk_size=chunk_size,
                checkpoint_dir=None if checkpoint_dir is None else str(checkpoint_dir),
                checkpoint_every=checkpoint_every,
                resume=resume,
                # Process workers are backend-pinned by the pool initializer;
                # inline runs use the coordinator's active backend as-is.
                backend=None,
                observe=obs.enabled,
                trace_parent=trace_parent,
                shm_keys=() if key_block is None else key_block.descriptor,
                keys_range=key_ranges[index] if use_shm else (),
                shm_counters=(
                    () if counter_block is None or slot is None
                    else counter_block.descriptor
                ),
                attempt=attempt,
                shm_slot=-1 if slot is None else int(slot),
                shm_heartbeat=(
                    () if heartbeat_block is None or heartbeat_slot < 0
                    else heartbeat_block.descriptor
                ),
                heartbeat_slot=heartbeat_slot,
            )

        def dispatch(
            index: int, attempt: int, resume: bool, exclusive: bool
        ) -> _DispatchHandle:
            slot = None
            if use_shm:
                if not exclusive:
                    slot = index
                elif spare_slots:
                    slot = spare_slots.pop(0)
            heartbeat_slot = heartbeat_slots.pop(0) if heartbeat_slots else -1
            task = make_task(index, attempt, resume, slot, heartbeat_slot)
            if injector is not None:
                future = pool.submit(_worker, task, injector=injector)
            else:
                future = pool.submit(_worker, task)
            progress = None
            if heartbeat_block is not None and heartbeat_slot >= 0:
                progress = partial(
                    _read_heartbeat, heartbeat_block.array, heartbeat_slot
                )
            return _DispatchHandle(future, progress, slot)

        try:
            if use_shm:
                spares = (
                    min(8, plan.shards * (max_hedges + max_retries))
                    if supervised
                    else 0
                )
                with obs.span("parallel.shm.setup", shards=plan.shards):
                    key_block, key_ranges = _shared_key_block(plan.parts)
                    state_shape = template._state().shape
                    counter_block = SharedBlock.create(
                        (plan.shards + spares,) + state_shape, np.float64
                    )
                spare_slots = list(range(plan.shards, plan.shards + spares))
                segments = [key_block, counter_block]
                if supervised and not pool.inline:
                    capacity = plan.shards * (1 + max_retries + max_hedges)
                    heartbeat_block = SharedBlock.create((capacity,), np.int64)
                    heartbeat_slots = list(range(capacity))
                    segments.append(heartbeat_block)
                obs.counter("parallel.shm.segments").inc(len(segments))
                obs.counter("parallel.shm.bytes").inc(
                    sum(segment.nbytes for segment in segments)
                )
            supervisor = ShardSupervisor(
                plan.shards,
                max_retries=max_retries,
                deadline=deadline,
                hedge_after=hedge_after,
                max_hedges=max_hedges,
                degradation=degradation,
                backoff=backoff,
                resume_retries=checkpoint_dir is not None,
                poll_interval=poll_interval,
                observer=obs,
            )
            with obs.span("parallel.collect"):
                outcome = supervisor.run(dispatch)
            results: dict[int, ShardResult] = {}
            for index, handle in outcome.winners.items():
                result = handle.future.result()
                if use_shm and handle.slot is not None:
                    # Counters never crossed the pipe: backfill from the
                    # winning slot before the segments go away.
                    result = replace(
                        result,
                        counters=np.array(
                            counter_block.array[handle.slot], copy=True
                        ),
                    )
                results[index] = result
            ordered = tuple(results[index] for index in sorted(results))
            for result in ordered:
                if result.metrics is not None:
                    obs.absorb(
                        ObserverSnapshot(metrics=result.metrics, spans=result.spans)
                    )
            obs.counter("parallel.shards.completed").inc(len(ordered))
            with obs.span("parallel.merge", shards=len(ordered)):
                merged = build_sketch(header)
                merged._state()[...] = reduce_counter_tree(
                    np.stack([result.counters for result in ordered])
                )
        finally:
            if owns_pool:
                pool.close()
            for block in (key_block, counter_block, heartbeat_block):
                if block is not None:
                    block.destroy()
    if outcome.lost:
        lost = tuple(sorted(outcome.lost))
        return DegradedScanResult(
            sketch=merged,
            shard_results=ordered,
            plan=plan,
            header=header,
            retries=outcome.retries,
            hedges=outcome.hedges,
            lost_shards=lost,
            failures=tuple(outcome.lost[index] for index in lost),
        )
    return ShardedScanResult(
        sketch=merged,
        shard_results=ordered,
        plan=plan,
        header=header,
        retries=outcome.retries,
        hedges=outcome.hedges,
    )


#: Smallest chunk the auto-chunker will cut — below this the per-task
#: dispatch overhead outweighs any load-balancing gain.
_MIN_AUTO_CHUNK = 16_384

#: Auto-chunk target: this many tasks per worker keeps the pool's queue
#: deep enough that a straggler chunk never idles the other workers.
_CHUNKS_PER_WORKER = 4


def _chunk_ranges(
    n: int, shards: int, workers: int, chunk_size: Optional[int]
) -> list:
    """Contiguous ``(start, stop)`` task ranges over an ``n``-key stream."""
    if chunk_size is not None:
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        step = int(chunk_size)
    else:
        target = max(shards, _CHUNKS_PER_WORKER * workers, 1)
        step = max(_MIN_AUTO_CHUNK, -(-n // target))
    return [(start, min(start + step, n)) for start in range(0, n, step)]


def parallel_update(
    sketch: Sketch,
    keys,
    *,
    shards: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
    mode: str = "hash",
    shared_memory: Optional[bool] = None,
    chunk_size: Optional[int] = None,
) -> Sketch:
    """Bulk-update *sketch* with *keys*, fanned out over the pool.

    Equivalent — bit-for-bit — to ``sketch.update(keys)``: with no
    shedding every counter delta is an exactly-represented integer sum,
    so any split of the stream adds back to identical floats.  The stream
    is therefore cut into contiguous chunks (more chunks than workers;
    the pool's task queue hands them to whichever worker frees up first —
    dynamic work-stealing, no static shard assignment), each chunk
    accumulates into its own slot of a shared counter block, and the
    slots reduce in the fixed :func:`~.merge.reduce_counter_tree` order.

    *mode* is validated for API compatibility with
    :func:`run_sharded_sketch` but no longer selects a partitioner: both
    documented modes were already bit-identical here, and contiguous
    chunks make the shared key block a single copy of the input (hash
    partitioning would pay an extra argsort for nothing).  *chunk_size*
    overrides the auto-chunker (which targets a few chunks per worker,
    never below 16 Ki keys).  Returns *sketch* for chaining.
    """
    if mode not in SHARD_MODES:
        raise ConfigurationError(
            f"unknown shard mode {mode!r}; expected one of {SHARD_MODES}"
        )
    shards = _default_shards(shards, pool)
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ConfigurationError(f"keys must be 1-D, got shape {keys.shape}")
    if keys.size and not np.issubdtype(keys.dtype, np.integer):
        raise ConfigurationError("parallel_update needs integer keys")
    keys = keys.astype(np.int64, copy=False)
    if keys.size == 0:
        return sketch
    header = sketch_header(sketch)
    state_shape = sketch._state().shape
    owns_pool = pool is None
    if owns_pool:
        pool = WorkerPool(0)
    use_shm = _use_shared_memory(shared_memory, pool)
    key_block = counter_block = None
    try:
        ranges = _chunk_ranges(int(keys.size), shards, pool.workers, chunk_size)
        if use_shm:
            key_block = SharedBlock.create((int(keys.size),), np.int64)
            key_block.array[...] = keys
            counter_block = SharedBlock.create(
                (len(ranges),) + state_shape, np.float64
            )
            tasks = [
                PartialUpdateTask(
                    index=index,
                    keys=None,
                    header=header,
                    shm_keys=key_block.descriptor,
                    keys_range=key_range,
                    shm_counters=counter_block.descriptor,
                )
                for index, key_range in enumerate(ranges)
            ]
            for future in [pool.submit(run_partial_update, t) for t in tasks]:
                future.result()
            reduced = reduce_counter_tree(counter_block.array)
        else:
            tasks = [
                PartialUpdateTask(
                    index=index, keys=keys[start:stop], header=header
                )
                for index, (start, stop) in enumerate(ranges)
            ]
            reduced = reduce_counter_tree(
                np.stack(pool.map(run_partial_update, tasks))
            )
        sketch._state()[...] += reduced
    finally:
        if owns_pool:
            pool.close()
        for block in (key_block, counter_block):
            if block is not None:
                block.destroy()
    return sketch
