"""The coordinator: shard, dispatch, retry, reduce, correct.

:func:`run_sharded_sketch` is the top-level entry point of the parallel
engine.  It partitions the key stream deterministically
(:mod:`.partition`), spawns one independent seed substream per shard from
the root seed (``SeedSequence.spawn`` — reproducible no matter which
process executes which shard), dispatches :class:`~.worker.ShardTask`\\ s
over a :class:`~.pool.WorkerPool`, retries failed shards (resuming from
their per-shard checkpoints when checkpointing is on), reduces the
per-shard sketches through the fixed-order :func:`~.merge.merge_tree`,
and aggregates the per-shard :class:`~repro.sampling.base.SampleInfo`
ledgers for the combined-estimator correction.

Determinism contract (tested in ``tests/parallel/``):

* **hash mode** — the merged sketch is *bit-identical* to a sequential
  scan of the whole stream, for every sketch type and kernel backend,
  because shards partition the key domain and integer counter deltas add
  exactly in any association.
* **range mode** — a key may straddle shards, so with shedding the merged
  sketch is a different (equally valid) random realization: identical in
  distribution to the sequential shedding scan, and identical run-to-run
  for a fixed root seed and shard count.
* The process boundary adds nothing: an inline pool (``workers=0``) and a
  process pool produce bit-identical results for the same plan.

:func:`parallel_update` is the lightweight sibling used by the engine
layer: no shedding, no checkpoints — just fan a bulk ``update()`` out
over shards and fold the partial counters back into an existing sketch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError, RetryExhaustedError
from ..observability.observer import (
    Observer,
    ObserverSnapshot,
    as_observer,
)
from ..rng import SeedLike, as_seed_sequence
from ..sampling.base import SampleInfo
from ..sketches.base import Sketch
from ..sketches.serialization import build_sketch, sketch_header
from .merge import combine_shard_infos, merge_tree, sample_size_vector
from .partition import ShardPlan, make_shard_plan
from .pool import WorkerPool, available_cpus
from .worker import (
    PartialUpdateTask,
    ShardResult,
    ShardTask,
    run_partial_update,
    run_shard,
)

__all__ = ["ShardedScanResult", "run_sharded_sketch", "parallel_update"]


@dataclass(frozen=True)
class ShardedScanResult:
    """Everything a sharded scan produced, reduced and ready to query."""

    sketch: Sketch
    shard_results: tuple
    plan: ShardPlan
    header: dict
    retries: int

    # ------------------------------------------------------------------
    # Sampling ledger
    # ------------------------------------------------------------------

    @property
    def mode(self) -> str:
        """The shard mode the scan ran under (``"hash"`` or ``"range"``)."""
        return self.plan.mode

    @property
    def p(self) -> float:
        """The common Bernoulli keep-rate the shards ran at."""
        return self.info().probability

    def infos(self) -> list:
        """Per-shard :class:`~repro.sampling.base.SampleInfo`, in shard order."""
        return [result.info() for result in self.shard_results]

    def info(self) -> SampleInfo:
        """The whole-stream sampling ledger (per-shard ledgers aggregated)."""
        return combine_shard_infos(self.infos())

    def sample_sizes(self) -> np.ndarray:
        """Per-shard realized sample sizes (variance accounting input)."""
        return sample_size_vector(self.infos())

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------

    def self_join_size(self) -> float:
        """Unbiased full-stream ``F₂`` estimate from the merged sketch.

        Workers insert kept tuples Horvitz–Thompson-weighted, so the merged
        counters estimate the *unsampled* stream directly; the additive
        correction ``A = N·(1−p)/p`` (Prop 14's piecewise form, computed
        from the aggregated ledger) removes the sampling-noise inflation
        of the second moment.
        """
        info = self.info()
        correction = info.population_size * (1.0 - info.probability) / info.probability
        return self.sketch.second_moment() - correction

    def join_size(self, other: "ShardedScanResult") -> float:
        """Unbiased join-size estimate against another sharded scan.

        HT-weighted counters need no trailing ``1/(pq)`` scale (Prop 13's
        weighted form): the plain inner product is already unbiased.
        """
        return self.sketch.inner_product(other.sketch)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def shard_sketch(self, index: int) -> Sketch:
        """Rebuild shard *index*'s individual sketch (families + counters)."""
        result = self.shard_results[index]
        sketch = build_sketch(self.header)
        sketch._state()[...] = result.counters
        return sketch

    def __repr__(self) -> str:
        return (
            f"ShardedScanResult(shards={len(self.shard_results)}, "
            f"mode={self.mode!r}, retries={self.retries}, "
            f"sketch={self.sketch!r})"
        )


def _default_shards(shards: Optional[int], pool: Optional[WorkerPool]) -> int:
    if shards is not None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        return int(shards)
    if pool is not None and pool.workers > 0:
        return pool.workers
    return max(1, available_cpus())


def _spawn_shard_seeds(seed: SeedLike, shards: int) -> list:
    root = as_seed_sequence(seed)
    return root.spawn(shards)


def run_sharded_sketch(
    keys,
    template: Sketch,
    *,
    shards: Optional[int] = None,
    mode: str = "hash",
    p: float = 1.0,
    seed: SeedLike = None,
    pool: Optional[WorkerPool] = None,
    chunk_size: int = 4096,
    checkpoint_dir=None,
    checkpoint_every: int = 16,
    max_retries: int = 2,
    injector=None,
    observer: Optional[Observer] = None,
    _worker=run_shard,
) -> ShardedScanResult:
    """Sketch *keys* across shards and reduce to one corrected result.

    Parameters
    ----------
    keys:
        The full key stream (1-D integer array).
    template:
        A sketch defining the families/shape every shard must share.  The
        template itself is *not* mutated; its header is shipped to the
        workers and each shard builds a fresh zeroed copy.
    shards:
        Shard count; defaults to the pool's worker count (or the CPU
        count for an inline/absent pool).
    mode:
        ``"hash"`` (bit-identical to sequential) or ``"range"``
        (contiguous slices; equivalent in distribution under shedding).
    p, seed:
        Bernoulli keep-rate and the *root* seed; each shard sheds with an
        independently spawned substream of it.
    pool:
        A :class:`~.pool.WorkerPool`; ``None`` runs shards inline.
    checkpoint_dir, checkpoint_every:
        When set, every shard checkpoints under
        ``<checkpoint_dir>/shard-NNN`` and failed shards resume from
        their newest snapshot instead of restarting.
    max_retries:
        Re-dispatch attempts per shard before giving up with
        :class:`~repro.errors.RetryExhaustedError`.
    injector:
        Test-only :class:`~repro.resilience.chaos.ChaosInjector` threaded
        into every shard run; requires an inline pool (the injector's
        fault budget must be shared across retries).
    observer:
        Optional :class:`~repro.observability.Observer`.  The coordinator
        opens a ``parallel.scan`` root span, ships its context to every
        worker (each builds a private shard observer), and absorbs the
        workers' observations back in fixed shard order — so one observer
        ends up with the merged metrics and the full multi-process trace.
    """
    obs = as_observer(observer)
    shards = _default_shards(shards, pool)
    with obs.span("parallel.scan", mode=mode, shards=shards):
        with obs.span("parallel.partition"):
            plan = make_shard_plan(keys, shards, mode=mode)
        header = sketch_header(template)
        seeds = _spawn_shard_seeds(seed, plan.shards)
        trace_parent = ()
        if obs.enabled:
            context = obs.trace_context()
            trace_parent = (
                context.trace_id,
                context.span_id,
                context.process,
            )
        owns_pool = pool is None
        if owns_pool:
            pool = WorkerPool(0)
        if injector is not None and not pool.inline:
            raise ConfigurationError(
                "a chaos injector shares mutable fault budgets with the "
                "coordinator and therefore needs an inline pool (workers=0)"
            )

        def make_task(index: int, resume: bool) -> ShardTask:
            child = seeds[index]
            return ShardTask(
                index=index,
                keys=plan.parts[index],
                header=header,
                p=p,
                seed_entropy=child.entropy,
                seed_spawn_key=tuple(child.spawn_key),
                chunk_size=chunk_size,
                checkpoint_dir=None if checkpoint_dir is None else str(checkpoint_dir),
                checkpoint_every=checkpoint_every,
                resume=resume,
                # Process workers are backend-pinned by the pool initializer;
                # inline runs use the coordinator's active backend as-is.
                backend=None,
                observe=obs.enabled,
                trace_parent=trace_parent,
            )

        def dispatch(index: int, resume: bool):
            task = make_task(index, resume)
            if injector is not None:
                return pool.submit(_worker, task, injector=injector)
            return pool.submit(_worker, task)

        try:
            with obs.span("parallel.collect"):
                pending = {
                    index: dispatch(index, False) for index in range(plan.shards)
                }
                results: dict[int, ShardResult] = {}
                attempts = {index: 0 for index in pending}
                retries = 0
                while pending:
                    still_pending = {}
                    for index, future in pending.items():
                        try:
                            results[index] = future.result()
                        except Exception as exc:
                            attempts[index] += 1
                            if attempts[index] > max_retries:
                                raise RetryExhaustedError(
                                    f"shard {index} failed {attempts[index]} "
                                    "time(s); giving up"
                                ) from exc
                            retries += 1
                            obs.counter("parallel.shard.retries").inc()
                            # Resume from the shard's checkpoint when one can
                            # exist; otherwise rerun the shard from scratch.
                            still_pending[index] = dispatch(
                                index, resume=checkpoint_dir is not None
                            )
                    pending = still_pending
        finally:
            if owns_pool:
                pool.close()

        ordered = tuple(results[index] for index in range(plan.shards))
        for result in ordered:
            if result.metrics is not None:
                obs.absorb(
                    ObserverSnapshot(metrics=result.metrics, spans=result.spans)
                )
        obs.counter("parallel.shards.completed").inc(plan.shards)
        with obs.span("parallel.merge", shards=plan.shards):
            shard_sketches = []
            for result in ordered:
                sketch = build_sketch(header)
                sketch._state()[...] = result.counters
                shard_sketches.append(sketch)
            merged = merge_tree(shard_sketches)
    return ShardedScanResult(
        sketch=merged,
        shard_results=ordered,
        plan=plan,
        header=header,
        retries=retries,
    )


def parallel_update(
    sketch: Sketch,
    keys,
    *,
    shards: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
    mode: str = "hash",
) -> Sketch:
    """Bulk-update *sketch* with *keys* using sharded workers.

    Equivalent to ``sketch.update(keys)`` — bit-identical for both shard
    modes, since there is no shedding — but the hashing/accumulation work
    fans out across the pool.  Returns *sketch* for chaining.
    """
    shards = _default_shards(shards, pool)
    plan = make_shard_plan(keys, shards, mode=mode)
    header = sketch_header(sketch)
    owns_pool = pool is None
    if owns_pool:
        pool = WorkerPool(0)
    try:
        tasks = [
            PartialUpdateTask(index=index, keys=part, header=header)
            for index, part in enumerate(plan.parts)
        ]
        partials = pool.map(run_partial_update, tasks)
    finally:
        if owns_pool:
            pool.close()
    shard_sketches = []
    for counters in partials:
        shard = build_sketch(header)
        shard._state()[...] = counters
        shard_sketches.append(shard)
    sketch.merge(merge_tree(shard_sketches))
    return sketch
