"""Deterministic stream partitioning for the sharded sketching engine.

Two shard modes, both pure functions of the key array (no RNG anywhere, so
the shard assignment is identical across runs, processes, and machines):

* **hash** — every occurrence of a key lands in the shard
  ``splitmix64(key) mod shards``.  Shards partition the *domain*, so the
  per-shard frequency vectors have disjoint supports; merged sketches are
  bit-identical to a sequential scan (integer counter deltas add exactly
  in any association), and per-shard estimator variances sum exactly to
  the whole-stream value (see
  :func:`repro.variance.sampling.sharded_bernoulli_self_join_variance`).
* **range** — contiguous, near-equal slices of the arrival order
  (``numpy.array_split``).  A key may span several shards; with per-shard
  Bernoulli shedding the executed draw is still exactly one Bernoulli(p)
  design over the full stream (tuple-level independence), so estimates
  are equivalent in distribution to the sequential shedding scan.

Within a shard the arrival order of the full stream is preserved (stable
partitioning) — a prerequisite for the bit-identity guarantee, since the
kernel backends accumulate per-bucket partial sums in stream order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, DomainError

__all__ = ["ShardPlan", "shard_ids", "hash_partition", "range_partition", "make_shard_plan"]

#: Shard modes accepted throughout :mod:`repro.parallel`.
SHARD_MODES = ("hash", "range")

# splitmix64 finalizer constants (Steele, Lea & Flood 2014) — a fixed,
# seedless 64-bit mix so shard placement never depends on any RNG state.
_C1 = np.uint64(0x9E3779B97F4A7C15)
_C2 = np.uint64(0xBF58476D1CE4E5B9)
_C3 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


@dataclass(frozen=True)
class ShardPlan:
    """One executed partitioning: the mode and the per-shard key arrays."""

    mode: str
    parts: tuple

    @property
    def shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.parts)

    @property
    def counts(self) -> np.ndarray:
        """Tuples per shard, in shard order."""
        return np.asarray([part.size for part in self.parts], dtype=np.int64)

    def __repr__(self) -> str:
        return f"ShardPlan(mode={self.mode!r}, counts={self.counts.tolist()})"


def _validate_keys(keys) -> np.ndarray:
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise DomainError(f"keys must be 1-D, got shape {keys.shape}")
    if keys.size and not np.issubdtype(keys.dtype, np.integer):
        raise DomainError("shard partitioning needs integer keys")
    return keys.astype(np.int64, copy=False)


def _mix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 view of *values*."""
    z = values.astype(np.uint64) + _C1
    z = (z ^ (z >> _S30)) * _C2
    z = (z ^ (z >> _S27)) * _C3
    return z ^ (z >> _S31)


def shard_ids(keys, shards: int) -> np.ndarray:
    """The hash-mode shard id of every key (``splitmix64(key) mod shards``)."""
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    keys = _validate_keys(keys)
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    return (_mix64(keys) % np.uint64(shards)).astype(np.int64)


def hash_partition(keys, shards: int) -> list:
    """Split *keys* into *shards* arrays by hashed key, order-preserving.

    Every occurrence of a key goes to the same shard; within a shard the
    original arrival order is preserved (stable partitioning).
    """
    keys = _validate_keys(keys)
    ids = shard_ids(keys, shards)
    if keys.size == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(shards)]
    order = np.argsort(ids, kind="stable")
    bounds = np.cumsum(np.bincount(ids, minlength=shards), dtype=np.int64)
    return np.split(keys[order], bounds[:-1])


def range_partition(keys, shards: int) -> list:
    """Split *keys* into *shards* contiguous, near-equal arrival-order slices."""
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    keys = _validate_keys(keys)
    return list(np.array_split(keys, shards))


def make_shard_plan(keys, shards: int, *, mode: str = "hash") -> ShardPlan:
    """Partition *keys* into a :class:`ShardPlan` using *mode*."""
    if mode not in SHARD_MODES:
        raise ConfigurationError(
            f"unknown shard mode {mode!r}; expected one of {SHARD_MODES}"
        )
    parts = hash_partition(keys, shards) if mode == "hash" else range_partition(keys, shards)
    return ShardPlan(mode=mode, parts=tuple(parts))
