"""Sampling without replacement (Sections III-E, VI-C).

A fixed-size uniform random *subset* of the base relation.  The sample
frequency vector ``(f′ᵢ)`` is multivariate hypergeometric.  This is the
sampling model behind online aggregation: the prefix of a random-order scan
of a relation is exactly a WOR sample of the scanned fraction, which is how
:mod:`repro.engine.online_aggregation` uses it.

Two implementations:

* :class:`WithoutReplacementSampler` — offline: index-permutation draw for
  tuple arrays, a direct multivariate-hypergeometric draw for frequency
  vectors;
* :class:`ReservoirSampler` — streaming one-pass reservoir (Algorithm R,
  vectorized per chunk) producing the same distribution without knowing the
  stream length in advance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError, InsufficientDataError
from ..frequency import FrequencyVector
from ..rng import SeedLike, as_generator
from .base import SampleInfo, Sampler

__all__ = ["WithoutReplacementSampler", "ReservoirSampler"]


class WithoutReplacementSampler(Sampler):
    """Uniform fixed-size sample drawn without replacement.

    Exactly one of *size* and *fraction* must be given; the fraction must
    lie in ``(0, 1]`` (a WOR sample cannot exceed the population).
    """

    scheme = "without_replacement"

    __slots__ = ("size", "fraction")

    def __init__(
        self, *, size: Optional[int] = None, fraction: Optional[float] = None
    ) -> None:
        if (size is None) == (fraction is None):
            raise ConfigurationError("specify exactly one of size= or fraction=")
        if size is not None and size < 1:
            raise ConfigurationError(f"sample size must be >= 1, got {size}")
        if fraction is not None and not 0 < fraction <= 1:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        self.size = size
        self.fraction = fraction

    def resolve_size(self, population_size: int) -> int:
        """Sample size for a population of *population_size* tuples."""
        if population_size < 1:
            raise ConfigurationError("cannot sample from an empty relation")
        if self.size is not None:
            if self.size > population_size:
                raise ConfigurationError(
                    f"WOR sample size {self.size} exceeds population "
                    f"{population_size}"
                )
            return self.size
        return min(population_size, max(1, int(round(self.fraction * population_size))))

    def sample_items(
        self, keys: np.ndarray, seed: SeedLike = None
    ) -> tuple[np.ndarray, SampleInfo]:
        keys = np.asarray(keys)
        m = self.resolve_size(keys.size)
        rng = as_generator(seed)
        indices = rng.choice(keys.size, size=m, replace=False)
        sampled = keys[indices]
        info = SampleInfo(
            scheme=self.scheme,
            population_size=int(keys.size),
            sample_size=m,
        )
        return sampled, info

    def sample_frequencies(
        self, frequencies: FrequencyVector, seed: SeedLike = None
    ) -> tuple[FrequencyVector, SampleInfo]:
        population = frequencies.total
        m = self.resolve_size(population)
        rng = as_generator(seed)
        counts = rng.multivariate_hypergeometric(
            frequencies.counts, m, method="marginals"
        )
        sample = FrequencyVector(counts.astype(np.int64), copy=False)
        info = SampleInfo(
            scheme=self.scheme,
            population_size=population,
            sample_size=m,
        )
        return sample, info

    def __repr__(self) -> str:
        if self.size is not None:
            return f"WithoutReplacementSampler(size={self.size})"
        return f"WithoutReplacementSampler(fraction={self.fraction})"


class ReservoirSampler:
    """One-pass streaming WOR sample of fixed capacity (Algorithm R).

    Feed the stream through :meth:`extend` in arbitrary chunk sizes; at any
    point :meth:`sample` returns a uniform without-replacement sample of the
    tuples seen so far (all of them while fewer than *capacity* arrived).

    The chunked update exploits a property of numpy fancy assignment —
    ``reservoir[idx] = values`` applies writes in order, so later stream
    positions overwrite earlier ones exactly as the sequential algorithm
    prescribes.
    """

    __slots__ = ("capacity", "_rng", "_reservoir", "_seen", "_filled")

    def __init__(self, capacity: int, seed: SeedLike = None) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = as_generator(seed)
        self._reservoir = np.zeros(capacity, dtype=np.int64)
        self._seen = 0
        self._filled = 0

    @property
    def seen(self) -> int:
        """Tuples consumed so far."""
        return self._seen

    def extend(self, keys) -> None:
        """Consume a chunk of the stream."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise ConfigurationError(f"keys must be 1-D, got shape {keys.shape}")
        offset = 0
        if self._filled < self.capacity:
            take = min(self.capacity - self._filled, keys.size)
            self._reservoir[self._filled : self._filled + take] = keys[:take]
            self._filled += take
            self._seen += take
            offset = take
        tail = keys[offset:]
        if tail.size == 0:
            return
        # Global 0-based positions of the tail items within the stream.
        positions = self._seen + np.arange(tail.size, dtype=np.int64)
        slots = self._rng.integers(0, positions + 1)
        accept = slots < self.capacity
        self._reservoir[slots[accept]] = tail[accept]
        self._seen += tail.size

    def sample(self) -> np.ndarray:
        """The current reservoir contents (a copy)."""
        return self._reservoir[: self._filled].copy()

    def info(self) -> SampleInfo:
        """Draw metadata for the current reservoir state."""
        if self._seen == 0:
            raise InsufficientDataError("reservoir has not consumed any tuples")
        return SampleInfo(
            scheme="without_replacement",
            population_size=self._seen,
            sample_size=self._filled,
        )

    def __repr__(self) -> str:
        return (
            f"ReservoirSampler(capacity={self.capacity}, seen={self._seen}, "
            f"filled={self._filled})"
        )
