"""Sampling substrate: the three sampling schemes of the paper.

Section III analyzes three sampling processes, each with a known
distribution for the sample frequency random variables ``f′ᵢ``:

* :class:`BernoulliSampler` — every tuple kept independently with
  probability ``p``; ``f′ᵢ ~ Binomial(fᵢ, p)``.  This is the load-shedding
  scheme (Section VI-A); :func:`bernoulli_skip_lengths` implements the
  skip-ahead variant (ref [18]) that does work only for kept tuples.
* :class:`WithReplacementSampler` — fixed-size uniform draw with
  replacement; ``(f′ᵢ)`` is multinomial.  Models i.i.d. samples from a
  generative model (Section VI-B).
* :class:`WithoutReplacementSampler` — fixed-size uniform subset;
  ``(f′ᵢ)`` is multivariate hypergeometric.  Models online-aggregation
  prefix scans (Section VI-C).  :class:`ReservoirSampler` is the streaming
  one-pass equivalent.

Each sampler offers two equivalent-by-distribution paths:

* ``sample_items(keys, seed)`` — tuple-domain sampling of an actual key
  array (what a streaming system executes);
* ``sample_frequencies(fv, seed)`` — frequency-domain sampling: draw the
  vector ``(f′ᵢ)`` directly from its known distribution.  Orders of
  magnitude faster for Monte-Carlo experiments; the equivalence is tested.

:mod:`~repro.sampling.moments` provides the exact factorial moments of the
frequency variables — the "moment generating function" machinery the
paper's generic analysis (Props 1–2, 9–12) is built on.
"""

from .base import SampleInfo, Sampler
from .bernoulli import BernoulliSampler, bernoulli_skip_lengths
from .coefficients import SamplingCoefficients
from .moments import (
    BernoulliMoments,
    SamplingMomentModel,
    WithReplacementMoments,
    WithoutReplacementMoments,
)
from .with_replacement import WithReplacementSampler
from .without_replacement import ReservoirSampler, WithoutReplacementSampler

__all__ = [
    "Sampler",
    "SampleInfo",
    "SamplingCoefficients",
    "BernoulliSampler",
    "bernoulli_skip_lengths",
    "WithReplacementSampler",
    "WithoutReplacementSampler",
    "ReservoirSampler",
    "SamplingMomentModel",
    "BernoulliMoments",
    "WithReplacementMoments",
    "WithoutReplacementMoments",
]
