"""Sampler interface shared by the three sampling schemes.

A :class:`Sampler` turns a relation (tuple stream or frequency vector) into
a random sample plus a :class:`SampleInfo` record describing the draw.  The
``SampleInfo`` carries everything downstream estimators need to unbias an
aggregate computed over the sample: the scheme name, the population and
sample sizes, and (for Bernoulli) the inclusion probability.

The two sampling paths — tuple domain and frequency domain — produce
samples with *identical distributions* (that is the frequency-domain
insight of Section III); the frequency path simply skips materializing the
sampled tuples.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..frequency import FrequencyVector
from ..rng import SeedLike
from .coefficients import SamplingCoefficients

__all__ = ["SampleInfo", "Sampler"]

_SCHEMES = ("bernoulli", "with_replacement", "without_replacement")


@dataclass(frozen=True)
class SampleInfo:
    """Metadata of one executed sampling draw.

    Attributes
    ----------
    scheme:
        ``"bernoulli"``, ``"with_replacement"``, or ``"without_replacement"``.
    population_size:
        ``|F|`` — tuples in the base relation.
    sample_size:
        ``|F′|`` — tuples in the sample.  For Bernoulli this is the
        *realized* (random) size; for the fixed-size schemes it is exact.
    probability:
        Bernoulli inclusion probability ``p``; ``None`` for the fixed-size
        schemes.
    """

    scheme: str
    population_size: int
    sample_size: int
    probability: Optional[float] = None

    def __post_init__(self) -> None:
        if self.scheme not in _SCHEMES:
            raise ConfigurationError(
                f"unknown sampling scheme {self.scheme!r}; expected {_SCHEMES}"
            )
        if self.population_size < 0 or self.sample_size < 0:
            raise ConfigurationError("sizes must be non-negative")
        if self.scheme == "bernoulli":
            if self.probability is None or not 0 < self.probability <= 1:
                raise ConfigurationError(
                    f"Bernoulli info needs probability in (0, 1], "
                    f"got {self.probability}"
                )
        elif self.probability is not None:
            raise ConfigurationError(
                f"probability only applies to Bernoulli sampling, "
                f"got {self.probability} for {self.scheme}"
            )
        if (
            self.scheme == "without_replacement"
            and self.sample_size > self.population_size
        ):
            raise ConfigurationError(
                "a without-replacement sample cannot exceed the population: "
                f"{self.sample_size} > {self.population_size}"
            )

    @property
    def fraction(self) -> float:
        """Realized sampling fraction ``|F′|/|F|``."""
        if self.population_size == 0:
            return 0.0
        return self.sample_size / self.population_size

    def coefficients(self) -> SamplingCoefficients:
        """Exact α-coefficients (Eq. 8) of this draw."""
        return SamplingCoefficients(self.sample_size, self.population_size)


class Sampler(abc.ABC):
    """Abstract sampling scheme.

    Concrete samplers are stateless value objects (the randomness comes in
    through the per-call ``seed``), so one sampler can be reused across
    Monte-Carlo trials with independent seeds.
    """

    #: Scheme name matching :attr:`SampleInfo.scheme`.
    scheme: str

    @abc.abstractmethod
    def sample_items(
        self, keys: np.ndarray, seed: SeedLike = None
    ) -> tuple[np.ndarray, SampleInfo]:
        """Sample from an array of tuple keys.

        Returns the sampled keys (tuple domain) and the draw metadata.
        """

    @abc.abstractmethod
    def sample_frequencies(
        self, frequencies: FrequencyVector, seed: SeedLike = None
    ) -> tuple[FrequencyVector, SampleInfo]:
        """Draw the sample frequency vector ``(f′ᵢ)`` directly.

        Distribution-identical to :meth:`sample_items` followed by counting,
        but ``O(domain)`` instead of ``O(tuples)``.
        """

    def resolve_size(self, population_size: int) -> int:
        """Fixed sample size for a given population (fixed-size schemes).

        Bernoulli sampling has no fixed size; its sampler overrides this to
        raise.
        """
        raise ConfigurationError(
            f"{self.scheme} sampling does not have a fixed sample size"
        )
