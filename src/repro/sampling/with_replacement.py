"""Sampling with replacement (Sections III-D, VI-B).

A fixed number ``m`` of tuples is drawn uniformly at random from the base
relation, independently, with replacement.  The vector of sample
frequencies ``(f′ᵢ)`` is multinomial with ``m`` trials and cell
probabilities ``fᵢ/|F|``.  This is also the model of an i.i.d. stream from
a generative model over a finite population (Section VI-B): the stream *is*
the WR sample.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..frequency import FrequencyVector
from ..rng import SeedLike, as_generator
from .base import SampleInfo, Sampler

__all__ = ["WithReplacementSampler"]


class WithReplacementSampler(Sampler):
    """Uniform fixed-size sample drawn with replacement.

    Exactly one of *size* and *fraction* must be given:

    * ``size=m`` draws exactly ``m`` tuples regardless of population size;
    * ``fraction=x`` draws ``round(x · |F|)`` tuples (at least 1).  With
      replacement the fraction may exceed 1 — the paper's Figs 5–6 sweep it
      up to the population size and beyond.
    """

    scheme = "with_replacement"

    __slots__ = ("size", "fraction")

    def __init__(
        self, *, size: Optional[int] = None, fraction: Optional[float] = None
    ) -> None:
        if (size is None) == (fraction is None):
            raise ConfigurationError("specify exactly one of size= or fraction=")
        if size is not None and size < 1:
            raise ConfigurationError(f"sample size must be >= 1, got {size}")
        if fraction is not None and fraction <= 0:
            raise ConfigurationError(f"fraction must be > 0, got {fraction}")
        self.size = size
        self.fraction = fraction

    def resolve_size(self, population_size: int) -> int:
        """Number of draws for a population of *population_size* tuples."""
        if population_size < 1:
            raise ConfigurationError("cannot sample from an empty relation")
        if self.size is not None:
            return self.size
        return max(1, int(round(self.fraction * population_size)))

    def sample_items(
        self, keys: np.ndarray, seed: SeedLike = None
    ) -> tuple[np.ndarray, SampleInfo]:
        keys = np.asarray(keys)
        m = self.resolve_size(keys.size)
        rng = as_generator(seed)
        indices = rng.integers(0, keys.size, size=m)
        sampled = keys[indices]
        info = SampleInfo(
            scheme=self.scheme,
            population_size=int(keys.size),
            sample_size=m,
        )
        return sampled, info

    def sample_frequencies(
        self, frequencies: FrequencyVector, seed: SeedLike = None
    ) -> tuple[FrequencyVector, SampleInfo]:
        population = frequencies.total
        m = self.resolve_size(population)
        rng = as_generator(seed)
        counts = rng.multinomial(m, frequencies.probabilities())
        sample = FrequencyVector(counts.astype(np.int64), copy=False)
        info = SampleInfo(
            scheme=self.scheme,
            population_size=population,
            sample_size=m,
        )
        return sample, info

    def __repr__(self) -> str:
        if self.size is not None:
            return f"WithReplacementSampler(size={self.size})"
        return f"WithReplacementSampler(fraction={self.fraction})"
