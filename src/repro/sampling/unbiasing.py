"""Unbiasing corrections for aggregates computed over samples.

An aggregate computed over a sample underestimates the population
aggregate; the paper's estimators correct this per scheme (Sections III and
V).  The corrections depend only on the sampling draw — captured by
:class:`~repro.sampling.base.SampleInfo` — and apply identically whether
the sample aggregate is exact or itself estimated by a sketch (that
independence is the very point of the paper's analysis).

**Size of join** needs a pure scaling: ``X = C · Σᵢ f′ᵢg′ᵢ`` with
``C = 1/(pq)`` (Bernoulli) or ``C = 1/(αβ)`` (WR and WOR).

**Self-join size** needs a scale *and* an additive correction because
``E[f′ᵢ²]`` mixes ``fᵢ²`` and ``fᵢ`` terms::

    Bernoulli:  X = (1/p²)  Σf′ᵢ² − ((1−p)/p²)·|F′|        (|F′| random!)
    WR:         X = (1/αα₂) Σf′ᵢ² − (1/α₂)·|F|
    WOR:        X = (1/αα₁) Σf′ᵢ² − ((1−α₁)/α₁)·|F|

:class:`SelfJoinCorrection` normalizes all three to the common form
``Y = scale·X̂ − random_coefficient·|F′| − constant`` where ``X̂`` is the
(sketched or exact) sample self-join aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..errors import ConfigurationError, InsufficientDataError
from .base import SampleInfo

__all__ = ["join_scale", "SelfJoinCorrection", "self_join_correction"]


def _probability_fraction(probability: float) -> Fraction:
    """Convert a float probability to an exact-looking rational.

    ``Fraction(0.1)`` is the exact binary representation of the float — an
    ugly 55-digit rational.  Probabilities are human-chosen decimals, so we
    snap to the nearest rational with a modest denominator; the deviation
    (≤ 10⁻¹² relative) is far below every other error source.
    """
    if isinstance(probability, Fraction):
        return probability
    return Fraction(probability).limit_denominator(10**12)


def join_scale(info_f: SampleInfo, info_g: SampleInfo) -> Fraction:
    """The scaling constant ``C`` for the size-of-join estimator.

    ``C = 1/(pq)`` for Bernoulli draws, ``C = 1/(αβ)`` for fixed-size
    draws; mixed schemes compose factor-wise (each relation contributes its
    own ``1/p`` or ``1/α``).
    """
    return _expectation_inverse(info_f) * _expectation_inverse(info_g)


def _expectation_inverse(info: SampleInfo) -> Fraction:
    """``1/κ₁`` — the factor undoing ``E[f′ᵢ] = κ₁ fᵢ`` for one relation."""
    if info.scheme == "bernoulli":
        return 1 / _probability_fraction(info.probability)
    if info.sample_size < 1:
        raise InsufficientDataError(
            f"cannot unbias a {info.scheme} sample with no tuples"
        )
    return 1 / info.coefficients().alpha


@dataclass(frozen=True)
class SelfJoinCorrection:
    """Per-scheme self-join unbiasing, ``Y = scale·X̂ − random_coefficient·|F′| − constant``."""

    scale: Fraction
    random_coefficient: Fraction
    constant: Fraction

    def apply(self, raw_estimate: float, sample_size: int) -> float:
        """Unbias a raw sample self-join aggregate.

        *raw_estimate* is the (sketched or exact) value of ``Σᵢ f′ᵢ²``;
        *sample_size* is the realized ``|F′|``.
        """
        return (
            float(self.scale) * raw_estimate
            - float(self.random_coefficient) * sample_size
            - float(self.constant)
        )


def self_join_correction(info: SampleInfo) -> SelfJoinCorrection:
    """Build the self-join unbiasing for an executed draw.

    Raises :class:`InsufficientDataError` for fixed-size draws of fewer
    than two tuples — the corrections divide by ``|F′| − 1``.
    """
    if info.scheme == "bernoulli":
        p = _probability_fraction(info.probability)
        return SelfJoinCorrection(
            scale=1 / p**2,
            random_coefficient=(1 - p) / p**2,
            constant=Fraction(0),
        )
    if info.sample_size < 2:
        raise InsufficientDataError(
            f"self-join unbiasing for {info.scheme} sampling needs at least "
            f"2 sampled tuples, got {info.sample_size}"
        )
    coefficients = info.coefficients()
    alpha = coefficients.alpha
    if info.scheme == "with_replacement":
        alpha2 = coefficients.alpha2
        return SelfJoinCorrection(
            scale=1 / (alpha * alpha2),
            random_coefficient=Fraction(0),
            constant=Fraction(info.population_size) / alpha2,
        )
    if info.scheme == "without_replacement":
        alpha1 = coefficients.alpha1
        return SelfJoinCorrection(
            scale=1 / (alpha * alpha1),
            random_coefficient=Fraction(0),
            constant=(1 - alpha1) / alpha1 * info.population_size,
        )
    raise ConfigurationError(f"unknown sampling scheme {info.scheme!r}")
