"""Bernoulli sampling — the load-shedding scheme (Sections III-B, VI-A).

Each tuple is kept independently with probability ``p``; the sample
frequency of value ``i`` is ``f′ᵢ ~ Binomial(fᵢ, p)``, independent across
values.  The realized sample size is random — which, as the paper notes, is
irrelevant when the sample is immediately sketched rather than stored.

Two tuple-domain implementations are provided:

* the textbook per-tuple coin toss (:meth:`BernoulliSampler.sample_items`),
  vectorized over the whole batch;
* skip-ahead sampling (:func:`bernoulli_skip_lengths`, ref [18] — Olken's
  thesis): draw the *gaps between kept tuples* from the geometric
  distribution, so the work done is proportional to the number of kept
  tuples, not the stream length.  This is what makes sketching-over-
  Bernoulli-samples a genuine ``1/p`` speed-up (Section VI-A); the
  streaming wrapper lives in :class:`repro.core.load_shedding.LoadShedder`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..frequency import FrequencyVector
from ..rng import SeedLike, as_generator
from .base import SampleInfo, Sampler

__all__ = ["BernoulliSampler", "bernoulli_skip_lengths"]


class BernoulliSampler(Sampler):
    """Keep each tuple independently with probability ``p ∈ (0, 1]``."""

    scheme = "bernoulli"

    __slots__ = ("p",)

    def __init__(self, p: float) -> None:
        if not 0 < p <= 1:
            raise ConfigurationError(f"Bernoulli p must be in (0, 1], got {p}")
        self.p = float(p)

    def sample_items(
        self, keys: np.ndarray, seed: SeedLike = None
    ) -> tuple[np.ndarray, SampleInfo]:
        keys = np.asarray(keys)
        rng = as_generator(seed)
        mask = rng.random(keys.size) < self.p
        sampled = keys[mask]
        info = SampleInfo(
            scheme=self.scheme,
            population_size=int(keys.size),
            sample_size=int(sampled.size),
            probability=self.p,
        )
        return sampled, info

    def sample_frequencies(
        self, frequencies: FrequencyVector, seed: SeedLike = None
    ) -> tuple[FrequencyVector, SampleInfo]:
        rng = as_generator(seed)
        sampled_counts = rng.binomial(frequencies.counts, self.p)
        sample = FrequencyVector(sampled_counts.astype(np.int64), copy=False)
        info = SampleInfo(
            scheme=self.scheme,
            population_size=frequencies.total,
            sample_size=sample.total,
            probability=self.p,
        )
        return sample, info

    def __repr__(self) -> str:
        return f"BernoulliSampler(p={self.p})"


def bernoulli_skip_lengths(
    p: float, count: int, seed: SeedLike = None
) -> np.ndarray:
    """Gaps between consecutive kept tuples of a Bernoulli(p) process.

    Returns *count* independent draws of the number of tuples to skip
    before the next kept tuple (0 means the next tuple is kept).  If the
    last kept tuple had stream position ``t``, the next kept tuple has
    position ``t + 1 + gap``.

    The gap is geometric: ``P(gap = k) = (1 − p)ᵏ p``.  Sampling the gaps
    instead of tossing a coin per tuple makes the sampler's work
    proportional to the kept tuples only — the prerequisite for the
    ``1/p`` sketching speed-up of Section VI-A.
    """
    if not 0 < p <= 1:
        raise ConfigurationError(f"Bernoulli p must be in (0, 1], got {p}")
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if p >= 1.0:
        return np.zeros(count, dtype=np.int64)
    rng = as_generator(seed)
    # numpy's geometric counts trials to first success (support {1, 2, ...});
    # the skip length is that minus one.
    return rng.geometric(p, size=count).astype(np.int64) - 1
